"""Shared fixtures and helpers for the benchmark / reproduction harness.

Each benchmark module regenerates one table or figure of the paper
(see DESIGN.md for the index).  Benchmarks have two outputs:

* a pytest-benchmark timing entry for the representative computation, and
* a plain-text rendering of the reproduced table/figure written to
  ``benchmarks/results/<experiment>.txt`` so the numbers can be inspected and
  copied into EXPERIMENTS.md.

The datasets used here are intentionally smaller than the paper's (days
instead of months, scaled-down hierarchies) so the full harness runs in
minutes on a laptop; the *shape* of each result -- who wins, by roughly what
factor, where the crossovers are -- is what the assertions check.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import ForecastConfig, TiresiasConfig  # noqa: E402
from repro.datagen.ccd import CCDConfig, make_ccd_dataset  # noqa: E402
from repro.datagen.generator import counts_per_timeunit  # noqa: E402
from repro.datagen.scd import SCDConfig, make_scd_dataset  # noqa: E402

#: Directory where each benchmark writes its reproduced table/figure.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_result(name: str, content: str) -> Path:
    """Persist a reproduced table/figure as plain text under results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n", encoding="utf-8")
    return path


def units_per_day(delta_seconds: float) -> int:
    return int(86400 / delta_seconds)


def detector_config(
    delta_seconds: float,
    theta: float = 10.0,
    window_days: float = 3.0,
    reference_levels: int = 2,
    split_rule: str = "long-term-history",
    split_ewma_alpha: float = 0.4,
) -> TiresiasConfig:
    """A Tiresias configuration scaled to the benchmark trace sizes."""
    upd = units_per_day(delta_seconds)
    return TiresiasConfig(
        theta=theta,
        ratio_threshold=2.8,
        difference_threshold=8.0,
        delta_seconds=delta_seconds,
        window_units=max(8, int(window_days * upd)),
        reference_levels=reference_levels,
        split_rule=split_rule,
        split_ewma_alpha=split_ewma_alpha,
        forecast=ForecastConfig(season_lengths=(upd,), fallback_alpha=0.3),
    )


@pytest.fixture(scope="session")
def ccd_trouble_dataset():
    """A week-long CCD trace over the trouble hierarchy with injected anomalies."""
    return make_ccd_dataset(
        CCDConfig(
            dimension="trouble",
            duration_days=7.0,
            base_rate_per_hour=240.0,
            num_anomalies=5,
            anomaly_warmup_days=3.0,
            seed=2024,
        )
    )


@pytest.fixture(scope="session")
def ccd_trouble_units(ccd_trouble_dataset):
    """Per-timeunit leaf counts for the CCD trouble trace."""
    records = ccd_trouble_dataset.record_list()
    return counts_per_timeunit(
        records, ccd_trouble_dataset.clock, ccd_trouble_dataset.num_timeunits
    )


@pytest.fixture(scope="session")
def ccd_network_dataset():
    """A CCD trace over the (scaled) SHO/VHO/IO/CO/DSLAM network hierarchy."""
    return make_ccd_dataset(
        CCDConfig(
            dimension="network",
            duration_days=5.0,
            base_rate_per_hour=360.0,
            network_scale=0.5,
            num_anomalies=6,
            anomaly_warmup_days=2.0,
            seed=31,
        )
    )


@pytest.fixture(scope="session")
def scd_dataset():
    """An SCD trace over the (scaled) National/CO/DSLAM/STB hierarchy.

    This variant keeps the hierarchy wide (thousands of leaves) so the Fig. 1
    and Fig. 2 characterization benches see the paper's sparsity regime.
    """
    return make_scd_dataset(
        SCDConfig(
            duration_days=5.0,
            base_rate_per_hour=400.0,
            network_scale=0.2,
            num_anomalies=4,
            anomaly_warmup_days=2.0,
            seed=77,
        )
    )


@pytest.fixture(scope="session")
def scd_compact_dataset():
    """A compact SCD trace used for the §VII-A ADA-vs-STA comparison.

    The heavy hitter algorithms are compared on a narrower tree where the
    per-node volumes are comparable to the paper's heavy hitters; the wide
    characterization tree spreads the laptop-scale volume so thinly that
    almost nothing crosses the heavy hitter threshold.
    """
    return make_scd_dataset(
        SCDConfig(
            duration_days=5.0,
            base_rate_per_hour=400.0,
            network_scale=0.03,
            num_anomalies=4,
            anomaly_warmup_days=2.0,
            seed=78,
        )
    )


@pytest.fixture(scope="session")
def scd_compact_units(scd_compact_dataset):
    records = scd_compact_dataset.record_list()
    return counts_per_timeunit(
        records, scd_compact_dataset.clock, scd_compact_dataset.num_timeunits
    )


@pytest.fixture(scope="session")
def scd_units(scd_dataset):
    records = scd_dataset.record_list()
    return counts_per_timeunit(records, scd_dataset.clock, scd_dataset.num_timeunits)
