"""Ingestion throughput harness: record vs columnar batch vs sharded path.

Measures records/sec over the Table III runtime workload (week-long synthetic
CCD trouble trace, 15-minute timeunits) for the ingestion paths this repo
supports:

* **record path** — one ``OperationalRecord`` at a time through
  ``SlidingWindow.ingest`` / ``DetectionSession.ingest_record``;
* **batch path** — columnar ``RecordBatch`` chunks through
  ``SlidingWindow.ingest_batch`` / ``DetectionSession.ingest_record_batch``
  (one vectorized timeunit classification + one grouped count aggregation
  per batch);
* **sharded path** (``--workers``) — the same batches through a
  ``ShardedDetectionEngine`` whose session is subtree-sharded across N
  worker processes; the harness asserts its detections are byte-identical
  to the batch path before recording the timing.

Per-stage breakdown
-------------------
Every end-to-end run records the close-path stage split from
``DetectionSession.stage_seconds()`` — hierarchy updating (SHHH), forecast +
detect (time-series maintenance + dual-threshold checks) and trace reading —
plus the derived ``classify`` share (everything outside the algorithm:
per-record/batch classification and pending-counter folding).  Hot-path
claims in future PRs should cite these numbers instead of eyeballing totals.

Scalar-close baseline (``--compare-scalar``)
--------------------------------------------
Re-runs the batch path in a subprocess with ``REPRO_DISABLE_NUMPY=1``, which
forces the forecaster bank, hierarchy index, ring buffers and batch detector
onto their pure-Python fallbacks (columnar *classification* stays vectorized,
so the comparison isolates the close path).  The subprocess's detections must
be byte-identical — the fallback is a correctness twin, only slower.

Bank-kernel microbenchmark
--------------------------
``bank_kernel`` times the forecast+detect stage at production-scale tracked
sets (default 2048 rows): one vectorized ``ForecasterBank.observe_rows`` +
``ThresholdDetector.check_many`` per timeunit against the per-row scalar
loop.  ``--check-bank-speedup MIN`` gates CI on it.

Results are appended to ``BENCH_ingest.json`` at the repo root so successive
PRs accumulate a throughput trajectory.  **Entries are only appended when
every equivalence check passed** — a run that produced wrong detections
exits non-zero without recording a result.

Shard transport overhead (``--check-shard-overhead``)
-----------------------------------------------------
Runs the table3 workload through the subtree-sharded engine twice — once
over the ``pipe`` transport (whole operations pickled, batches included)
and once over ``shm`` (columns shipped as raw little-endian buffers through
shared memory; only the operation skeleton is pickled) — asserts both
reproduce the batch path's detections exactly, and records a ``sharding``
section with each transport's ``ship_serialized_bytes``.  The headline
``serialized_ratio`` (pipe / shm pickled bytes) is the zero-copy claim; the
CI perf-smoke gate requires it to be at least 5x.

Adaptation-engine benchmarks (``--adaptation-bench``)
-----------------------------------------------------
Three delta-vs-legacy close comparisons with identical detections and
checkpoint states asserted: the table3 workload, a rotating flash-crowd
churn scenario (``build_churn_workload``: the heavy hitter set rotates every
16 timeunits, exercising SPLIT cascades and MERGE folds continuously) with
an end-to-end ``stage_seconds`` breakdown, and a stable-timeunit phase whose
constant heavy set isolates the delta fast path.  ``--check-adapt-speedup
MIN`` gates CI on the stable fast path.

Usage::

    python benchmarks/perf/bench_ingest.py                 # full table3 workload
    python benchmarks/perf/bench_ingest.py --duration-days 0.5 --check-speedup 1.0
    python benchmarks/perf/bench_ingest.py --workers 2,4 --check-workers-speedup 1.0
    python benchmarks/perf/bench_ingest.py --check-shard-overhead 5.0
    python benchmarks/perf/bench_ingest.py --compare-scalar --check-bank-speedup 2.0
    python benchmarks/perf/bench_ingest.py --adaptation-bench --check-adapt-speedup 2.0
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

import repro  # noqa: E402
from repro._vector import backend_tier  # noqa: E402
from repro.core.config import ForecastConfig, TiresiasConfig  # noqa: E402
from repro.datagen.ccd import CCDConfig, make_ccd_dataset  # noqa: E402
from repro.engine.session import DetectionSession  # noqa: E402
from repro.streaming.batch import HAS_VECTOR_BACKEND, RecordBatch  # noqa: E402
from repro.streaming.window import SlidingWindow  # noqa: E402

DEFAULT_OUT = ROOT / "BENCH_ingest.json"

#: Metadata every entry records (older entries are backfilled with None on
#: the next append so the trajectory file stays uniformly queryable).
METADATA_KEYS = ("cpu_count", "version", "backend_tier")


@contextlib.contextmanager
def _env(**overrides):
    """Temporarily set/unset environment variables (None = unset)."""
    saved = {key: os.environ.get(key) for key in overrides}
    for key, value in overrides.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


#: Environment that forces the staged (pre-fused, NumPy-tier) close path —
#: the PR 5 baseline the fused gates compare against, measured in the same
#: run on the same machine.
STAGED_BASELINE_ENV = {"REPRO_DISABLE_FUSED": "1", "REPRO_DISABLE_COMPILED": "1"}


class EquivalenceError(RuntimeError):
    """Two ingestion paths produced different detections; nothing is recorded."""


def build_workload(duration_days: float, rate_per_hour: float, delta_seconds: float):
    """The Table III runtime workload (see benchmarks/test_table3_runtime.py)."""
    return make_ccd_dataset(
        CCDConfig(
            dimension="trouble",
            duration_days=duration_days,
            delta_seconds=delta_seconds,
            base_rate_per_hour=rate_per_hour,
            num_anomalies=3,
            anomaly_warmup_days=min(3.0, duration_days / 2.0),
            zipf_exponent=1.4,
            seed=909,
        )
    )


def build_churn_workload(
    duration_days: float,
    rate_per_hour: float,
    delta_seconds: float,
    rotation_units: int = 16,
    crowds: int = 3,
    seed: int = 777,
):
    """Flash-crowd workload: the heavy hitter set rotates every
    ``rotation_units`` timeunits.

    A steady CCD trouble trace carries ``crowds`` concurrent flash-crowd
    bursts at random depth-2/3 subtrees; every rotation the crowds move to
    fresh subtrees, so the adaptive tracker runs SPLIT cascades for the new
    heavy hitters and MERGE folds for the expiring ones, with stable
    stretches in between — exactly the regime the delta-driven adaptation
    engine targets.
    """
    import random as _random

    from repro.datagen.anomalies import InjectedAnomaly
    from repro.datagen.arrival import SeasonalRateModel
    from repro.datagen.ccd import CCD_TICKET_MIX, CCDDataset
    from repro.datagen.generator import TraceGenerator
    from repro.hierarchy.builders import build_ccd_trouble_tree
    from repro.streaming.clock import HOUR, SimulationClock

    config = CCDConfig(
        dimension="trouble",
        duration_days=duration_days,
        delta_seconds=delta_seconds,
        base_rate_per_hour=rate_per_hour,
        num_anomalies=0,
        zipf_exponent=1.3,
        volatility=0.1,
        seed=seed,
    )
    tree = build_ccd_trouble_tree(seed=seed)
    clock = SimulationClock(
        delta=delta_seconds, epoch=0.0, epoch_weekday=5, epoch_hour=0.0
    )
    rate_model = SeasonalRateModel(
        base_rate=rate_per_hour / HOUR,
        diurnal_strength=0.4,
        peak_hour=16.0,
        weekly_strength=0.1,
        volatility=0.1,
    )
    rng = _random.Random(seed + 99)
    candidates = [node for node in tree.iter_nodes() if node.depth in (2, 3)]
    duration = config.duration_seconds
    num_units = int(duration // delta_seconds)
    anomalies = []
    for start_unit in range(0, num_units, rotation_units):
        start = start_unit * delta_seconds
        span = min(rotation_units * delta_seconds, duration - start)
        if span <= 0:
            break
        for _ in range(crowds):
            node = rng.choice(candidates)
            anomalies.append(
                InjectedAnomaly(
                    node_path=node.path,
                    start=start,
                    duration=span,
                    extra_rate=rate_per_hour / HOUR * 0.15,
                    label=f"flash-{start_unit}",
                )
            )
    anomalies.sort(key=lambda a: a.start)
    generator = TraceGenerator(
        tree=tree,
        rate_model=rate_model,
        clock=clock,
        top_level_weights=CCD_TICKET_MIX,
        zipf_exponent=1.3,
        seed=seed,
        anomalies=anomalies,
    )
    return CCDDataset(
        config=config,
        tree=tree,
        clock=clock,
        generator=generator,
        anomalies=tuple(anomalies),
    )


def detector_config(delta_seconds: float, duration_days: float) -> TiresiasConfig:
    upd = int(86400 / delta_seconds)
    # Root tracking is excluded so the identical configuration runs on every
    # path: subtree sharding requires it, and comparing paths under different
    # configs would not be a benchmark.
    return TiresiasConfig(
        theta=6.0,
        ratio_threshold=2.8,
        difference_threshold=8.0,
        delta_seconds=delta_seconds,
        window_units=max(8, int(min(6.0, duration_days) * upd)),
        reference_levels=2,
        track_root=False,
        allow_root_heavy=False,
        forecast=ForecastConfig(season_lengths=(upd,), fallback_alpha=0.3),
    )


def time_classify_record_path(dataset, records, num_units) -> float:
    # Symmetric with the batch path: both consume pre-materialized inputs and
    # neither is timed through InputStream validation, so the ratio measures
    # the classification work alone.
    window = SlidingWindow(dataset.clock, num_units)
    start = time.perf_counter()
    for record in records:
        window.ingest(record)
    elapsed = time.perf_counter() - start
    time_classify_record_path.window = window
    return elapsed


def time_classify_batch_path(dataset, batches, num_units) -> float:
    window = SlidingWindow(dataset.clock, num_units)
    start = time.perf_counter()
    for batch in batches:
        window.ingest_batch(batch)
    elapsed = time.perf_counter() - start
    time_classify_batch_path.window = window
    return elapsed


def time_end_to_end(dataset, config, feed, batched: bool) -> tuple[float, "DetectionSession"]:
    session = DetectionSession(dataset.tree, config, clock=dataset.clock, name="bench")
    start = time.perf_counter()
    if batched:
        for batch in feed:
            session.ingest_record_batch(batch)
    else:
        for record in feed:
            session.ingest_record(record)
    session.flush()
    return time.perf_counter() - start, session


def stage_breakdown(elapsed: float, session: "DetectionSession") -> dict:
    """Close-path stage split of one end-to-end run (Table III stages).

    ``classify`` is the share outside the tracking algorithm — per-record /
    per-batch timeunit classification and pending-counter folding;
    ``forecast_detect`` is time-series maintenance plus the dual-threshold
    checks (paper Fig. 3 Steps 2-4 live in ``hierarchy`` + ``forecast_detect``).
    """
    stages = session.stage_seconds()
    hierarchy = stages["updating_hierarchies"]
    forecast_detect = stages["creating_time_series"] + stages["detecting_anomalies"]
    reading = stages.get("reading_traces", 0.0)
    classify = max(0.0, elapsed - hierarchy - forecast_detect - reading)
    return {
        "classify": round(classify, 6),
        "hierarchy": round(hierarchy, 6),
        "forecast_detect": round(forecast_detect, 6),
        "reading": round(reading, 6),
        "raw": {key: round(value, 6) for key, value in stages.items()},
    }


def time_sharded(dataset, config, batches, workers: int) -> tuple[float, list]:
    """End-to-end through a subtree-sharded engine at ``workers`` processes.

    Worker startup is excluded (steady-state throughput is what a resident
    monitoring process sees); dispatch, IPC and merge are all on the clock.
    """
    from repro.engine.sharded import ShardedDetectionEngine

    with ShardedDetectionEngine(num_workers=workers) as engine:
        engine.add_session(
            "bench", dataset.tree, config, clock=dataset.clock, subtree_shards=workers
        )
        engine.units_processed()  # spawns the workers before timing starts
        start = time.perf_counter()
        for batch in batches:
            engine.ingest_record_batch(batch)
        engine.flush()
        elapsed = time.perf_counter() - start
        anomalies = [a.to_dict() for a in engine.anomalies()["bench"]]
    return elapsed, anomalies


def bench_shard_overhead(
    dataset, config, batches, batch_anomalies, workers: int = 2
) -> dict:
    """Transport shipping overhead: pipe pickling vs shm zero-copy columns.

    The identical ingest stream runs through a subtree-sharded engine over
    the ``pipe`` transport (whole ``(verb, ops)`` pickles, batch columns
    included) and the ``shm`` transport (columns placed in shared memory as
    raw little-endian buffers; only the operation skeleton passes through
    pickle).  Both runs must reproduce the batch path's detections exactly
    — a diverging transport raises :class:`EquivalenceError` and nothing is
    recorded.  ``serialized_ratio`` is pipe-pickled bytes over shm-pickled
    bytes: how many times fewer bytes the zero-copy path serializes, which
    the ``--check-shard-overhead MIN`` CI gate bounds from below.
    """
    from repro.engine.sharded import ShardedDetectionEngine

    section: dict = {"workers": workers, "subtree_shards": workers, "transports": {}}
    for transport in ("pipe", "shm"):
        with ShardedDetectionEngine(
            num_workers=workers, transport=transport
        ) as engine:
            engine.add_session(
                "bench",
                dataset.tree,
                config,
                clock=dataset.clock,
                subtree_shards=workers,
            )
            engine.units_processed()  # spawns the workers before timing starts
            # Session-state shipping at startup is a pickle of identical size
            # on every transport; the zero-copy claim is about the *ingest
            # stream*, so the counters are measured as deltas from here.
            baseline = engine.transport_stats()
            start = time.perf_counter()
            for batch in batches:
                engine.ingest_record_batch(batch)
            engine.flush()
            elapsed = time.perf_counter() - start
            anomalies = [a.to_dict() for a in engine.anomalies()["bench"]]
            stats = engine.transport_stats()
        if anomalies != batch_anomalies:
            raise EquivalenceError(
                f"sharded detections over the {transport!r} transport "
                f"diverged from the batch path"
            )
        section["transports"][transport] = {
            "seconds": round(elapsed, 6),
            "ships": stats["ships"] - baseline["ships"],
            "ship_bytes": stats["ship_bytes"] - baseline["ship_bytes"],
            "ship_serialized_bytes": (
                stats["ship_serialized_bytes"]
                - baseline["ship_serialized_bytes"]
            ),
            "collect_bytes": stats["collect_bytes"] - baseline["collect_bytes"],
            "startup_serialized_bytes": baseline["ship_serialized_bytes"],
            "identical_detections": True,
        }
    pipe_bytes = section["transports"]["pipe"]["ship_serialized_bytes"]
    shm_bytes = section["transports"]["shm"]["ship_serialized_bytes"]
    section["serialized_ratio"] = round(pipe_bytes / max(shm_bytes, 1), 2)
    return section


def run_scalar_probe(args: argparse.Namespace) -> dict:
    """Batch-path end-to-end with the vector backend disabled (this process).

    Invoked in a ``REPRO_DISABLE_NUMPY=1`` subprocess by ``--compare-scalar``;
    prints a JSON document with timing, stage split and the anomaly list (for
    the backend-equivalence check).
    """
    dataset = build_workload(args.duration_days, args.rate_per_hour, args.delta_seconds)
    records = dataset.record_list()
    config = detector_config(args.delta_seconds, args.duration_days)
    batches = [
        RecordBatch.from_records(records[i : i + args.batch_size])
        for i in range(0, len(records), args.batch_size)
    ]
    elapsed, session = time_end_to_end(dataset, config, batches, batched=True)
    return {
        "seconds": round(elapsed, 6),
        "stages": stage_breakdown(elapsed, session),
        "anomalies": [a.to_dict() for a in session.anomalies],
    }


def compare_scalar_close(args: argparse.Namespace, batch_anomalies: list) -> dict:
    """Run the scalar-close probe in a subprocess and diff it against vector."""
    env = dict(os.environ)
    env["REPRO_DISABLE_NUMPY"] = "1"
    command = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--scalar-probe",
        "--duration-days", str(args.duration_days),
        "--rate-per-hour", str(args.rate_per_hour),
        "--delta-seconds", str(args.delta_seconds),
        "--batch-size", str(args.batch_size),
    ]
    completed = subprocess.run(command, env=env, capture_output=True, text=True)
    if completed.returncode != 0:
        raise EquivalenceError(
            "the scalar-close probe subprocess failed "
            f"(exit {completed.returncode}):\n{completed.stderr}"
        )
    probe = json.loads(completed.stdout)
    if probe.pop("anomalies") != batch_anomalies:
        raise EquivalenceError(
            "the scalar (REPRO_DISABLE_NUMPY) close path produced different "
            "detections than the vectorized path"
        )
    return probe


def bench_bank_kernel(rows: int = 2048, steps: int = 192, season: int = 96) -> dict:
    """Forecast+detect stage at production-scale tracked sets, batch vs scalar.

    One warm (seasonal) bank per backend, ``rows`` tracked nodes, ``steps``
    timeunits: the vector side runs one ``observe_rows`` + one ``check_many``
    per timeunit, the scalar side the historical per-node loop.  Both produce
    identical forecasts and anomalies (asserted), so the ratio isolates speed.
    """
    import random

    from repro.core.detector import ThresholdDetector
    from repro.forecasting.bank import ForecasterBank

    forecast_config = ForecastConfig(season_lengths=(season,), fallback_alpha=0.3)
    detector = ThresholdDetector(
        TiresiasConfig(
            theta=6.0,
            ratio_threshold=2.8,
            difference_threshold=8.0,
            track_root=False,
            allow_root_heavy=False,
        )
    )
    rng = random.Random(4242)
    warmup = [
        [100.0 + 20.0 * rng.random() for _ in range(rows)]
        for _ in range(2 * season)
    ]
    load = [
        [100.0 + 50.0 * rng.random() for _ in range(rows)] for _ in range(steps)
    ]
    paths = [("bank", f"n{i}") for i in range(rows)]

    results = {}
    for label, force in (("vector", False), ("scalar", True)):
        bank = ForecasterBank(forecast_config, force_scalar=force)
        bank_rows = [bank.new_row() for _ in range(rows)]
        for column in warmup:
            bank.observe_rows(bank_rows, column)
        all_forecasts = []
        all_anomalies = []
        start = time.perf_counter()
        if label == "vector" and bank.vectorized:
            for step, column in enumerate(load):
                forecasts = bank.observe_rows(bank_rows, column)
                all_forecasts.append(forecasts)
                all_anomalies.extend(
                    (step, anomaly.node_path, anomaly.actual, anomaly.forecast)
                    for anomaly in detector.check_many(paths, 0, column, forecasts)
                )
        else:
            for step, column in enumerate(load):
                step_forecasts = []
                for path, row, value in zip(paths, bank_rows, column):
                    forecast = bank.observe(row, value)
                    step_forecasts.append(forecast)
                    anomaly = detector.check(path, 0, value, forecast)
                    if anomaly is not None:
                        all_anomalies.append(
                            (step, anomaly.node_path, anomaly.actual, anomaly.forecast)
                        )
                all_forecasts.append(step_forecasts)
        results[label] = {
            "seconds": round(time.perf_counter() - start, 6),
            "forecasts": all_forecasts,
            "detected": all_anomalies,
        }
    if (
        results["vector"]["forecasts"] != results["scalar"]["forecasts"]
        or results["vector"]["detected"] != results["scalar"]["detected"]
    ):
        raise EquivalenceError(
            "bank kernel benchmark: vector and scalar backends disagree"
        )
    return {
        "rows": rows,
        "steps": steps,
        "season_length": season,
        "vector_seconds": results["vector"]["seconds"],
        "scalar_seconds": results["scalar"]["seconds"],
        "speedup": round(
            results["scalar"]["seconds"] / results["vector"]["seconds"], 2
        ),
    }


def _compare_close_paths(dataset, config, reps: int = 2) -> dict:
    """Drive the ADA close directly with per-timeunit counts, delta vs legacy.

    Both adaptation engines must produce identical per-timeunit results and
    identical checkpoint states; the returned stage seconds are the best of
    ``reps`` runs per mode (interleaved, to damp machine noise).
    """
    import json as _json

    from repro.core.ada import ADAAlgorithm
    from repro.datagen.generator import counts_per_timeunit

    units = counts_per_timeunit(
        dataset.record_list(), dataset.clock, dataset.num_timeunits + 1
    )
    best = {"delta": None, "legacy": None}
    outputs = {}
    stats = {}
    for _rep in range(reps):
        for mode in ("delta", "legacy"):
            algo = ADAAlgorithm(dataset.tree, config, adaptation=mode)
            results = [
                algo.process_timeunit(counts, u) for u, counts in enumerate(units)
            ]
            stage = algo.stage_seconds["creating_time_series"]
            if best[mode] is None or stage < best[mode]:
                best[mode] = stage
            state = algo.state_dict()
            state["stage_seconds"] = None
            outputs[mode] = (
                _json.dumps(state, sort_keys=True),
                [
                    (r.timeunit, r.heavy_hitters, r.actuals, r.forecasts, r.anomalies)
                    for r in results
                ],
            )
            stats[mode] = algo.adaptation_stats()
    if outputs["delta"] != outputs["legacy"]:
        raise EquivalenceError(
            "delta-driven adaptation diverged from the legacy scalar walk"
        )
    return {
        "timeunits": len(units),
        "delta_creating_seconds": round(best["delta"], 6),
        "legacy_creating_seconds": round(best["legacy"], 6),
        "stage_speedup": round(best["legacy"] / max(best["delta"], 1e-9), 2),
        "delta_stats": {
            k: round(v, 6) if isinstance(v, float) else v
            for k, v in stats["delta"].items()
        },
        "legacy_stats": {
            k: round(v, 6) if isinstance(v, float) else v
            for k, v in stats["legacy"].items()
        },
    }


def _stable_phase_speedup(dataset, config, steps: int = 256, warmup: int = 8) -> dict:
    """Stable-timeunit fast path: one fixed count table repeated ``steps``
    times (heavy set constant), delta vs legacy close, identical detections
    asserted."""
    from repro.core.ada import ADAAlgorithm
    from repro.datagen.generator import counts_per_timeunit

    units = counts_per_timeunit(
        dataset.record_list(), dataset.clock, dataset.num_timeunits + 1
    )
    counts = max(units, key=len)  # densest timeunit of the trace
    adapt = {}
    stage = {}
    outputs = {}
    for mode in ("delta", "legacy"):
        algo = ADAAlgorithm(dataset.tree, config, adaptation=mode)
        for unit in range(warmup):
            algo.process_timeunit(counts, unit)
        stage_base = algo.stage_seconds["creating_time_series"]
        adapt_base = algo.adapt_seconds
        results = [
            algo.process_timeunit(counts, warmup + step) for step in range(steps)
        ]
        stage[mode] = algo.stage_seconds["creating_time_series"] - stage_base
        adapt[mode] = algo.adapt_seconds - adapt_base
        outputs[mode] = [
            (r.timeunit, r.heavy_hitters, r.actuals, r.forecasts, r.anomalies)
            for r in results
        ]
    if outputs["delta"] != outputs["legacy"]:
        raise EquivalenceError(
            "stable-phase detections diverged between delta and legacy adaptation"
        )
    return {
        "steps": steps,
        "tracked": len(outputs["delta"][0][1]),
        # Adaptation time proper: on a stable timeunit the delta engine does
        # one heavy-mask comparison while the legacy walk rescans the whole
        # registry — the ``--check-adapt-speedup`` gate compares these.
        "delta_adapt_seconds": round(adapt["delta"], 6),
        "legacy_adapt_seconds": round(adapt["legacy"], 6),
        "speedup": round(adapt["legacy"] / max(adapt["delta"], 1e-9), 2),
        "delta_stage_seconds": round(stage["delta"], 6),
        "legacy_stage_seconds": round(stage["legacy"], 6),
        "stage_speedup": round(stage["legacy"] / max(stage["delta"], 1e-9), 2),
    }


def _fused_stable_speedup(
    dataset, config, steps: int = 256, warmup: int | None = None
) -> dict:
    """Stable-phase close microbenchmark: fused dense close vs staged close.

    One fixed dense timeunit repeated ``steps`` times against two ADA
    instances: the fused path fed pre-built dense node-count vectors
    (``process_timeunit_dense``, compiled kernels when available) and the
    staged path fed the equivalent dict under the PR 5 baseline environment
    (fused + compiled tiers disabled).  Warmup runs past the forecaster's
    ``min_history`` so the timed steps measure the *steady* regime (every
    tracked row active — the regime the fused path is built for), not the
    warm-up bookkeeping.  Detections must be identical; the ratio is what
    ``--check-fused-speedup`` gates.
    """
    from repro._vector import load_numpy
    from repro.core.ada import ADAAlgorithm
    from repro.datagen.generator import counts_per_timeunit

    np_ = load_numpy()
    if warmup is None:
        warmup = config.forecast.min_history + 32
    units = counts_per_timeunit(
        dataset.record_list(), dataset.clock, dataset.num_timeunits + 1
    )
    counts = max(units, key=len)  # densest timeunit of the trace
    seconds = {}
    outputs = {}
    profiles = {}

    # Staged baseline: construction and run both under the baseline env
    # (the compiled tier is consulted per close, not just at init).
    with _env(**STAGED_BASELINE_ENV):
        algo = ADAAlgorithm(dataset.tree, config, adaptation="delta")
        for unit in range(warmup):
            algo.process_timeunit(counts, unit)
        start = time.perf_counter()
        results = [
            algo.process_timeunit(counts, warmup + step) for step in range(steps)
        ]
        seconds["staged"] = time.perf_counter() - start
    outputs["staged"] = [
        (r.timeunit, r.heavy_hitters, r.actuals, r.forecasts, r.anomalies)
        for r in results
    ]
    profiles["staged"] = algo.close_profile()

    algo = ADAAlgorithm(dataset.tree, config, adaptation="delta")
    if not algo.supports_dense_close:
        raise EquivalenceError(
            "fused close unavailable (REPRO_DISABLE_FUSED set?) — the fused "
            "stable-phase benchmark has nothing to measure"
        )
    index_ids = algo.dictionary_node_ids(list(counts.keys()))
    known = index_ids >= 0
    ids = index_ids[known]
    values = np_.asarray(
        [float(c) for c in counts.values()], dtype=np_.float64
    )[known]
    template = algo.dense_count_template()
    for unit in range(warmup):
        base = template.copy()
        base[ids] = values
        algo.process_timeunit_dense(base, unit)
    start = time.perf_counter()
    results = []
    for step in range(steps):
        base = template.copy()
        base[ids] = values
        results.append(algo.process_timeunit_dense(base, warmup + step))
    seconds["fused"] = time.perf_counter() - start
    outputs["fused"] = [
        (r.timeunit, r.heavy_hitters, r.actuals, r.forecasts, r.anomalies)
        for r in results
    ]
    profiles["fused"] = algo.close_profile()

    if outputs["fused"] != outputs["staged"]:
        raise EquivalenceError(
            "stable-phase detections diverged between fused and staged close"
        )
    return {
        "steps": steps,
        "tracked": len(outputs["fused"][0][1]),
        "fused_seconds": round(seconds["fused"], 6),
        "staged_seconds": round(seconds["staged"], 6),
        "speedup": round(seconds["staged"] / max(seconds["fused"], 1e-9), 2),
        "fused_units": profiles["fused"]["fused_units"],
        "staged_units": profiles["staged"]["staged_units"],
    }


def bench_fused_e2e(dataset, config, records, batch_size: int, reps: int = 2) -> dict:
    """End-to-end: columnar trace + fused close vs the staged PR 5 baseline.

    Writes the workload to a columnar trace file once, then interleaves
    ``reps`` runs per mode (best-of): the fused mode streams zero-copy coded
    batches from the file through the dense ingest path; the staged mode
    replays the same trace through the classic dict path under the baseline
    environment.  Detections must be identical; ``speedup_vs_staged`` is the
    same-run, same-machine ratio ``--check-fused-e2e`` gates (the staged
    path is the PR 5 code path, so this is the "vs PR 5 baseline" number
    without cross-machine noise).
    """
    from repro.io import read_batches_columnar, write_trace_columnar

    best = {"fused": None, "staged": None}
    profile = None
    anomalies = {}
    with tempfile.TemporaryDirectory(prefix="bench-fused-") as tmp:
        path = Path(tmp) / "trace.rcol"
        start = time.perf_counter()
        write_trace_columnar(records, path)
        write_seconds = time.perf_counter() - start
        staged_batches = [
            RecordBatch.from_records(records[i : i + batch_size])
            for i in range(0, len(records), batch_size)
        ]
        for _rep in range(reps):
            with _env(**STAGED_BASELINE_ENV):
                elapsed, session = time_end_to_end(
                    dataset, config, staged_batches, batched=True
                )
            if best["staged"] is None or elapsed < best["staged"]:
                best["staged"] = elapsed
            anomalies["staged"] = [a.to_dict() for a in session.anomalies]

            batches = read_batches_columnar(path, batch_size=batch_size)
            elapsed, session = time_end_to_end(dataset, config, batches, batched=True)
            if best["fused"] is None or elapsed < best["fused"]:
                best["fused"] = elapsed
            anomalies["fused"] = [a.to_dict() for a in session.anomalies]
            profile = session.close_profile()
    if anomalies["fused"] != anomalies["staged"]:
        raise EquivalenceError(
            "columnar+fused end-to-end detections diverged from the staged path"
        )
    n = len(records)
    return {
        "columnar_write_seconds": round(write_seconds, 6),
        "fused_seconds": round(best["fused"], 6),
        "staged_seconds": round(best["staged"], 6),
        "fused_rps": round(n / best["fused"], 1),
        "staged_rps": round(n / best["staged"], 1),
        "speedup_vs_staged": round(best["staged"] / max(best["fused"], 1e-9), 2),
        "anomalies": len(anomalies["fused"]),
        "close_profile": profile,
    }


def bench_adaptation(args: argparse.Namespace) -> dict:
    """Delta-adaptation engine benchmarks: table3 close, churn scenario
    (close comparison + end-to-end stage breakdown), stable fast path."""
    table3 = build_workload(args.duration_days, args.rate_per_hour, args.delta_seconds)
    table3_config = detector_config(args.delta_seconds, args.duration_days)
    churn = build_churn_workload(
        args.churn_days, args.rate_per_hour, args.delta_seconds
    )
    churn_config = detector_config(args.delta_seconds, args.churn_days)

    section = {
        "table3": _compare_close_paths(table3, table3_config),
        "churn": _compare_close_paths(churn, churn_config),
        "stable": _stable_phase_speedup(table3, table3_config),
    }

    # End-to-end churn run through a session for the per-stage breakdown.
    churn_records = churn.record_list()
    churn_batches = [
        RecordBatch.from_records(churn_records[i : i + args.batch_size])
        for i in range(0, len(churn_records), args.batch_size)
    ]
    elapsed, session = time_end_to_end(churn, churn_config, churn_batches, batched=True)
    section["churn"]["workload"] = {
        "name": "flash-crowd-rotating",
        "duration_days": args.churn_days,
        "n_records": len(churn_records),
        "timeunits": churn.num_timeunits,
    }
    section["churn"]["e2e_seconds"] = round(elapsed, 6)
    section["churn"]["stages"] = stage_breakdown(elapsed, session)
    section["churn"]["session_adaptation_stats"] = {
        k: round(v, 6) if isinstance(v, float) else v
        for k, v in session.adaptation_stats().items()
    }
    return section


def run(args: argparse.Namespace) -> dict:
    dataset = build_workload(args.duration_days, args.rate_per_hour, args.delta_seconds)
    records = dataset.record_list()
    n = len(records)
    if n == 0:
        raise SystemExit("workload generated no records")
    config = detector_config(args.delta_seconds, args.duration_days)
    num_units = dataset.num_timeunits + 2  # hold the full trace: no eviction skew

    # The io readers produce batches natively; building them from the record
    # list here stands in for that and is timed separately for honesty.
    start = time.perf_counter()
    batches = [
        RecordBatch.from_records(records[i : i + args.batch_size])
        for i in range(0, n, args.batch_size)
    ]
    batch_build_seconds = time.perf_counter() - start

    record_seconds = time_classify_record_path(dataset, records, num_units)
    batch_seconds = time_classify_batch_path(dataset, batches, num_units)
    record_window = time_classify_record_path.window
    batch_window = time_classify_batch_path.window
    if record_window.total_series() != batch_window.total_series():
        raise EquivalenceError(
            "classify stage diverged between record and batch paths"
        )

    e2e_record_seconds, record_session = time_end_to_end(
        dataset, config, records, batched=False
    )
    e2e_batch_seconds, batch_session = time_end_to_end(
        dataset, config, batches, batched=True
    )
    record_anomalies = [a.to_dict() for a in record_session.anomalies]
    batch_anomalies = [a.to_dict() for a in batch_session.anomalies]
    if record_anomalies != batch_anomalies:
        raise EquivalenceError(
            "end-to-end detections diverged between record and batch paths"
        )

    sharded = {}
    for workers in args.workers:
        sharded_seconds, sharded_anomalies = time_sharded(
            dataset, config, batches, workers
        )
        if sharded_anomalies != batch_anomalies:
            raise EquivalenceError(
                f"sharded detections at {workers} workers diverged from the "
                f"batch path"
            )
        sharded[str(workers)] = {
            "subtree_shards": workers,
            "seconds": round(sharded_seconds, 6),
            "rps": round(n / sharded_seconds, 1),
            "speedup_vs_batch": round(e2e_batch_seconds / sharded_seconds, 2),
        }

    entry = {
        "bench": "ingest",
        "unix_time": time.time(),
        "cpu_count": os.cpu_count(),
        "version": repro.__version__,
        "backend_tier": backend_tier(),
        "workload": {
            "name": "table3-ccd-trouble",
            "duration_days": args.duration_days,
            "delta_seconds": args.delta_seconds,
            "rate_per_hour": args.rate_per_hour,
            "timeunits": dataset.num_timeunits,
        },
        "n_records": n,
        "batch_size": args.batch_size,
        "vector_backend": HAS_VECTOR_BACKEND,
        "batch_build_seconds": round(batch_build_seconds, 6),
        "classify": {
            "record_seconds": round(record_seconds, 6),
            "batch_seconds": round(batch_seconds, 6),
            "record_rps": round(n / record_seconds, 1),
            "batch_rps": round(n / batch_seconds, 1),
            "speedup": round(record_seconds / batch_seconds, 2),
        },
        "end_to_end": {
            "record_seconds": round(e2e_record_seconds, 6),
            "batch_seconds": round(e2e_batch_seconds, 6),
            "record_rps": round(n / e2e_record_seconds, 1),
            "batch_rps": round(n / e2e_batch_seconds, 1),
            "speedup": round(e2e_record_seconds / e2e_batch_seconds, 2),
            "anomalies": len(record_anomalies),
        },
        "stages": {
            "record": stage_breakdown(e2e_record_seconds, record_session),
            "batch": stage_breakdown(e2e_batch_seconds, batch_session),
        },
    }
    if args.compare_scalar:
        probe = compare_scalar_close(args, batch_anomalies)
        forecast_detect_speedup = round(
            probe["stages"]["forecast_detect"]
            / max(entry["stages"]["batch"]["forecast_detect"], 1e-9),
            2,
        )
        entry["scalar_close"] = {
            "seconds": probe["seconds"],
            "stages": probe["stages"],
            "forecast_detect_speedup": forecast_detect_speedup,
            "e2e_speedup_vs_scalar": round(
                probe["seconds"] / e2e_batch_seconds, 2
            ),
        }
    if args.bank_rows > 0:
        entry["bank_kernel"] = bench_bank_kernel(rows=args.bank_rows)
    if args.profile_close:
        # Close-time histogram + fused/staged hit counts of the main batch run.
        entry["close_profile"] = batch_session.close_profile()
    if args.fused_bench:
        if HAS_VECTOR_BACKEND:
            entry["fused"] = bench_fused_e2e(
                dataset, config, records, args.batch_size
            )
            entry["fused"]["stable"] = _fused_stable_speedup(dataset, config)
        else:
            # Without NumPy there is no fused path — nothing to compare.
            entry["fused"] = {"skipped": "no vector backend"}
    if args.adaptation_bench:
        if HAS_VECTOR_BACKEND:
            entry["adaptation"] = bench_adaptation(args)
        else:
            # Without the vector backend both adaptation engines are the same
            # scalar walk — there is nothing to compare.
            entry["adaptation"] = {"skipped": "no vector backend"}
    if sharded:
        entry["sharded"] = sharded
        entry["cpu_count"] = os.cpu_count()
    if args.shard_overhead:
        entry["sharding"] = bench_shard_overhead(
            dataset, config, batches, batch_anomalies
        )
    return entry


def append_result(entry: dict, out: Path) -> None:
    history = []
    if out.exists():
        text = out.read_text(encoding="utf-8").strip()
        if text:
            history = json.loads(text)
            if not isinstance(history, list):
                history = [history]
    # One-shot backfill: older entries predate the metadata contract; give
    # them explicit nulls so every entry carries the same keys.
    for old in history:
        if isinstance(old, dict):
            for key in METADATA_KEYS:
                old.setdefault(key, None)
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration-days", type=float, default=7.0)
    parser.add_argument("--rate-per-hour", type=float, default=600.0)
    parser.add_argument("--delta-seconds", type=float, default=900.0)
    parser.add_argument("--batch-size", type=int, default=8192)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--workers",
        type=lambda text: [int(w) for w in text.split(",") if w.strip()],
        default=[],
        metavar="N[,M...]",
        help="also run the sharded engine at these worker counts "
        "(subtree_shards == workers)",
    )
    parser.add_argument(
        "--compare-scalar",
        action="store_true",
        help="also run the batch path with REPRO_DISABLE_NUMPY=1 in a "
        "subprocess and record the scalar-close baseline",
    )
    parser.add_argument(
        "--scalar-probe",
        action="store_true",
        help=argparse.SUPPRESS,  # internal: used by --compare-scalar
    )
    parser.add_argument(
        "--bank-rows",
        type=int,
        default=2048,
        metavar="R",
        help="tracked-set size for the bank forecast+detect microbenchmark "
        "(0 disables it)",
    )
    parser.add_argument(
        "--adaptation-bench",
        action="store_true",
        help="also run the delta-adaptation benchmarks (table3 + rotating "
        "flash-crowd churn scenario + stable fast path, delta vs legacy "
        "close with identical detections asserted)",
    )
    parser.add_argument(
        "--churn-days",
        type=float,
        default=2.0,
        metavar="D",
        help="duration of the rotating flash-crowd churn scenario",
    )
    parser.add_argument(
        "--check-adapt-speedup",
        type=float,
        default=None,
        metavar="MIN",
        help="exit non-zero unless the stable-timeunit fast path is >= MIN x "
        "faster than the legacy adaptation walk (implies --adaptation-bench)",
    )
    parser.add_argument(
        "--fused-bench",
        action="store_true",
        help="also run the fused-close benchmarks: columnar+fused end-to-end "
        "and the stable-phase close microbenchmark, both against the staged "
        "(REPRO_DISABLE_FUSED + REPRO_DISABLE_COMPILED) baseline with "
        "identical detections asserted",
    )
    parser.add_argument(
        "--profile-close",
        action="store_true",
        help="record the per-timeunit close-time histogram and fused/staged "
        "hit counts of the batch end-to-end run in the JSON entry",
    )
    parser.add_argument(
        "--check-fused-speedup",
        type=float,
        default=None,
        metavar="MIN",
        help="exit non-zero unless the stable-phase fused close is >= MIN x "
        "faster than the staged baseline (implies --fused-bench)",
    )
    parser.add_argument(
        "--check-fused-e2e",
        type=float,
        default=None,
        metavar="MIN",
        help="exit non-zero unless columnar+fused end-to-end is >= MIN x the "
        "staged baseline measured in the same run (implies --fused-bench)",
    )
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        metavar="MIN",
        help="exit non-zero unless the classify-stage speedup is >= MIN",
    )
    parser.add_argument(
        "--check-bank-speedup",
        type=float,
        default=None,
        metavar="MIN",
        help="exit non-zero unless the bank forecast+detect microbenchmark "
        "reaches MIN x over the scalar loop",
    )
    parser.add_argument(
        "--shard-overhead",
        action="store_true",
        help="also run the pipe-vs-shm transport overhead comparison and "
        "record the 'sharding' section (identical detections asserted)",
    )
    parser.add_argument(
        "--check-shard-overhead",
        type=float,
        default=None,
        metavar="MIN",
        help="exit non-zero unless the shm transport serializes >= MIN x "
        "fewer bytes than the pipe transport for the identical ingest "
        "stream (implies --shard-overhead)",
    )
    parser.add_argument(
        "--check-workers-speedup",
        type=float,
        default=None,
        metavar="MIN",
        help="exit non-zero unless the highest --workers run reaches MIN x "
        "the single-process batch path end-to-end",
    )
    args = parser.parse_args(argv)
    if args.check_adapt_speedup is not None:
        args.adaptation_bench = True
    if args.check_fused_speedup is not None or args.check_fused_e2e is not None:
        args.fused_bench = True
    if args.check_shard_overhead is not None:
        args.shard_overhead = True

    if args.scalar_probe:
        print(json.dumps(run_scalar_probe(args)))
        return 0

    try:
        entry = run(args)
    except EquivalenceError as error:
        # A diverging run must not pollute the trajectory: nothing is
        # appended to BENCH_ingest.json for a result that is simply wrong.
        print(f"FAIL (not recorded): {error}", file=sys.stderr)
        return 2
    append_result(entry, args.out)

    c, e = entry["classify"], entry["end_to_end"]
    print(f"workload: {entry['workload']['name']}  ({entry['n_records']} records, "
          f"{entry['workload']['timeunits']} timeunits, batch={entry['batch_size']}, "
          f"vector_backend={entry['vector_backend']})")
    print(f"classify:   record {c['record_rps']:>12,.0f} rec/s | "
          f"batch {c['batch_rps']:>12,.0f} rec/s | speedup {c['speedup']:.2f}x")
    print(f"end-to-end: record {e['record_rps']:>12,.0f} rec/s | "
          f"batch {e['batch_rps']:>12,.0f} rec/s | speedup {e['speedup']:.2f}x "
          f"({e['anomalies']} identical anomalies)")
    b = entry["stages"]["batch"]
    print(f"batch stages: classify {b['classify']:.3f}s | hierarchy "
          f"{b['hierarchy']:.3f}s | forecast+detect {b['forecast_detect']:.3f}s")
    if "scalar_close" in entry:
        s = entry["scalar_close"]
        print(f"scalar close: {s['seconds']:.3f}s e2e | forecast+detect "
              f"{s['stages']['forecast_detect']:.3f}s | vector speedup "
              f"{s['forecast_detect_speedup']:.2f}x stage, "
              f"{s['e2e_speedup_vs_scalar']:.2f}x e2e (identical anomalies)")
    if "bank_kernel" in entry:
        k = entry["bank_kernel"]
        print(f"bank kernel ({k['rows']} rows x {k['steps']} units): vector "
              f"{k['vector_seconds']:.3f}s | scalar {k['scalar_seconds']:.3f}s | "
              f"speedup {k['speedup']:.2f}x")
    if "fused" in entry and "skipped" not in entry["fused"]:
        f = entry["fused"]
        print(f"fused e2e:  columnar+fused {f['fused_rps']:>12,.0f} rec/s | "
              f"staged {f['staged_rps']:>12,.0f} rec/s | "
              f"{f['speedup_vs_staged']:.2f}x vs staged baseline "
              f"({f['anomalies']} identical anomalies)")
        fs = f["stable"]
        print(f"fused stable: {fs['steps']} units, {fs['tracked']} tracked | "
              f"{fs['fused_seconds']*1e3:.1f}ms fused vs "
              f"{fs['staged_seconds']*1e3:.1f}ms staged | {fs['speedup']:.2f}x")
    if "close_profile" in entry:
        p = entry["close_profile"]
        h = p["close_time"]
        mean_us = 1e6 * h["total_seconds"] / max(h["count"], 1)
        print(f"close profile: {p['fused_units']} fused / {p['staged_units']} "
              f"staged units ({p['dense_close_units']} dense) | "
              f"mean {mean_us:.0f}us, max {h['max_seconds']*1e3:.2f}ms per close")
    if "adaptation" in entry and "skipped" not in entry["adaptation"]:
        a = entry["adaptation"]
        for scenario in ("table3", "churn"):
            s = a[scenario]
            print(f"adaptation[{scenario}]: creating {s['delta_creating_seconds']:.3f}s "
                  f"delta | {s['legacy_creating_seconds']:.3f}s legacy | "
                  f"{s['stage_speedup']:.2f}x (identical detections/state)")
        st = a["stable"]
        print(f"adaptation[stable]: {st['steps']} stable units, {st['tracked']} "
              f"tracked | adapt {st['delta_adapt_seconds']*1e3:.1f}ms delta vs "
              f"{st['legacy_adapt_seconds']*1e3:.1f}ms legacy | {st['speedup']:.2f}x "
              f"(stage {st['stage_speedup']:.2f}x)")
    for workers, stats in entry.get("sharded", {}).items():
        print(f"sharded({workers}w): {stats['rps']:>12,.0f} rec/s | "
              f"{stats['speedup_vs_batch']:.2f}x vs single-process batch "
              f"(identical anomalies, {entry['cpu_count']} cpus visible)")
    if "sharding" in entry:
        sh = entry["sharding"]
        pipe_t = sh["transports"]["pipe"]
        shm_t = sh["transports"]["shm"]
        print(f"shard overhead ({sh['workers']}w): pipe pickled "
              f"{pipe_t['ship_serialized_bytes']:,} B | shm pickled "
              f"{shm_t['ship_serialized_bytes']:,} B "
              f"(of {shm_t['ship_bytes']:,} B shipped) | "
              f"{sh['serialized_ratio']:.2f}x fewer serialized bytes "
              f"(identical anomalies)")
    print(f"results appended to {args.out}")

    if args.check_speedup is not None and c["speedup"] < args.check_speedup:
        print(f"FAIL: classify speedup {c['speedup']:.2f}x < required "
              f"{args.check_speedup:.2f}x", file=sys.stderr)
        return 1
    if args.check_bank_speedup is not None:
        if "bank_kernel" not in entry:
            print("FAIL: --check-bank-speedup given with --bank-rows 0",
                  file=sys.stderr)
            return 1
        achieved = entry["bank_kernel"]["speedup"]
        if achieved < args.check_bank_speedup:
            print(f"FAIL: bank forecast+detect speedup {achieved:.2f}x < "
                  f"required {args.check_bank_speedup:.2f}x", file=sys.stderr)
            return 1
    if args.check_adapt_speedup is not None:
        adaptation = entry.get("adaptation", {})
        if "skipped" in adaptation:
            print("note: --check-adapt-speedup skipped (no vector backend)",
                  file=sys.stderr)
        else:
            achieved = adaptation["stable"]["speedup"]
            if achieved < args.check_adapt_speedup:
                print(f"FAIL: stable fast-path adaptation speedup "
                      f"{achieved:.2f}x < required "
                      f"{args.check_adapt_speedup:.2f}x", file=sys.stderr)
                return 1
    if args.check_fused_speedup is not None or args.check_fused_e2e is not None:
        fused = entry.get("fused", {})
        if "skipped" in fused:
            print("note: fused gates skipped (no vector backend)",
                  file=sys.stderr)
        else:
            if args.check_fused_speedup is not None:
                achieved = fused["stable"]["speedup"]
                if achieved < args.check_fused_speedup:
                    print(f"FAIL: fused stable-phase close speedup "
                          f"{achieved:.2f}x < required "
                          f"{args.check_fused_speedup:.2f}x", file=sys.stderr)
                    return 1
            if args.check_fused_e2e is not None:
                achieved = fused["speedup_vs_staged"]
                if achieved < args.check_fused_e2e:
                    print(f"FAIL: columnar+fused end-to-end speedup "
                          f"{achieved:.2f}x < required "
                          f"{args.check_fused_e2e:.2f}x", file=sys.stderr)
                    return 1
    if args.check_shard_overhead is not None:
        achieved = entry["sharding"]["serialized_ratio"]
        if achieved < args.check_shard_overhead:
            print(f"FAIL: shm transport serializes only {achieved:.2f}x fewer "
                  f"bytes than pipe; required {args.check_shard_overhead:.2f}x",
                  file=sys.stderr)
            return 1
    if args.check_workers_speedup is not None:
        if not entry.get("sharded"):
            print("FAIL: --check-workers-speedup given without --workers",
                  file=sys.stderr)
            return 1
        top = str(max(args.workers))
        achieved = entry["sharded"][top]["speedup_vs_batch"]
        if achieved < args.check_workers_speedup:
            print(f"FAIL: sharded speedup at {top} workers {achieved:.2f}x < "
                  f"required {args.check_workers_speedup:.2f}x",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
