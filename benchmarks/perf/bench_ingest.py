"""Ingestion throughput harness: record vs columnar batch vs sharded path.

Measures records/sec over the Table III runtime workload (week-long synthetic
CCD trouble trace, 15-minute timeunits) for the ingestion paths this repo
supports:

* **record path** — one ``OperationalRecord`` at a time through
  ``SlidingWindow.ingest`` / ``DetectionSession.ingest_record``;
* **batch path** — columnar ``RecordBatch`` chunks through
  ``SlidingWindow.ingest_batch`` / ``DetectionSession.ingest_record_batch``
  (one vectorized timeunit classification + one grouped count aggregation
  per batch);
* **sharded path** (``--workers``) — the same batches through a
  ``ShardedDetectionEngine`` whose session is subtree-sharded across N
  worker processes; the harness asserts its detections are byte-identical
  to the batch path before recording the timing.

Both paths consume pre-materialized inputs (a record list vs pre-built
batches, as the io batch loaders would produce natively); batch-building
cost is reported separately as ``batch_build_seconds``.

Two stages are timed separately:

* ``classify`` — stream → per-timeunit leaf counts (the stage this refactor
  vectorizes; the ≥5x target applies here);
* ``end_to_end`` — stream → detections through a full ADA session (identical
  detection work on both paths, so the speedup is smaller; the harness also
  asserts the two paths report byte-identical anomalies).

Results are appended to ``BENCH_ingest.json`` at the repo root so successive
PRs accumulate a throughput trajectory.

Usage::

    python benchmarks/perf/bench_ingest.py                 # full table3 workload
    python benchmarks/perf/bench_ingest.py --duration-days 0.5 --check-speedup 1.0
    python benchmarks/perf/bench_ingest.py --workers 2,4 --check-workers-speedup 1.0
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.core.config import ForecastConfig, TiresiasConfig  # noqa: E402
from repro.datagen.ccd import CCDConfig, make_ccd_dataset  # noqa: E402
from repro.engine.session import DetectionSession  # noqa: E402
from repro.streaming.batch import HAS_VECTOR_BACKEND, RecordBatch  # noqa: E402
from repro.streaming.window import SlidingWindow  # noqa: E402

DEFAULT_OUT = ROOT / "BENCH_ingest.json"


def build_workload(duration_days: float, rate_per_hour: float, delta_seconds: float):
    """The Table III runtime workload (see benchmarks/test_table3_runtime.py)."""
    return make_ccd_dataset(
        CCDConfig(
            dimension="trouble",
            duration_days=duration_days,
            delta_seconds=delta_seconds,
            base_rate_per_hour=rate_per_hour,
            num_anomalies=3,
            anomaly_warmup_days=min(3.0, duration_days / 2.0),
            zipf_exponent=1.4,
            seed=909,
        )
    )


def detector_config(delta_seconds: float, duration_days: float) -> TiresiasConfig:
    upd = int(86400 / delta_seconds)
    # Root tracking is excluded so the identical configuration runs on every
    # path: subtree sharding requires it, and comparing paths under different
    # configs would not be a benchmark.
    return TiresiasConfig(
        theta=6.0,
        ratio_threshold=2.8,
        difference_threshold=8.0,
        delta_seconds=delta_seconds,
        window_units=max(8, int(min(6.0, duration_days) * upd)),
        reference_levels=2,
        track_root=False,
        allow_root_heavy=False,
        forecast=ForecastConfig(season_lengths=(upd,), fallback_alpha=0.3),
    )


def time_classify_record_path(dataset, records, num_units) -> float:
    # Symmetric with the batch path: both consume pre-materialized inputs and
    # neither is timed through InputStream validation, so the ratio measures
    # the classification work alone.
    window = SlidingWindow(dataset.clock, num_units)
    start = time.perf_counter()
    for record in records:
        window.ingest(record)
    elapsed = time.perf_counter() - start
    time_classify_record_path.window = window
    return elapsed


def time_classify_batch_path(dataset, batches, num_units) -> float:
    window = SlidingWindow(dataset.clock, num_units)
    start = time.perf_counter()
    for batch in batches:
        window.ingest_batch(batch)
    elapsed = time.perf_counter() - start
    time_classify_batch_path.window = window
    return elapsed


def time_end_to_end(dataset, config, feed, batched: bool) -> tuple[float, "DetectionSession"]:
    session = DetectionSession(dataset.tree, config, clock=dataset.clock, name="bench")
    start = time.perf_counter()
    if batched:
        for batch in feed:
            session.ingest_record_batch(batch)
    else:
        for record in feed:
            session.ingest_record(record)
    session.flush()
    return time.perf_counter() - start, session


def time_sharded(dataset, config, batches, workers: int) -> tuple[float, list]:
    """End-to-end through a subtree-sharded engine at ``workers`` processes.

    Worker startup is excluded (steady-state throughput is what a resident
    monitoring process sees); dispatch, IPC and merge are all on the clock.
    """
    from repro.engine.sharded import ShardedDetectionEngine

    with ShardedDetectionEngine(num_workers=workers) as engine:
        engine.add_session(
            "bench", dataset.tree, config, clock=dataset.clock, subtree_shards=workers
        )
        engine.units_processed()  # spawns the workers before timing starts
        start = time.perf_counter()
        for batch in batches:
            engine.ingest_record_batch(batch)
        engine.flush()
        elapsed = time.perf_counter() - start
        anomalies = [a.to_dict() for a in engine.anomalies()["bench"]]
    return elapsed, anomalies


def run(args: argparse.Namespace) -> dict:
    dataset = build_workload(args.duration_days, args.rate_per_hour, args.delta_seconds)
    records = dataset.record_list()
    n = len(records)
    if n == 0:
        raise SystemExit("workload generated no records")
    config = detector_config(args.delta_seconds, args.duration_days)
    num_units = dataset.num_timeunits + 2  # hold the full trace: no eviction skew

    # The io readers produce batches natively; building them from the record
    # list here stands in for that and is timed separately for honesty.
    start = time.perf_counter()
    batches = [
        RecordBatch.from_records(records[i : i + args.batch_size])
        for i in range(0, n, args.batch_size)
    ]
    batch_build_seconds = time.perf_counter() - start

    record_seconds = time_classify_record_path(dataset, records, num_units)
    batch_seconds = time_classify_batch_path(dataset, batches, num_units)
    record_window = time_classify_record_path.window
    batch_window = time_classify_batch_path.window
    if record_window.total_series() != batch_window.total_series():
        raise SystemExit("classify stage diverged between record and batch paths")

    e2e_record_seconds, record_session = time_end_to_end(
        dataset, config, records, batched=False
    )
    e2e_batch_seconds, batch_session = time_end_to_end(
        dataset, config, batches, batched=True
    )
    record_anomalies = [a.to_dict() for a in record_session.anomalies]
    batch_anomalies = [a.to_dict() for a in batch_session.anomalies]
    if record_anomalies != batch_anomalies:
        raise SystemExit("end-to-end detections diverged between paths")

    sharded = {}
    for workers in args.workers:
        sharded_seconds, sharded_anomalies = time_sharded(
            dataset, config, batches, workers
        )
        if sharded_anomalies != batch_anomalies:
            raise SystemExit(
                f"sharded detections at {workers} workers diverged from the "
                f"batch path"
            )
        sharded[str(workers)] = {
            "subtree_shards": workers,
            "seconds": round(sharded_seconds, 6),
            "rps": round(n / sharded_seconds, 1),
            "speedup_vs_batch": round(e2e_batch_seconds / sharded_seconds, 2),
        }

    entry = {
        "bench": "ingest",
        "unix_time": time.time(),
        "workload": {
            "name": "table3-ccd-trouble",
            "duration_days": args.duration_days,
            "delta_seconds": args.delta_seconds,
            "rate_per_hour": args.rate_per_hour,
            "timeunits": dataset.num_timeunits,
        },
        "n_records": n,
        "batch_size": args.batch_size,
        "vector_backend": HAS_VECTOR_BACKEND,
        "batch_build_seconds": round(batch_build_seconds, 6),
        "classify": {
            "record_seconds": round(record_seconds, 6),
            "batch_seconds": round(batch_seconds, 6),
            "record_rps": round(n / record_seconds, 1),
            "batch_rps": round(n / batch_seconds, 1),
            "speedup": round(record_seconds / batch_seconds, 2),
        },
        "end_to_end": {
            "record_seconds": round(e2e_record_seconds, 6),
            "batch_seconds": round(e2e_batch_seconds, 6),
            "record_rps": round(n / e2e_record_seconds, 1),
            "batch_rps": round(n / e2e_batch_seconds, 1),
            "speedup": round(e2e_record_seconds / e2e_batch_seconds, 2),
            "anomalies": len(record_anomalies),
        },
    }
    if sharded:
        entry["sharded"] = sharded
        entry["cpu_count"] = os.cpu_count()
    return entry


def append_result(entry: dict, out: Path) -> None:
    history = []
    if out.exists():
        text = out.read_text(encoding="utf-8").strip()
        if text:
            history = json.loads(text)
            if not isinstance(history, list):
                history = [history]
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration-days", type=float, default=7.0)
    parser.add_argument("--rate-per-hour", type=float, default=600.0)
    parser.add_argument("--delta-seconds", type=float, default=900.0)
    parser.add_argument("--batch-size", type=int, default=8192)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--workers",
        type=lambda text: [int(w) for w in text.split(",") if w.strip()],
        default=[],
        metavar="N[,M...]",
        help="also run the sharded engine at these worker counts "
        "(subtree_shards == workers)",
    )
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        metavar="MIN",
        help="exit non-zero unless the classify-stage speedup is >= MIN",
    )
    parser.add_argument(
        "--check-workers-speedup",
        type=float,
        default=None,
        metavar="MIN",
        help="exit non-zero unless the highest --workers run reaches MIN x "
        "the single-process batch path end-to-end",
    )
    args = parser.parse_args(argv)

    entry = run(args)
    append_result(entry, args.out)

    c, e = entry["classify"], entry["end_to_end"]
    print(f"workload: {entry['workload']['name']}  ({entry['n_records']} records, "
          f"{entry['workload']['timeunits']} timeunits, batch={entry['batch_size']}, "
          f"vector_backend={entry['vector_backend']})")
    print(f"classify:   record {c['record_rps']:>12,.0f} rec/s | "
          f"batch {c['batch_rps']:>12,.0f} rec/s | speedup {c['speedup']:.2f}x")
    print(f"end-to-end: record {e['record_rps']:>12,.0f} rec/s | "
          f"batch {e['batch_rps']:>12,.0f} rec/s | speedup {e['speedup']:.2f}x "
          f"({e['anomalies']} identical anomalies)")
    for workers, stats in entry.get("sharded", {}).items():
        print(f"sharded({workers}w): {stats['rps']:>12,.0f} rec/s | "
              f"{stats['speedup_vs_batch']:.2f}x vs single-process batch "
              f"(identical anomalies, {entry['cpu_count']} cpus visible)")
    print(f"results appended to {args.out}")

    if args.check_speedup is not None and c["speedup"] < args.check_speedup:
        print(f"FAIL: classify speedup {c['speedup']:.2f}x < required "
              f"{args.check_speedup:.2f}x", file=sys.stderr)
        return 1
    if args.check_workers_speedup is not None:
        if not entry.get("sharded"):
            print("FAIL: --check-workers-speedup given without --workers",
                  file=sys.stderr)
            return 1
        top = str(max(args.workers))
        achieved = entry["sharded"][top]["speedup_vs_batch"]
        if achieved < args.check_workers_speedup:
            print(f"FAIL: sharded speedup at {top} workers {achieved:.2f}x < "
                  f"required {args.check_workers_speedup:.2f}x",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
