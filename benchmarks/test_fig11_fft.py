"""Fig. 11 (and the §VI wavelet analysis): seasonality of the aggregate series.

The paper applies the FFT to the CCD and SCD count series: both show their
strongest peak at a 24-hour period, and CCD additionally shows a noticeable
peak near 170 hours (the closest measurable period to a week).  The a-trous
wavelet detail energies confirm the same periodicities.  The benchmark
regenerates the spectra from longer synthetic traces and checks those peaks,
plus the consistency between the FFT and the wavelet analysis.
"""

from __future__ import annotations

import pytest

from repro.datagen.ccd import CCDConfig, make_ccd_dataset
from repro.datagen.scd import SCDConfig, make_scd_dataset
from repro.seasonality.fft import compute_spectrum
from repro.seasonality.wavelet import detail_energy_profile

from conftest import write_result

#: One-hour timeunits keep the 4-week spectra cheap while resolving 24 h / 168 h.
DELTA = 3600.0


def aggregate_series(dataset):
    series = [0.0] * dataset.num_timeunits
    for record in dataset.records():
        unit = dataset.clock.timeunit_of(record.timestamp)
        if 0 <= unit < len(series):
            series[unit] += 1.0
    return series


def analysis(dataset):
    series = aggregate_series(dataset)
    spectrum = compute_spectrum(series, sample_spacing=DELTA / 3600.0)
    wavelet = detail_energy_profile(series, sample_spacing=DELTA / 3600.0)
    return series, spectrum, wavelet


def render(name, spectrum, wavelet):
    lines = [f"Fig. 11 ({name}) - normalized FFT magnitude at key periods", ""]
    lines.append(f"{'period (h)':>12}{'magnitude':>12}")
    for period in (12.0, 24.0, 84.0, 168.0):
        lines.append(f"{period:>12.0f}{spectrum.magnitude_at_period(period):>12.4f}")
    lines.append("")
    lines.append("a-trous wavelet detail energy per timescale")
    lines.append(f"{'scale (h)':>12}{'energy':>12}")
    for scale, energy in wavelet:
        lines.append(f"{scale:>12.1f}{energy:>12.4f}")
    return "\n".join(lines)


@pytest.mark.benchmark(group="fig11")
def test_fig11a_ccd_spectrum(benchmark):
    dataset = make_ccd_dataset(
        CCDConfig(
            dimension="trouble",
            duration_days=28.0,
            delta_seconds=DELTA,
            base_rate_per_hour=240.0,
            num_anomalies=0,
            seed=404,
        )
    )
    series, spectrum, wavelet = benchmark.pedantic(analysis, args=(dataset,), rounds=1, iterations=1)
    write_result("fig11a_ccd_fft", render("CCD", spectrum, wavelet))

    daily = spectrum.magnitude_at_period(24.0)
    weekly = spectrum.magnitude_at_period(168.0)
    offpeak = spectrum.magnitude_at_period(10.0, tolerance=0.1)
    # The day period dominates; the weekly period is noticeable; random
    # periods are negligible -- the paper's Fig. 11(a) shape.
    assert daily == pytest.approx(1.0, abs=1e-6)
    assert weekly > 0.1
    assert offpeak < 0.1
    # Wavelet confirmation: substantial energy near the daily timescale.
    near_day = [e for scale, e in wavelet if 8.0 <= scale <= 48.0]
    far = [e for scale, e in wavelet if scale < 4.0]
    assert max(near_day) > max(far)


@pytest.mark.benchmark(group="fig11")
def test_fig11b_scd_spectrum(benchmark):
    dataset = make_scd_dataset(
        SCDConfig(
            duration_days=28.0,
            delta_seconds=DELTA,
            base_rate_per_hour=300.0,
            network_scale=0.02,
            num_anomalies=0,
            seed=405,
        )
    )
    series, spectrum, wavelet = benchmark.pedantic(analysis, args=(dataset,), rounds=1, iterations=1)
    write_result("fig11b_scd_fft", render("SCD", spectrum, wavelet))

    daily = spectrum.magnitude_at_period(24.0)
    weekly = spectrum.magnitude_at_period(168.0)
    assert daily == pytest.approx(1.0, abs=1e-6)
    # SCD's weekly seasonality is much weaker than its daily one (Fig. 11(b)).
    assert weekly < 0.5 * daily
