"""Fig. 12: absolute error of ADA's adapted time series vs STA's exact series.

The paper measures the per-timeunit absolute error of ADA's time series
(averaged over heavy hitters) against the series STA reconstructs, broken
down (a) by timeunit age and (b) by hierarchy depth, for different split
rules and numbers of reference levels h: two reference levels bring the error
to ~1 %, Long-Term-History is slightly more accurate than the other rules,
and the error is stable across timeunit ages.  The benchmark reproduces both
breakdowns on a synthetic CCD trace.
"""

from __future__ import annotations

import pytest

from repro.evaluation.comparison import AlgorithmComparator

from conftest import detector_config, units_per_day, write_result

#: (label, split rule, ewma alpha, reference levels) series of Fig. 12.
CURVES = [
    ("Long-Term-History; h=0", "long-term-history", 0.4, 0),
    ("Long-Term-History; h=1", "long-term-history", 0.4, 1),
    ("Long-Term-History; h=2", "long-term-history", 0.4, 2),
    ("EWMA a=0.8; h=2", "ewma", 0.8, 2),
    ("EWMA a=0.4; h=2", "ewma", 0.4, 2),
    ("Last-Time-Unit; h=2", "last-time-unit", 0.4, 2),
    ("Uniform; h=2", "uniform", 0.4, 2),
]


@pytest.mark.benchmark(group="fig12")
def test_fig12_series_error_by_age_and_depth(benchmark, ccd_trouble_dataset, ccd_trouble_units):
    dataset = ccd_trouble_dataset
    units = ccd_trouble_units
    warmup = units_per_day(dataset.config.delta_seconds) // 2

    def evaluate_all():
        stats = {}
        for label, split_rule, alpha, h in CURVES:
            config = detector_config(
                dataset.config.delta_seconds,
                theta=10.0,
                window_days=3.0,
                reference_levels=h,
                split_rule=split_rule,
                split_ewma_alpha=alpha,
            )
            comparator = AlgorithmComparator(
                dataset.tree, config, series_error_samples=8, warmup_units=warmup
            )
            comparator.process_many(units)
            stats[label] = comparator.report().series_errors
        return stats

    stats = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    lines = [f"Fig. 12(a) - mean relative series error by timeunit age ({len(units)} units)", ""]
    ages = sorted({age for s in stats.values() for age in s.mean_by_age()})
    header = f"{'configuration':<26}" + "".join(f"t-{age:<6}" for age in ages)
    lines.append(header)
    for label, s in stats.items():
        by_age = s.mean_by_age()
        lines.append(
            f"{label:<26}" + "".join(f"{by_age.get(age, 0.0):<8.3%}" for age in ages)
        )
    lines.append("")
    lines.append("Fig. 12(b) - mean relative series error by hierarchy depth")
    depths = sorted({d for s in stats.values() for d in s.mean_by_depth()})
    header = f"{'configuration':<26}" + "".join(f"d={depth:<6}" for depth in depths)
    lines.append(header)
    for label, s in stats.items():
        by_depth = s.mean_by_depth()
        lines.append(
            f"{label:<26}" + "".join(f"{by_depth.get(depth, 0.0):<8.3%}" for depth in depths)
        )
    write_result("fig12_series_error", "\n".join(lines))

    lth = {h: stats[f"Long-Term-History; h={h}"].overall_mean() for h in (0, 1, 2)}
    # Reference time series reduce (or at least never worsen) the error, and
    # with two levels the error sits in the few-percent regime the paper shows.
    assert lth[2] <= lth[0] + 1e-9
    assert lth[2] < 0.10
    # Every configuration keeps the error well below the series magnitude.
    assert all(s.overall_mean() < 0.5 for s in stats.values())
