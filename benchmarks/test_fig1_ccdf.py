"""Fig. 1: CCDF of the normalized count of appearances per hierarchy level.

The paper's characterization shows that operational data is sparse and that
sparsity grows with depth: at the CO level ~93 % of (node, timeunit) cells in
CCD are empty (~70 % for SCD), while the root is almost always active.  The
benchmark recomputes the per-level CCDFs on generated CCD (trouble and
network) and SCD traces and checks the monotone-sparsity shape.
"""

from __future__ import annotations

import pytest

from repro.evaluation.ccdf import all_level_ccdfs

from conftest import write_result


def compute_curves(dataset):
    records = dataset.record_list()
    return all_level_ccdfs(dataset.tree, records, dataset.clock, dataset.num_timeunits)


def render(name, curves):
    lines = [f"Fig. 1 ({name}) - per-level sparsity and CCDF samples", ""]
    lines.append(f"{'depth':>6}{'empty cells':>14}{'CCDF@0.001':>12}{'CCDF@0.01':>12}{'CCDF@0.1':>12}")
    for depth, curve in sorted(curves.items()):
        lines.append(
            f"{depth:>6}{curve.empty_fraction:>13.1%}"
            f"{curve.ccdf_at(0.001):>12.4f}{curve.ccdf_at(0.01):>12.4f}{curve.ccdf_at(0.1):>12.4f}"
        )
    return "\n".join(lines)


@pytest.mark.benchmark(group="fig1")
def test_fig1a_ccd_trouble_ccdf(benchmark, ccd_trouble_dataset):
    curves = benchmark(compute_curves, ccd_trouble_dataset)
    write_result("fig1a_ccd_trouble_ccdf", render("CCD trouble issues", curves))
    depths = sorted(curves)
    # Sparsity (empty fraction) is non-decreasing with depth.
    empties = [curves[d].empty_fraction for d in depths]
    assert all(a <= b + 1e-9 for a, b in zip(empties, empties[1:]))
    # The root is essentially always active; the leaves are mostly empty.
    assert curves[depths[0]].empty_fraction < 0.2
    assert curves[depths[-1]].empty_fraction > 0.6


@pytest.mark.benchmark(group="fig1")
def test_fig1b_ccd_network_ccdf(benchmark, ccd_network_dataset):
    curves = benchmark(compute_curves, ccd_network_dataset)
    write_result("fig1b_ccd_network_ccdf", render("CCD network locations", curves))
    depths = sorted(curves)
    empties = [curves[d].empty_fraction for d in depths]
    assert all(a <= b + 1e-9 for a, b in zip(empties, empties[1:]))
    # The paper observes ~93% empty cells at the CO level (depth 4 of 5); the
    # scaled-down hierarchy concentrates the same traffic over fewer nodes, so
    # the check is that the CO level is still majority-empty and far sparser
    # than the top of the tree.
    assert curves[depths[-2]].empty_fraction > 0.5
    assert curves[depths[-2]].empty_fraction > curves[1].empty_fraction


@pytest.mark.benchmark(group="fig1")
def test_fig1c_scd_ccdf(benchmark, scd_dataset):
    curves = benchmark(compute_curves, scd_dataset)
    write_result("fig1c_scd_ccdf", render("SCD network locations", curves))
    depths = sorted(curves)
    empties = [curves[d].empty_fraction for d in depths]
    assert all(a <= b + 1e-9 for a, b in zip(empties, empties[1:]))
    assert curves[depths[-1]].empty_fraction > 0.5
