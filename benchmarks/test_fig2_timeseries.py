"""Fig. 2: representative aggregate time series (15-minute precision).

The paper shows a week of the normalized count of appearances for CCD and
SCD: a clear diurnal pattern with afternoon peaks and ~4 AM troughs, a weekly
dip on Saturday/Sunday for CCD, and occasional spikes.  The benchmark
regenerates the normalized root-aggregate series from the synthetic traces
and checks the peak/trough placement and the weekend effect.
"""

from __future__ import annotations

import pytest

from repro.datagen.arrival import hour_of_peak
from repro.streaming.clock import DAY

from conftest import write_result


def aggregate_series(dataset):
    series = [0.0] * dataset.num_timeunits
    for record in dataset.records():
        unit = dataset.clock.timeunit_of(record.timestamp)
        if 0 <= unit < len(series):
            series[unit] += 1.0
    peak = max(series) or 1.0
    return [value / peak for value in series]


def render(name, series, units_per_day):
    lines = [f"Fig. 2 ({name}) - normalized daily profile (mean over days)", ""]
    lines.append(f"{'hour':>6}{'normalized count':>18}")
    per_slot = [0.0] * units_per_day
    counts = [0] * units_per_day
    for index, value in enumerate(series):
        per_slot[index % units_per_day] += value
        counts[index % units_per_day] += 1
    for hour in range(24):
        slot = int(hour * units_per_day / 24)
        average = per_slot[slot] / max(counts[slot], 1)
        bar = "#" * int(40 * average)
        lines.append(f"{hour:>6}{average:>18.3f}  {bar}")
    return "\n".join(lines)


@pytest.mark.benchmark(group="fig2")
def test_fig2a_ccd_diurnal_and_weekly_pattern(benchmark, ccd_trouble_dataset):
    series = benchmark(aggregate_series, ccd_trouble_dataset)
    units_per_day = int(DAY / ccd_trouble_dataset.config.delta_seconds)
    write_result("fig2a_ccd_timeseries", render("CCD", series, units_per_day))

    # Diurnal: the average peak sits in the afternoon, the trough at night.
    peak_hour = hour_of_peak(series, units_per_day)
    assert 12.0 <= peak_hour <= 20.0
    trough_hour = hour_of_peak([-v for v in series], units_per_day)
    assert trough_hour <= 8.0 or trough_hour >= 22.0

    # Weekly: the trace starts on a Saturday, so the first two days are
    # quieter than the following weekdays (Fig. 2(a)).
    units = units_per_day
    weekend = sum(series[: 2 * units]) / (2 * units)
    weekdays = sum(series[2 * units: 5 * units]) / (3 * units)
    assert weekend < weekdays


@pytest.mark.benchmark(group="fig2")
def test_fig2b_scd_diurnal_pattern(benchmark, scd_dataset):
    series = benchmark(aggregate_series, scd_dataset)
    units_per_day = int(DAY / scd_dataset.config.delta_seconds)
    write_result("fig2b_scd_timeseries", render("SCD", series, units_per_day))

    # SCD shows a diurnal cycle but only a weak weekly one.
    daily_peak = max(series)
    assert daily_peak == 1.0
    peak_hour = hour_of_peak(series, units_per_day)
    trough_hour = hour_of_peak([-v for v in series], units_per_day)
    assert abs(peak_hour - trough_hour) >= 6.0
