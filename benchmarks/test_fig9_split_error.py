"""Fig. 9: relative forecast error after a biased split decays exponentially.

The paper analyses the error a SPLIT operation injects into a node's
EWMA-style forecast: if the forecast is biased by ξ at the split, the relative
error after k further iterations is proportional to (1-α)^(k-1), i.e. it
decays exponentially (the figure uses α = 0.5, T[i] = 1 and ξ ∈ {0.5F, F, 2F}).
The benchmark regenerates the three curves and checks the exponential decay
and the ordering by initial bias.
"""

from __future__ import annotations

import math

import pytest

from repro.forecasting.ewma import split_bias_relative_error

from conftest import write_result

ALPHA = 0.5
HORIZON = 10
#: Bias expressed as a multiple of the (unit) forecast, as in the figure.
BIAS_FACTORS = (2.0, 1.0, 0.5)


def compute_curves():
    return {
        factor: split_bias_relative_error(alpha=ALPHA, bias=factor, horizon=HORIZON)
        for factor in BIAS_FACTORS
    }


@pytest.mark.benchmark(group="fig9")
def test_fig9_split_error_decay(benchmark):
    curves = benchmark(compute_curves)

    lines = ["Fig. 9 - relative error RE[t+k] after a biased split (alpha=0.5, T[i]=1)", ""]
    header = f"{'k':>4}" + "".join(f"{'xi=' + str(f) + 'F':>14}" for f in BIAS_FACTORS)
    lines.append(header)
    for k in range(HORIZON):
        row = f"{k + 1:>4}" + "".join(f"{curves[f][k]:>14.5f}" for f in BIAS_FACTORS)
        lines.append(row)
    write_result("fig9_split_error", "\n".join(lines))

    for factor, errors in curves.items():
        # Strictly decreasing, exponentially: each step multiplies by (1-alpha).
        for k in range(1, len(errors)):
            assert errors[k] == pytest.approx(errors[k - 1] * (1 - ALPHA), rel=1e-9)
        # The initial error equals the bias factor itself (forecast is 1).
        assert errors[0] == pytest.approx(factor, rel=1e-9)
        # After 10 iterations the error has dropped by ~3 orders of magnitude,
        # matching the figure's log-scale y axis span.
        assert errors[-1] < errors[0] * 10 ** -2.5

    # Larger bias -> uniformly larger error curve.
    for k in range(HORIZON):
        assert curves[2.0][k] > curves[1.0][k] > curves[0.5][k]

    # The decay exponent matches (1 - alpha) on a log scale.
    slope = (math.log(curves[1.0][-1]) - math.log(curves[1.0][0])) / (HORIZON - 1)
    assert slope == pytest.approx(math.log(1 - ALPHA), rel=1e-6)
