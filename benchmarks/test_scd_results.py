"""§VII-A "Results for SCD": the ADA/STA comparison repeated on the SCD data.

The paper reports that for SCD (wider hierarchy, lower variance): the overall
runtime of STA grows much more than ADA's (7.4x vs 1.3x relative to CCD),
memory consumption roughly doubles for both but ADA stays at 43-46 % of STA,
ADA's time series error drops to ~0.8 % with a single reference level, and
the detection comparison shows essentially no false positives.  The benchmark
repeats the runtime / memory / accuracy measurements on the synthetic SCD
trace and checks those relationships.
"""

from __future__ import annotations

import pytest

from repro.core.ada import ADAAlgorithm
from repro.core.sta import STAAlgorithm
from repro.evaluation.comparison import AlgorithmComparator
from repro.evaluation.instrumentation import MemorySummary, summarize_runtime

from conftest import detector_config, units_per_day, write_result


@pytest.mark.benchmark(group="scd")
def test_scd_runtime_memory_and_accuracy(benchmark, scd_compact_dataset, scd_compact_units):
    dataset = scd_compact_dataset
    units = scd_compact_units
    delta = dataset.config.delta_seconds
    warmup = units_per_day(delta) // 2
    config = detector_config(delta, theta=12.0, window_days=2.0, reference_levels=1)

    def run_all():
        comparator = AlgorithmComparator(dataset.tree, config, warmup_units=warmup)
        comparator.process_many(units)
        return comparator.report()

    report = benchmark.pedantic(run_all, rounds=1, iterations=1)

    ada_summary = summarize_runtime("ADA", delta, report.ada_stage_seconds)
    sta_summary = summarize_runtime("STA", delta, report.sta_stage_seconds)
    ada_memory = MemorySummary("ADA", 1, report.ada_memory_units, dataset.tree.num_nodes)
    sta_memory = MemorySummary("STA", None, report.sta_memory_units, dataset.tree.num_nodes)

    lines = [
        f"SCD results (§VII-A) - {len(units)} timeunits, {dataset.tree.num_nodes} tree nodes",
        "",
        f"STA / ADA algorithmic-time ratio: "
        f"{sta_summary.total_seconds / max(ada_summary.total_seconds, 1e-9):.1f}x",
        f"ADA / STA memory ratio (h=1): {ada_memory.ratio_to(sta_memory):.2f} "
        "(paper: 0.46)",
        f"mean relative time-series error: {report.series_errors.overall_mean():.2%} "
        "(paper: 0.8% with h=1)",
        f"detection vs STA ground truth: accuracy={report.detection.accuracy:.1%} "
        f"precision={report.detection.precision:.1%} recall={report.detection.recall:.1%}",
        f"false positives={report.detection.false_positives} "
        f"false negatives={report.detection.false_negatives} "
        f"(paper: no false positives, FN in 0.13% of negative cases)",
        f"heavy hitter agreement: {report.heavy_hitter_agreement:.1%}",
    ]
    write_result("scd_results", "\n".join(lines))

    # ADA stays faster and leaner than STA on the wide SCD hierarchy too.
    assert sta_summary.total_seconds > ada_summary.total_seconds
    assert ada_memory.ratio_to(sta_memory) < 1.0
    # Lemma 1 continues to hold and the split error stays small: SCD's lower
    # volatility makes ADA *more* accurate than on CCD (paper's observation).
    assert report.heavy_hitter_agreement == 1.0
    assert report.series_errors.overall_mean() < 0.1
    assert report.detection.accuracy >= 0.97
    # Very few false positives relative to the number of tracked cases.
    assert report.detection.false_positives <= max(2, 0.01 * report.detection.total)
