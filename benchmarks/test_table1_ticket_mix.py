"""Table I: distribution of customer tickets over first-level categories.

The paper reports the share of CCD customer-care tickets per first-level
trouble category (TV 39.59 %, All Products 26.71 %, ...).  The synthetic CCD
generator is parameterized with exactly that mix; this benchmark regenerates
the table from a generated trace and checks that the observed shares match
the paper's within sampling noise.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.datagen.ccd import CCD_TICKET_MIX

from conftest import write_result


def observed_mix(records) -> dict[str, float]:
    counts = Counter(
        record.category[0]
        for record in records
        if not record.attributes.get("injected")
    )
    total = sum(counts.values())
    return {label: 100.0 * count / total for label, count in counts.items()}


@pytest.mark.benchmark(group="table1")
def test_table1_ticket_type_distribution(benchmark, ccd_trouble_dataset):
    records = ccd_trouble_dataset.record_list()
    mix = benchmark(observed_mix, records)

    lines = ["Table I - CCD customer calls by first-level ticket type", ""]
    lines.append(f"{'ticket type':<18}{'paper (%)':>12}{'reproduced (%)':>16}")
    for label, paper_share in sorted(CCD_TICKET_MIX.items(), key=lambda kv: -kv[1]):
        observed = mix.get(label, 0.0)
        lines.append(f"{label:<18}{paper_share:>12.2f}{observed:>16.2f}")
    write_result("table1_ticket_mix", "\n".join(lines))

    # Shape checks: the ordering of the top categories and rough shares hold.
    assert mix["TV"] == pytest.approx(CCD_TICKET_MIX["TV"], abs=6.0)
    assert mix["All Products"] == pytest.approx(CCD_TICKET_MIX["All Products"], abs=6.0)
    ordered = sorted(CCD_TICKET_MIX, key=lambda k: -CCD_TICKET_MIX[k])
    assert mix[ordered[0]] > mix[ordered[-1]]
    assert sum(mix.values()) == pytest.approx(100.0, abs=0.5)
