"""Table II: hierarchy properties (depth and typical degree per level).

The paper summarizes the three hierarchical domains: the CCD trouble
description tree (depth 5, degrees 9/6/3/5), the CCD network path tree
(depth 5, degrees 61/5/6/24) and the SCD network path tree (depth 4, degrees
2000/30/6).  The benchmark builds each hierarchy (the network trees at
reduced scale) and reports depth plus per-level typical degrees, checking
depth exactly and the degree *ratios* between adjacent levels approximately.
"""

from __future__ import annotations

import pytest

from repro.hierarchy.builders import (
    build_ccd_network_tree,
    build_ccd_trouble_tree,
    build_scd_network_tree,
)
from repro.hierarchy.domain import (
    CCD_NETWORK_DOMAIN,
    CCD_TROUBLE_DOMAIN,
    SCD_NETWORK_DOMAIN,
)

from conftest import write_result


def build_all():
    return {
        "CCD trouble description": (build_ccd_trouble_tree(seed=1), CCD_TROUBLE_DOMAIN, 1.0),
        "CCD network path": (build_ccd_network_tree(seed=1, scale=0.2), CCD_NETWORK_DOMAIN, 0.2),
        "SCD network path": (build_scd_network_tree(seed=1, scale=0.05), SCD_NETWORK_DOMAIN, 0.05),
    }


@pytest.mark.benchmark(group="table2")
def test_table2_hierarchy_properties(benchmark):
    trees = benchmark(build_all)

    lines = ["Table II - hierarchy properties (network trees built at reduced scale)", ""]
    lines.append(
        f"{'hierarchy':<26}{'depth':>6}{'paper degrees':>22}{'built degrees':>22}{'scale':>8}"
    )
    for name, (tree, spec, scale) in trees.items():
        built = [round(tree.typical_degree_at_level(k), 1) for k in range(1, tree.depth - 1 + 1)]
        built = [b for b in built if b > 0]
        lines.append(
            f"{name:<26}{tree.depth:>6}{str(spec.typical_degrees):>22}"
            f"{str(built):>22}{scale:>8.2f}"
        )
    write_result("table2_hierarchy", "\n".join(lines))

    # Depth matches the paper exactly.
    assert trees["CCD trouble description"][0].depth == 5
    assert trees["CCD network path"][0].depth == 5
    assert trees["SCD network path"][0].depth == 4

    # The trouble hierarchy is built at full scale: degrees match Table II.
    trouble = trees["CCD trouble description"][0]
    assert trouble.typical_degree_at_level(1) == 9
    assert trouble.typical_degree_at_level(2) == pytest.approx(6, abs=2)

    # For the scaled network hierarchies the *shape* holds: the first level is
    # the widest for SCD, and the CCD DSLAM level is wider than the IO/CO levels.
    scd = trees["SCD network path"][0]
    assert scd.typical_degree_at_level(1) > scd.typical_degree_at_level(2)
    ccd_net = trees["CCD network path"][0]
    assert ccd_net.typical_degree_at_level(4) > ccd_net.typical_degree_at_level(2)
