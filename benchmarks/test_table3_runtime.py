"""Table III: running time of Tiresias with ADA vs STA, per stage, per Δ.

The paper runs both algorithms over a month of CCD with 15-minute and 1-hour
timeunits: ADA is 14.2x (5.4x) faster overall, ~50x faster once trace reading
is excluded, and "Creating Time Series" dominates STA's cost (83-94 % of the
algorithmic time) while it is cheap for ADA.  The benchmark reproduces the
comparison on a week-long synthetic CCD trace at both timeunit sizes; the
absolute seconds differ (Python vs C++), but the stage shares and the
direction/magnitude ordering of the speedup are checked.
"""

from __future__ import annotations

import pytest

from repro.core.ada import ADAAlgorithm
from repro.core.sta import STAAlgorithm
from repro.datagen.ccd import CCDConfig, make_ccd_dataset
from repro.datagen.generator import counts_per_timeunit
from repro.evaluation.instrumentation import format_runtime_table, summarize_runtime

from conftest import detector_config, write_result


def build_units(delta_seconds: float):
    dataset = make_ccd_dataset(
        CCDConfig(
            dimension="trouble",
            duration_days=7.0,
            delta_seconds=delta_seconds,
            base_rate_per_hour=600.0,
            num_anomalies=3,
            anomaly_warmup_days=3.0,
            zipf_exponent=1.4,
            seed=909,
        )
    )
    units = counts_per_timeunit(dataset.record_list(), dataset.clock, dataset.num_timeunits)
    return dataset, units


def run_algorithm(algorithm_cls, tree, config, units):
    algorithm = algorithm_cls(tree, config)
    for counts in units:
        algorithm.process_timeunit(counts)
    return algorithm


@pytest.mark.benchmark(group="table3")
@pytest.mark.parametrize("delta_minutes", [15, 60])
def test_table3_runtime_ada_vs_sta(benchmark, delta_minutes):
    delta_seconds = delta_minutes * 60.0
    dataset, units = build_units(delta_seconds)
    config = detector_config(delta_seconds, theta=6.0, window_days=6.0)

    ada = benchmark.pedantic(
        run_algorithm, args=(ADAAlgorithm, dataset.tree, config, units), rounds=1, iterations=1
    )
    sta = run_algorithm(STAAlgorithm, dataset.tree, config, units)

    ada_summary = summarize_runtime("ADA", delta_seconds, ada.stage_seconds)
    sta_summary = summarize_runtime("STA", delta_seconds, sta.stage_seconds)
    table = format_runtime_table([ada_summary, sta_summary])
    overall = sta_summary.total_seconds / max(ada_summary.total_seconds, 1e-9)
    lines = [
        f"Table III (delta = {delta_minutes} min, {len(units)} timeunits, "
        f"{dataset.tree.num_nodes} tree nodes)",
        "",
        table,
        "",
        f"STA / ADA algorithmic-time ratio: {overall:.1f}x "
        "(paper reports 5-14x including trace reading, ~40-50x excluding it)",
    ]
    write_result(f"table3_runtime_delta{delta_minutes}", "\n".join(lines))

    # ADA must be substantially faster than STA overall.  The paper's factors
    # (14.2x at 15 min, 5.4x at 60 min) are against a 12-week window; with the
    # benchmark's shorter window the gap is smaller but must remain clearly in
    # ADA's favour, and -- like in the paper -- it is wider at Δ=15 min.
    assert overall > (1.5 if delta_minutes == 15 else 1.2)
    # Creating Time Series dominates STA's algorithmic cost...
    assert sta_summary.stage_share("creating_time_series") > 0.5
    # ...while for ADA it is a much smaller share of a much smaller total.
    assert (
        ada_summary.stage_seconds["creating_time_series"]
        < sta_summary.stage_seconds["creating_time_series"]
    )


@pytest.mark.benchmark(group="table3")
def test_table3_speedup_grows_with_smaller_timeunits(benchmark):
    """The paper's gap (14.2x at 15 min vs 5.4x at 60 min) grows as Δ shrinks."""

    def measure():
        ratios = {}
        for delta_minutes in (15, 60):
            delta_seconds = delta_minutes * 60.0
            dataset, units = build_units(delta_seconds)
            config = detector_config(delta_seconds, theta=6.0, window_days=6.0)
            ada = run_algorithm(ADAAlgorithm, dataset.tree, config, units)
            sta = run_algorithm(STAAlgorithm, dataset.tree, config, units)
            ada_total = sum(ada.stage_seconds.values())
            sta_total = sum(sta.stage_seconds.values())
            ratios[delta_minutes] = sta_total / max(ada_total, 1e-9)
        return ratios

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_result(
        "table3_speedup_vs_delta",
        "STA/ADA total-time ratio by timeunit size\n\n"
        + "\n".join(f"delta = {d:>3} min: {r:6.1f}x" for d, r in sorted(ratios.items()))
        + "\n\n(independent timing run; ratios vary a few 10s of percent between runs\n"
        "and need not match the per-delta table3_runtime_delta*.txt files exactly)",
    )
    assert ratios[15] > ratios[60]
