"""Table IV: normalized memory costs of Tiresias with ADA vs STA.

The paper reports the memory cost normalized by the average tree size and the
per-node cost: STA (which keeps ℓ weighted trees alive) costs roughly
2.3-2.8x ADA, and ADA's cost grows mildly as more reference levels ``h`` are
maintained (h=2 costs ~43 % of STA for CCD).  The benchmark measures the same
normalized quantity -- stored scalars per tree node -- for STA and for ADA
with h ∈ {0, 1, 2}.
"""

from __future__ import annotations

import pytest

from repro.core.ada import ADAAlgorithm
from repro.core.sta import STAAlgorithm
from repro.evaluation.instrumentation import MemorySummary, format_memory_table

from conftest import detector_config, write_result


def run_and_measure(algorithm_cls, tree, config, units):
    algorithm = algorithm_cls(tree, config)
    for counts in units:
        algorithm.process_timeunit(counts)
    return algorithm.memory_units()


@pytest.mark.benchmark(group="table4")
def test_table4_memory_costs(benchmark, ccd_trouble_dataset, ccd_trouble_units):
    tree = ccd_trouble_dataset.tree
    delta = ccd_trouble_dataset.config.delta_seconds
    units = ccd_trouble_units

    def measure_all():
        summaries = []
        sta_units = run_and_measure(
            STAAlgorithm, tree, detector_config(delta, reference_levels=0), units
        )
        summaries.append(MemorySummary("STA", None, sta_units, tree.num_nodes))
        for h in (0, 1, 2):
            ada_units = run_and_measure(
                ADAAlgorithm, tree, detector_config(delta, reference_levels=h), units
            )
            summaries.append(MemorySummary("ADA", h, ada_units, tree.num_nodes))
        return summaries

    summaries = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    sta_summary = summaries[0]
    ada_by_h = {s.reference_levels: s for s in summaries[1:]}

    lines = [
        f"Table IV - normalized memory cost ({len(units)} timeunits, "
        f"{tree.num_nodes} tree nodes, window = {detector_config(delta).window_units} units)",
        "",
        format_memory_table(summaries),
        "",
        "ADA / STA cost ratios: "
        + ", ".join(
            f"h={h}: {ada_by_h[h].ratio_to(sta_summary):.2f}" for h in sorted(ada_by_h)
        )
        + "  (paper: 0.36 at h=0 up to 0.43 at h=2)",
    ]
    write_result("table4_memory", "\n".join(lines))

    # ADA uses less memory than STA at every h.
    for h, summary in ada_by_h.items():
        assert summary.ratio_to(sta_summary) < 1.0, f"ADA h={h} should beat STA"
    # More reference levels cost more memory (monotone in h).
    assert ada_by_h[0].memory_units <= ada_by_h[1].memory_units <= ada_by_h[2].memory_units
