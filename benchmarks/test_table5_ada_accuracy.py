"""Table V: anomaly detection accuracy of ADA against STA as ground truth.

The paper compares the anomalies ADA reports with those STA reports (STA
reconstructs exact time series, so it serves as ground truth) over 100 time
instances, for each split rule and number of reference levels: accuracy is
≥97 % everywhere and ≥99.3 % with two reference levels; precision/recall
improve sharply as h grows for Long-Term-History; EWMA has the best precision
and Uniform the best recall.  The benchmark reproduces the per-configuration
accuracy/precision/recall matrix on a synthetic CCD trace.
"""

from __future__ import annotations

import pytest

from repro.evaluation.comparison import AlgorithmComparator

from conftest import detector_config, units_per_day, write_result

#: (split rule, ewma alpha, reference levels) rows of Table V.
CONFIGURATIONS = [
    ("long-term-history", 0.4, 0),
    ("long-term-history", 0.4, 1),
    ("long-term-history", 0.4, 2),
    ("ewma", 0.8, 2),
    ("ewma", 0.4, 2),
    ("last-time-unit", 0.4, 2),
    ("uniform", 0.4, 2),
]


def evaluate_configuration(dataset, units, split_rule, alpha, h, warmup):
    config = detector_config(
        dataset.config.delta_seconds,
        theta=10.0,
        window_days=3.0,
        reference_levels=h,
        split_rule=split_rule,
        split_ewma_alpha=alpha,
    )
    comparator = AlgorithmComparator(dataset.tree, config, warmup_units=warmup)
    comparator.process_many(units)
    return comparator.report()


@pytest.mark.benchmark(group="table5")
def test_table5_detection_accuracy_by_split_rule(benchmark, ccd_trouble_dataset, ccd_trouble_units):
    dataset = ccd_trouble_dataset
    units = ccd_trouble_units
    warmup = units_per_day(dataset.config.delta_seconds)

    def evaluate_all():
        reports = {}
        for split_rule, alpha, h in CONFIGURATIONS:
            reports[(split_rule, alpha, h)] = evaluate_configuration(
                dataset, units, split_rule, alpha, h, warmup
            )
        return reports

    reports = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    lines = [
        f"Table V - ADA anomaly detection accuracy vs STA "
        f"({len(units)} timeunits, warmup {warmup})",
        "",
        f"{'split rule':<22}{'h':>3}{'accuracy':>11}{'precision':>11}{'recall':>9}{'HH agree':>10}",
    ]
    for (split_rule, alpha, h), report in reports.items():
        label = split_rule if split_rule != "ewma" else f"ewma (a={alpha})"
        d = report.detection
        lines.append(
            f"{label:<22}{h:>3}{d.accuracy:>10.1%}{d.precision:>11.1%}"
            f"{d.recall:>9.1%}{report.heavy_hitter_agreement:>10.1%}"
        )
    write_result("table5_ada_accuracy", "\n".join(lines))

    # Heavy hitter sets always agree (Lemma 1), for every configuration.
    assert all(r.heavy_hitter_agreement == 1.0 for r in reports.values())
    # Accuracy is uniformly high (paper: >=97%; our smaller universe of
    # decision cases makes each disagreement weigh more).
    assert all(r.detection.accuracy >= 0.85 for r in reports.values())
    # Reference levels sharply improve recall for Long-Term-History
    # (the paper goes from 41.8% at h=0 to 88.1% at h=2).
    lth_recall = [
        reports[("long-term-history", 0.4, h)].detection.recall for h in (0, 1, 2)
    ]
    assert lth_recall[2] > lth_recall[0]
    # Uniform has the best recall but the worst precision (paper's trade-off).
    uniform = reports[("uniform", 0.4, 2)].detection
    others = [r.detection for key, r in reports.items() if key[0] != "uniform"]
    assert uniform.recall >= max(d.recall for d in others) - 0.05
    assert uniform.precision <= min(d.precision for d in others) + 0.05
