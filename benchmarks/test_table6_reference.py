"""Table VI: comparison of Tiresias (ADA) against the reference method.

The paper compares Tiresias's CCD anomalies with a reference set produced by
the ISP operations team's control charts over first-level (VHO) aggregates:
Type 1 accuracy 94.1 %, Type 2 (true alarms over reference anomalies) 90.9 %,
Type 3 (true negatives over non-reference cases) 94.1 %.  It also reports
that ~95 % of the *new* anomalies Tiresias finds are localized below the
first level.  The benchmark runs both detectors on the same synthetic CCD
network-path trace and reproduces the three ratios and the depth breakdown.
"""

from __future__ import annotations

import pytest

from repro.baselines.control_chart import ControlChartDetector
from repro.core.pipeline import Tiresias
from repro.core.reporting import AnomalyReportStore
from repro.datagen.generator import counts_per_timeunit
from repro.evaluation.metrics import compare_with_reference, detection_rate

from conftest import detector_config, units_per_day, write_result


def run_comparison(dataset):
    units = counts_per_timeunit(dataset.record_list(), dataset.clock, dataset.num_timeunits)
    upd = units_per_day(dataset.config.delta_seconds)
    config = detector_config(
        dataset.config.delta_seconds, theta=12.0, window_days=3.0, reference_levels=2
    )
    tiresias = Tiresias(
        dataset.tree, config, algorithm="ada", clock=dataset.clock, warmup_units=upd
    )
    # The operations team's chart uses a time-of-day baseline; without it the
    # chart would alarm on every diurnal ramp-up rather than on real events.
    reference = ControlChartDetector(
        dataset.tree,
        depth=1,
        k_sigma=4.0,
        smoothing=0.3,
        min_observations=upd,
        min_excess=15.0,
        seasonal_period=upd,
    )
    tracked = []
    for unit, counts in enumerate(units):
        result = tiresias.process_timeunit_counts(counts, unit)
        reference.process_timeunit(counts, unit)
        tracked.extend((path, unit) for path in result.heavy_hitters)
    # A sustained event is flagged by the two methods in slightly different
    # timeunits (Holt-Winters adapts within the event, the per-phase chart
    # does not); a small tolerance matches them as the same alarm.
    comparison = compare_with_reference(
        tiresias.anomalies, reference.anomalies, tracked, time_tolerance=4
    )
    return tiresias, reference, comparison


@pytest.mark.benchmark(group="table6")
def test_table6_comparison_with_reference_method(benchmark, ccd_network_dataset):
    dataset = ccd_network_dataset
    tiresias, reference, comparison = benchmark.pedantic(
        run_comparison, args=(dataset,), rounds=1, iterations=1
    )

    store = AnomalyReportStore()
    store.add_many(tiresias.anomalies)
    depth_distribution = store.depth_distribution()
    below_first_level = sum(
        share for depth, share in depth_distribution.items() if depth > 1
    )
    truth_rate = detection_rate(
        tiresias.anomalies, dataset.ground_truth(), tolerance_units=2
    )

    lines = [
        f"Table VI - ADA vs the first-level control-chart reference "
        f"({dataset.num_timeunits} timeunits, {dataset.tree.num_nodes} nodes)",
        "",
        f"{'metric':<40}{'paper':>10}{'reproduced':>12}",
        f"{'Type 1 (accuracy)':<40}{'94.1%':>10}{comparison.type1_accuracy:>11.1%}",
        f"{'Type 2 (TA / (TA+MA))':<40}{'90.9%':>10}{comparison.type2:>11.1%}",
        f"{'Type 3 (TN / (TN+NA))':<40}{'94.1%':>10}{comparison.type3:>11.1%}",
        "",
        f"true alarms={comparison.true_alarms}  missed={comparison.missed_anomalies}  "
        f"new={comparison.new_anomalies}  true negatives={comparison.true_negatives}",
        f"reference alarms={len(reference.anomalies)}  tiresias anomalies={len(tiresias.anomalies)}",
        f"injected ground-truth events detected by Tiresias: {truth_rate:.0%}",
        "",
        "depth distribution of Tiresias anomalies (after ancestor dedup):",
    ] + [
        f"  depth {depth}: {share:.1%}" for depth, share in depth_distribution.items()
    ] + [
        f"fraction of anomalies localized below the first level: {below_first_level:.0%} "
        "(paper: ~95% of new anomalies)",
    ]
    write_result("table6_reference_comparison", "\n".join(lines))

    # Shape checks: Tiresias finds most of what the reference method finds...
    assert comparison.type2 >= 0.6
    # ...rarely alarms where nothing is going on...
    assert comparison.type1_accuracy >= 0.85
    assert comparison.type3 >= 0.85
    # ...catches the injected ground truth, and localizes below level 1,
    # which the reference method structurally cannot do.
    assert truth_rate >= 0.5
    assert below_first_level > 0.0
    assert all(len(a.node_path) == 1 for a in reference.anomalies)
