"""Pytest bootstrap: make ``src/`` importable without an installed package.

The library is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in offline environments without the ``wheel``
package).  Adding ``src/`` to ``sys.path`` here lets the test and benchmark
suites run straight from a source checkout as well.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "rewrite the expected-output files under tests/golden/ from the "
            "current engine output instead of diffing against them"
        ),
    )
