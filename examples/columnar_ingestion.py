#!/usr/bin/env python3
"""Columnar batch ingestion: same detections, a fraction of the time.

The online system has two equivalent ways to feed a detection engine:

* **record at a time** — every :class:`OperationalRecord` is validated,
  routed and counted individually (simple, great for live trickle feeds);
* **columnar batches** — records move as :class:`RecordBatch` columns;
  timeunit classification is one vectorized pass and per-leaf counting is
  one grouped aggregation per batch (the high-throughput replay/catch-up
  path).

This example demonstrates the contract between them:

1. generate a CCD trace and persist it as JSONL (the operational export);
2. replay it twice — per record via ``process_stream`` and columnar via
   ``read_batches_jsonl`` + ``process_batches``;
3. verify the two runs report byte-identical anomalies, and compare their
   wall-clock ingestion throughput.

Run with::

    python examples/columnar_ingestion.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import (
    CCDConfig,
    DetectionEngine,
    ForecastConfig,
    TiresiasConfig,
    make_ccd_dataset,
    read_batches_jsonl,
)
from repro.io import read_records_jsonl, write_records_jsonl

DELTA = 1800.0
UNITS_PER_DAY = int(86400 / DELTA)


def build_engine(dataset) -> DetectionEngine:
    config = TiresiasConfig(
        theta=8.0,
        ratio_threshold=2.2,
        difference_threshold=6.0,
        delta_seconds=DELTA,
        window_units=2 * UNITS_PER_DAY,
        reference_levels=1,
        forecast=ForecastConfig(season_lengths=(UNITS_PER_DAY,), fallback_alpha=0.4),
    )
    engine = DetectionEngine()
    engine.add_session(
        "ccd", dataset.tree, config, clock=dataset.clock,
        warmup_units=UNITS_PER_DAY // 2,
    )
    return engine


def main() -> None:
    dataset = make_ccd_dataset(
        CCDConfig(
            dimension="trouble",
            duration_days=4.0,
            delta_seconds=DELTA,
            base_rate_per_hour=400.0,
            num_anomalies=4,
            anomaly_warmup_days=1.5,
            seed=7,
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "ccd.jsonl"
        n = write_records_jsonl(dataset.records(), trace)
        print(f"trace: {n} records over {dataset.num_timeunits} timeunits -> {trace.name}")

        # --- per-record replay ------------------------------------------------
        record_engine = build_engine(dataset)
        start = time.perf_counter()
        record_engine.process_stream(read_records_jsonl(trace))
        record_seconds = time.perf_counter() - start

        # --- columnar replay --------------------------------------------------
        batch_engine = build_engine(dataset)
        start = time.perf_counter()
        batch_engine.process_batches(read_batches_jsonl(trace, batch_size=8192))
        batch_seconds = time.perf_counter() - start

    record_anomalies = [a.to_dict() for a in record_engine.session("ccd").anomalies]
    batch_anomalies = [a.to_dict() for a in batch_engine.session("ccd").anomalies]
    assert record_anomalies == batch_anomalies, "the equivalence guarantee broke!"

    print(f"\nper-record path: {n / record_seconds:>12,.0f} records/sec "
          f"({record_seconds:.3f}s)")
    print(f"columnar path:   {n / batch_seconds:>12,.0f} records/sec "
          f"({batch_seconds:.3f}s)  -> {record_seconds / batch_seconds:.1f}x")
    print(f"\nboth paths reported {len(record_anomalies)} identical anomalies; "
          "a few of them:")
    for anomaly in record_engine.session("ccd").anomalies[:5]:
        print(f"  t={anomaly.timeunit:>4}  {'/'.join(anomaly.node_path):<40} "
              f"ratio={anomaly.ratio:.2f}")


if __name__ == "__main__":
    main()
