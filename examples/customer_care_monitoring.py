#!/usr/bin/env python3
"""Customer-care monitoring: Tiresias vs the first-level control chart.

This example mirrors the paper's operational scenario (§VII-B): an ISP
monitors customer-care call volumes over the network-path hierarchy
(SHO → VHO → IO → CO → DSLAM).  The current practice applies control charts
to the VHO-level aggregates only; Tiresias tracks succinct hierarchical heavy
hitters and can therefore localize incidents deeper in the hierarchy.

The example

1. generates a CCD-like trace over the network hierarchy with injected
   incidents at various depths,
2. runs both detectors online over the same per-timeunit counts,
3. prints the Table-VI-style comparison (Type 1/2/3) and shows, for a few
   incidents, at which level each method localized the problem.

Run with::

    python examples/customer_care_monitoring.py
"""

from __future__ import annotations

from repro import (
    CallbackObserver,
    CCDConfig,
    ForecastConfig,
    Tiresias,
    TiresiasConfig,
    make_ccd_dataset,
)
from repro.baselines import ControlChartDetector
from repro.datagen.generator import counts_per_timeunit
from repro.evaluation.metrics import compare_with_reference, detection_rate


def main() -> None:
    dataset = make_ccd_dataset(
        CCDConfig(
            dimension="network",
            duration_days=5.0,
            base_rate_per_hour=360.0,
            network_scale=0.5,
            num_anomalies=6,
            anomaly_warmup_days=2.0,
            seed=11,
        )
    )
    units_per_day = int(86400 / dataset.config.delta_seconds)
    units = counts_per_timeunit(
        dataset.record_list(), dataset.clock, dataset.num_timeunits
    )
    print(f"network hierarchy: {dataset.tree.num_nodes} nodes "
          f"({len(dataset.tree.nodes_at_depth(1))} VHOs)")
    print(f"trace: {len(units)} timeunits, "
          f"{sum(sum(u.values()) for u in units)} performance-related calls")

    # Tiresias (ADA) over the full hierarchy.
    config = TiresiasConfig(
        theta=12.0,
        delta_seconds=dataset.config.delta_seconds,
        window_units=3 * units_per_day,
        reference_levels=2,
        forecast=ForecastConfig(season_lengths=(units_per_day,)),
    )
    tiresias = Tiresias(
        dataset.tree, config, algorithm="ada", clock=dataset.clock,
        warmup_units=units_per_day,
    )

    # Current practice: a seasonal control chart on the VHO aggregates only.
    reference = ControlChartDetector(
        dataset.tree,
        depth=1,
        k_sigma=4.0,
        smoothing=0.3,
        min_observations=units_per_day,
        min_excess=15.0,
        seasonal_period=units_per_day,
    )

    # The heavy hitter log feeds the Table-VI comparison; a lifecycle hook
    # collects it as timeunits close instead of threading it through the loop.
    tracked = []
    tiresias.subscribe(CallbackObserver(
        on_timeunit_closed=lambda session, result: tracked.extend(
            (path, result.timeunit) for path in result.heavy_hitters),
    ))
    for unit, counts in enumerate(units):
        tiresias.process_timeunit_counts(counts, unit)
        reference.process_timeunit(counts, unit)

    comparison = compare_with_reference(
        tiresias.anomalies, reference.anomalies, tracked, time_tolerance=4
    )
    print("\n--- Table VI style comparison -------------------------------")
    print(f"Type 1 (accuracy): {comparison.type1_accuracy:6.1%}")
    print(f"Type 2 (coverage of reference alarms): {comparison.type2:6.1%}")
    print(f"Type 3 (agreement on quiet cases): {comparison.type3:6.1%}")
    print(f"reference alarms: {len(reference.anomalies)}  "
          f"tiresias anomalies: {len(tiresias.anomalies)}  "
          f"new (below-VHO or unseen) anomalies: {comparison.new_anomalies}")

    print("\n--- localization of injected incidents ----------------------")
    rate = detection_rate(tiresias.anomalies, dataset.ground_truth(), tolerance_units=2)
    print(f"injected incidents detected by Tiresias: {rate:.0%}")
    for injected in dataset.anomalies:
        unit_range = injected.timeunits(dataset.clock)
        ours = [
            a for a in tiresias.anomalies
            if unit_range.start - 2 <= a.timeunit <= unit_range.stop + 2
        ]
        deepest = max((len(a.node_path) for a in ours), default=0)
        ref_hits = [
            a for a in reference.anomalies
            if unit_range.start - 2 <= a.timeunit <= unit_range.stop + 2
        ]
        location = " / ".join(injected.node_path)
        print(
            f"  incident at depth {len(injected.node_path)} ({location[:48]:<48}) -> "
            f"tiresias localized at depth {deepest}, "
            f"reference {'alarmed (VHO level)' if ref_hits else 'silent'}"
        )

    print("\n--- depth distribution of Tiresias anomalies ----------------")
    for depth, share in tiresias.reports.depth_distribution().items():
        print(f"  depth {depth}: {share:5.1%}")


if __name__ == "__main__":
    main()
