#!/usr/bin/env python3
"""One engine, three hierarchies: CCD-trouble + CCD-network + SCD.

The paper's evaluation monitors three operational feeds at once: customer
care calls over the trouble-description hierarchy, the same calls over the
network-path hierarchy, and set-top-box crashes over the STB network
hierarchy.  This example runs all three as named sessions of a single
:class:`~repro.engine.engine.DetectionEngine` fed by one merged,
time-ordered record stream:

1. generate the three synthetic datasets and tag each record with the name
   of the feed it belongs to (``attributes["stream"]``, the default routing
   key);
2. register one session per feed — each with its own tree, configuration and
   detector state — plus an engine-level observer that receives every
   anomaly with its source session;
3. merge the three streams by timestamp and push the result through the
   engine, then summarize per-feed detections.

Run with::

    python examples/multi_stream_engine.py
"""

from __future__ import annotations

from repro import (
    CallbackObserver,
    CCDConfig,
    DetectionEngine,
    ForecastConfig,
    InputStream,
    OperationalRecord,
    SCDConfig,
    TiresiasConfig,
    make_ccd_dataset,
    make_scd_dataset,
)
from repro.evaluation.metrics import detection_rate

DELTA = 900.0
UNITS_PER_DAY = int(86400 / DELTA)


def tagged_records(dataset, stream):
    """The dataset's records with the routing key attached."""
    return [
        OperationalRecord.create(r.timestamp, r.category, stream=stream)
        for r in dataset.records()
    ]


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Three operational feeds (as in the paper's evaluation).
    # ------------------------------------------------------------------
    datasets = {
        "ccd-trouble": make_ccd_dataset(CCDConfig(
            dimension="trouble", duration_days=5.0, base_rate_per_hour=240.0,
            num_anomalies=3, anomaly_warmup_days=2.0, seed=7)),
        "ccd-network": make_ccd_dataset(CCDConfig(
            dimension="network", duration_days=5.0, base_rate_per_hour=300.0,
            network_scale=0.4, num_anomalies=3, anomaly_warmup_days=2.0, seed=11)),
        "scd": make_scd_dataset(SCDConfig(
            duration_days=5.0, base_rate_per_hour=360.0, network_scale=0.05,
            num_anomalies=3, anomaly_warmup_days=2.0, seed=21)),
    }

    # ------------------------------------------------------------------
    # 2. One engine, one session per feed, one live anomaly subscriber.
    # ------------------------------------------------------------------
    engine = DetectionEngine()
    base_config = TiresiasConfig(
        theta=10.0,
        delta_seconds=DELTA,
        window_units=3 * UNITS_PER_DAY,
        reference_levels=2,
        forecast=ForecastConfig(season_lengths=(UNITS_PER_DAY,)),
    )
    for name, dataset in datasets.items():
        engine.add_session(
            name,
            dataset.tree,
            base_config.replace(theta=12.0 if name == "scd" else 10.0),
            algorithm="ada",
            clock=dataset.clock,
            warmup_units=UNITS_PER_DAY,
        )
        print(f"session {name:<12} tree: {dataset.tree.num_nodes:>4} nodes, "
              f"{dataset.tree.num_leaves:>4} leaves")

    live_feed = []
    engine.subscribe(CallbackObserver(
        on_anomaly=lambda session, anomaly: live_feed.append((session.name, anomaly)),
        on_warmup_complete=lambda session, unit: print(
            f"[hook] {session.name}: warm-up complete at timeunit {unit}"),
    ))

    # ------------------------------------------------------------------
    # 3. Merge the three feeds by timestamp and run them through the engine.
    # ------------------------------------------------------------------
    merged = InputStream.merge(
        *(tagged_records(dataset, name) for name, dataset in datasets.items())
    )
    engine.process_stream(merged)
    print(f"\nmerged stream consumed: {merged.records_seen} records routed to "
          f"{len(engine)} sessions; {len(live_feed)} anomalies observed live\n")

    for name, dataset in datasets.items():
        session = engine.session(name)
        rate = detection_rate(
            session.anomalies, dataset.ground_truth(), tolerance_units=2
        )
        print(f"{name:<12} {session.units_processed:>4} timeunits  "
              f"{len(session.anomalies):>3} anomalies  "
              f"injected events detected: {rate:4.0%}")

    print("\nfirst few live-feed events (session, timeunit, location):")
    for name, anomaly in live_feed[:6]:
        location = " / ".join(anomaly.node_path) or "<root>"
        print(f"  {name:<12} unit {anomaly.timeunit:>4}  {location[:56]}")


if __name__ == "__main__":
    main()
