#!/usr/bin/env python3
"""Quickstart: detect anomalies in a synthetic customer-care call stream.

This is the smallest end-to-end use of the library:

1. generate a synthetic CCD-like dataset (trouble-description hierarchy,
   diurnal/weekly seasonality, a few injected incidents with ground truth);
2. run the online Tiresias detector (ADA algorithm) over the record stream,
   observing anomalies *as they are detected* through a lifecycle hook
   instead of polling the report store afterwards;
3. print the detected anomalies and check them against the injected events.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CallbackObserver,
    CCDConfig,
    ForecastConfig,
    Tiresias,
    TiresiasConfig,
    make_ccd_dataset,
)
from repro.evaluation.metrics import detection_rate


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A synthetic operational dataset (substitute for the paper's CCD).
    # ------------------------------------------------------------------
    dataset = make_ccd_dataset(
        CCDConfig(
            dimension="trouble",
            duration_days=6.0,
            base_rate_per_hour=240.0,
            num_anomalies=3,
            anomaly_warmup_days=2.0,
            seed=7,
        )
    )
    units_per_day = int(86400 / dataset.config.delta_seconds)
    print(f"hierarchy: {dataset.tree.num_nodes} nodes, {dataset.tree.num_leaves} leaves")
    print(f"trace:     {dataset.num_timeunits} timeunits of {dataset.config.delta_seconds:.0f}s")
    print(f"injected ground-truth events: {len(dataset.anomalies)}")

    # ------------------------------------------------------------------
    # 2. The online detector.
    # ------------------------------------------------------------------
    config = TiresiasConfig(
        theta=10.0,                      # heavy hitter threshold
        ratio_threshold=2.8,             # RT (Definition 4)
        difference_threshold=8.0,        # DT (Definition 4)
        delta_seconds=dataset.config.delta_seconds,
        window_units=4 * units_per_day,  # sliding window length (ell)
        reference_levels=2,              # h: reference series for the top 2 levels
        split_rule="long-term-history",
        forecast=ForecastConfig(season_lengths=(units_per_day,)),
    )
    detector = Tiresias(
        dataset.tree,
        config,
        algorithm="ada",
        clock=dataset.clock,
        warmup_units=units_per_day,      # suppress alarms while models warm up
    )

    # Lifecycle hooks: an alerting backend would push these somewhere; here we
    # just collect the live anomaly feed and note when warm-up finishes.
    live_anomalies = []
    detector.subscribe(CallbackObserver(
        on_anomaly=lambda session, anomaly: live_anomalies.append(anomaly),
        on_warmup_complete=lambda session, unit: print(
            f"[hook] warm-up complete at timeunit {unit}; alarms are live"),
    ))

    detector.process_stream(dataset.records())

    # ------------------------------------------------------------------
    # 3. Results.
    # ------------------------------------------------------------------
    assert live_anomalies == detector.anomalies  # the hook saw every report
    print(f"\nprocessed {detector.units_processed} timeunits; "
          f"{len(live_anomalies)} anomalies reported\n")
    for anomaly in detector.reports.deduplicate_ancestors():
        location = " / ".join(anomaly.node_path) or "<root>"
        print(
            f"  timeunit {anomaly.timeunit:>4}  {location:<55} "
            f"actual={anomaly.actual:7.1f}  forecast={anomaly.forecast:7.1f}  "
            f"ratio={anomaly.ratio:5.1f}"
        )

    rate = detection_rate(detector.anomalies, dataset.ground_truth(), tolerance_units=2)
    print(f"\ninjected events detected: {rate:.0%}")


if __name__ == "__main__":
    main()
