#!/usr/bin/env python3
"""Run shard workers in *separate processes* that dial in over TCP.

The pipe and shared-memory transports spawn their own workers; the TCP
transport can instead coordinate workers it did **not** start — other
processes, containers, or hosts.  The contract is small:

* the coordinator builds ``TcpTransport(spawn_workers=False)``, calls
  :meth:`~repro.engine.transport.tcp.TcpTransport.listen` to learn its
  port, and hands the transport to a :class:`ShardedDetectionEngine`;
* each worker runs :func:`repro.engine.transport.run_worker(host, port)`
  — a blocking loop that serves shard sessions until the coordinator
  stops it.  Workers retry the dial briefly, so start order is free.

This example demonstrates both roles and proves the cross-process claim:
``--mode smoke`` (the default, used by CI) launches two *independent*
worker processes with ``subprocess`` — fresh interpreters, no inherited
state, exactly like remote hosts — ingests a CCD workload through them,
and asserts the detections and the merged checkpoint equal a serial run.

Run the one-command smoke::

    python examples/remote_workers.py

or play coordinator/worker by hand in three terminals::

    terminal 1:  python examples/remote_workers.py --mode coordinator --workers 2
                 # prints "listening on 127.0.0.1:PORT"
    terminal 2:  python examples/remote_workers.py --mode worker --port PORT
    terminal 3:  python examples/remote_workers.py --mode worker --port PORT
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time

from repro import (
    CCDConfig,
    DetectionEngine,
    ShardedDetectionEngine,
    TiresiasConfig,
    ForecastConfig,
    make_ccd_dataset,
)
from repro.engine.transport import TcpTransport, run_worker
from repro.streaming.batch import iter_record_batches

DELTA = 900.0
UNITS_PER_DAY = int(86400 / DELTA)


def make_workload():
    dataset = make_ccd_dataset(
        CCDConfig(
            dimension="trouble",
            duration_days=2.0,
            delta_seconds=DELTA,
            base_rate_per_hour=300.0,
            num_anomalies=3,
            anomaly_warmup_days=1.0,
            seed=4242,
        )
    )
    config = TiresiasConfig(
        theta=6.0,
        ratio_threshold=2.8,
        difference_threshold=8.0,
        delta_seconds=DELTA,
        window_units=UNITS_PER_DAY,
        reference_levels=2,
        track_root=False,
        allow_root_heavy=False,
        forecast=ForecastConfig(season_lengths=(UNITS_PER_DAY,), fallback_alpha=0.3),
    )
    return dataset, config


def run_coordinator(host: str, port: int, workers: int, quiet: bool = False):
    """Serve a workload through externally-started TCP workers.

    Returns ``(results, anomalies, state)`` for the caller to compare.
    """
    dataset, config = make_workload()
    transport = TcpTransport(host=host, port=port, spawn_workers=False)
    bound = transport.listen()
    print(f"listening on {host}:{bound} — waiting for {workers} worker(s)")
    sys.stdout.flush()
    with ShardedDetectionEngine(num_workers=workers, transport=transport) as engine:
        engine.add_session(
            "ccd", dataset.tree, config, clock=dataset.clock, subtree_shards=workers
        )
        results = engine.process_batches(
            iter_record_batches(dataset.record_list(), 8192)
        )["ccd"]
        anomalies = [a.to_dict() for a in engine.anomalies()["ccd"]]
        state = engine.state_dict()
        stats = engine.transport_stats()
    if not quiet:
        print(
            f"coordinator: {len(results)} timeunits, {len(anomalies)} anomalies "
            f"through {stats['ships']} tcp frames "
            f"({stats['ship_bytes']} B shipped, "
            f"{stats['ship_serialized_bytes']} B of it pickled)"
        )
    return results, anomalies, state


def run_smoke(workers: int) -> None:
    """Cross-process proof: subprocess workers, serial-equality asserts."""
    transport = TcpTransport(spawn_workers=False)
    port = transport.listen()
    print(f"smoke: coordinator listening on 127.0.0.1:{port}")
    procs = [
        subprocess.Popen(
            [
                sys.executable,
                __file__,
                "--mode",
                "worker",
                "--port",
                str(port),
            ]
        )
        for _ in range(workers)
    ]
    try:
        dataset, config = make_workload()
        records = dataset.record_list()  # resamples per call — take one draw
        with ShardedDetectionEngine(
            num_workers=workers, transport=transport
        ) as engine:
            engine.add_session(
                "ccd",
                dataset.tree,
                config,
                clock=dataset.clock,
                subtree_shards=workers,
            )
            results = engine.process_batches(
                iter_record_batches(records, 8192)
            )["ccd"]
            anomalies = [a.to_dict() for a in engine.anomalies()["ccd"]]
            state = engine.state_dict()
    finally:
        deadline = time.monotonic() + 10
        for proc in procs:
            proc.wait(timeout=max(0.1, deadline - time.monotonic()))

    serial = DetectionEngine()
    serial.add_session("ccd", dataset.tree, config, clock=dataset.clock)
    serial_results = serial.process_batches(
        iter_record_batches(records, 8192)
    )["ccd"]
    serial_anomalies = [a.to_dict() for a in serial.anomalies()["ccd"]]

    assert results == serial_results, "remote-worker detections diverged!"
    assert anomalies == serial_anomalies, "remote-worker anomalies diverged!"
    resumed = DetectionEngine.from_state_dict(state)
    assert "ccd" in resumed.session_names
    print(
        f"smoke OK: {workers} subprocess workers, {len(results)} timeunits, "
        f"{len(anomalies)} anomalies — identical to serial, checkpoint loads "
        f"serially"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode",
        choices=("smoke", "coordinator", "worker"),
        default="smoke",
        help="smoke = coordinator + subprocess workers + equality asserts",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="coordinator: bind port (0 = pick); "
        "worker: the coordinator's port (required)"
    )
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()
    if args.mode == "worker":
        if not args.port:
            parser.error("--mode worker requires --port")
        run_worker(args.host, args.port)
    elif args.mode == "coordinator":
        run_coordinator(args.host, args.port, args.workers)
    else:
        run_smoke(args.workers)


if __name__ == "__main__":
    main()
