#!/usr/bin/env python3
"""Run shard workers in *separate processes* that dial in over TCP.

The pipe and shared-memory transports spawn their own workers; the TCP
transport can instead coordinate workers it did **not** start — other
processes, containers, or hosts.  The contract is small:

* the coordinator builds ``TcpTransport(spawn_workers=False)``, calls
  :meth:`~repro.engine.transport.tcp.TcpTransport.listen` to learn its
  port, and hands the transport to a :class:`ShardedDetectionEngine`;
* each worker runs :func:`repro.engine.transport.run_worker(host, port)`
  — a blocking loop that serves shard sessions until the coordinator
  stops it.  Workers retry the dial briefly, so start order is free.

This example demonstrates both roles and proves the cross-process claim:
``--mode smoke`` (the default, used by CI) launches two *independent*
worker processes with ``subprocess`` — fresh interpreters, no inherited
state, exactly like remote hosts — ingests a CCD workload through them,
and asserts the detections and the merged checkpoint equal a serial run.

``--mode kill-smoke`` is the fault-tolerance variant CI's chaos job runs:
it SIGKILLs one live worker process at a seeded point mid-stream, launches
a replacement that dials back in, and asserts the supervisor's recovery
(respawn + snapshot restore + batch replay) still produces detections
bit-identical to a serial run.  The fault seed is printed so any failure
is reproducible with ``--fault-seed``.

Run the one-command smoke::

    python examples/remote_workers.py

or play coordinator/worker by hand in three terminals::

    terminal 1:  python examples/remote_workers.py --mode coordinator --workers 2
                 # prints "listening on 127.0.0.1:PORT"
    terminal 2:  python examples/remote_workers.py --mode worker --port PORT
    terminal 3:  python examples/remote_workers.py --mode worker --port PORT
"""

from __future__ import annotations

import argparse
import random
import subprocess
import sys
import time

from repro import (
    CCDConfig,
    DetectionEngine,
    ShardedDetectionEngine,
    TiresiasConfig,
    ForecastConfig,
    make_ccd_dataset,
)
from repro.engine.transport import TcpTransport, run_worker
from repro.streaming.batch import iter_record_batches

DELTA = 900.0
UNITS_PER_DAY = int(86400 / DELTA)


def make_workload():
    dataset = make_ccd_dataset(
        CCDConfig(
            dimension="trouble",
            duration_days=2.0,
            delta_seconds=DELTA,
            base_rate_per_hour=300.0,
            num_anomalies=3,
            anomaly_warmup_days=1.0,
            seed=4242,
        )
    )
    config = TiresiasConfig(
        theta=6.0,
        ratio_threshold=2.8,
        difference_threshold=8.0,
        delta_seconds=DELTA,
        window_units=UNITS_PER_DAY,
        reference_levels=2,
        track_root=False,
        allow_root_heavy=False,
        forecast=ForecastConfig(season_lengths=(UNITS_PER_DAY,), fallback_alpha=0.3),
    )
    return dataset, config


def run_coordinator(host: str, port: int, workers: int, quiet: bool = False):
    """Serve a workload through externally-started TCP workers.

    Returns ``(results, anomalies, state)`` for the caller to compare.
    """
    dataset, config = make_workload()
    transport = TcpTransport(host=host, port=port, spawn_workers=False)
    bound = transport.listen()
    print(f"listening on {host}:{bound} — waiting for {workers} worker(s)")
    sys.stdout.flush()
    with ShardedDetectionEngine(num_workers=workers, transport=transport) as engine:
        engine.add_session(
            "ccd", dataset.tree, config, clock=dataset.clock, subtree_shards=workers
        )
        results = engine.process_batches(
            iter_record_batches(dataset.record_list(), 8192)
        )["ccd"]
        anomalies = [a.to_dict() for a in engine.anomalies()["ccd"]]
        state = engine.state_dict()
        stats = engine.transport_stats()
    if not quiet:
        print(
            f"coordinator: {len(results)} timeunits, {len(anomalies)} anomalies "
            f"through {stats['ships']} tcp frames "
            f"({stats['ship_bytes']} B shipped, "
            f"{stats['ship_serialized_bytes']} B of it pickled)"
        )
    return results, anomalies, state


def _launch_worker(port: int) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, __file__, "--mode", "worker", "--port", str(port)]
    )


def run_smoke(workers: int) -> None:
    """Cross-process proof: subprocess workers, serial-equality asserts."""
    transport = TcpTransport(spawn_workers=False)
    port = transport.listen()
    print(f"smoke: coordinator listening on 127.0.0.1:{port}")
    procs = [_launch_worker(port) for _ in range(workers)]
    try:
        dataset, config = make_workload()
        records = dataset.record_list()  # resamples per call — take one draw
        with ShardedDetectionEngine(
            num_workers=workers, transport=transport
        ) as engine:
            engine.add_session(
                "ccd",
                dataset.tree,
                config,
                clock=dataset.clock,
                subtree_shards=workers,
            )
            results = engine.process_batches(
                iter_record_batches(records, 8192)
            )["ccd"]
            anomalies = [a.to_dict() for a in engine.anomalies()["ccd"]]
            state = engine.state_dict()
    finally:
        deadline = time.monotonic() + 10
        for proc in procs:
            proc.wait(timeout=max(0.1, deadline - time.monotonic()))

    serial = DetectionEngine()
    serial.add_session("ccd", dataset.tree, config, clock=dataset.clock)
    serial_results = serial.process_batches(
        iter_record_batches(records, 8192)
    )["ccd"]
    serial_anomalies = [a.to_dict() for a in serial.anomalies()["ccd"]]

    assert results == serial_results, "remote-worker detections diverged!"
    assert anomalies == serial_anomalies, "remote-worker anomalies diverged!"
    resumed = DetectionEngine.from_state_dict(state)
    assert "ccd" in resumed.session_names
    print(
        f"smoke OK: {workers} subprocess workers, {len(results)} timeunits, "
        f"{len(anomalies)} anomalies — identical to serial, checkpoint loads "
        f"serially"
    )


def run_kill_smoke(workers: int, seed: int) -> None:
    """Worker-kill proof: SIGKILL a live worker mid-stream, recover, compare.

    The fault point is drawn from ``seed`` (victim process + batch ordinal)
    and printed up front, so a red CI leg is reproducible verbatim with
    ``--mode kill-smoke --fault-seed N``.
    """
    rng = random.Random(seed)
    victim_index = rng.randrange(workers)
    kill_before_batch = rng.randrange(3, 9)
    print(
        f"kill-smoke: fault seed={seed} -> SIGKILL worker process "
        f"#{victim_index} before batch {kill_before_batch}"
    )
    transport = TcpTransport(spawn_workers=False, accept_timeout=30.0)
    port = transport.listen()
    print(f"kill-smoke: coordinator listening on 127.0.0.1:{port}")
    procs = [_launch_worker(port) for _ in range(workers)]

    dataset, config = make_workload()
    records = dataset.record_list()  # resamples per call — take one draw

    def batches_with_fault():
        for index, batch in enumerate(iter_record_batches(records, 1024)):
            if index == kill_before_batch:
                victim = procs[victim_index]
                victim.kill()
                victim.wait()
                # The replacement dials in while the supervisor's respawn
                # waits on the listener — exactly how an external fleet
                # replaces a crashed host.
                procs.append(_launch_worker(port))
                print(f"kill-smoke: worker pid {victim.pid} killed, "
                      f"replacement launched")
            yield batch

    try:
        with ShardedDetectionEngine(
            num_workers=workers, transport=transport
        ) as engine:
            engine.add_session(
                "ccd",
                dataset.tree,
                config,
                clock=dataset.clock,
                subtree_shards=workers,
            )
            results = engine.process_batches(batches_with_fault())["ccd"]
            anomalies = [a.to_dict() for a in engine.anomalies()["ccd"]]
            state = engine.state_dict()
            recoveries = engine.recoveries_total
            replayed = engine.replayed_batches_total
            info = engine.sharding_info()["supervision"]
    finally:
        deadline = time.monotonic() + 10
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=max(0.1, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    assert recoveries >= 1, "the kill never triggered a recovery!"
    assert info["enabled"] and not info["recovering"]

    serial = DetectionEngine()
    serial.add_session("ccd", dataset.tree, config, clock=dataset.clock)
    serial_results = serial.process_batches(
        iter_record_batches(records, 1024)
    )["ccd"]
    serial_anomalies = [a.to_dict() for a in serial.anomalies()["ccd"]]

    assert results == serial_results, "post-recovery detections diverged!"
    assert anomalies == serial_anomalies, "post-recovery anomalies diverged!"
    resumed = DetectionEngine.from_state_dict(state)
    assert "ccd" in resumed.session_names
    print(
        f"kill-smoke OK: seed={seed}, {recoveries} recovery(ies), "
        f"{replayed} batch(es) replayed — detections identical to serial, "
        f"checkpoint loads serially"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode",
        choices=("smoke", "kill-smoke", "coordinator", "worker"),
        default="smoke",
        help="smoke = coordinator + subprocess workers + equality asserts; "
        "kill-smoke = same, but SIGKILL one worker mid-stream and assert "
        "supervised recovery",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="coordinator: bind port (0 = pick); "
        "worker: the coordinator's port (required)"
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=1729,
        help="kill-smoke: seed for the victim/batch fault point (printed)",
    )
    args = parser.parse_args()
    if args.mode == "worker":
        if not args.port:
            parser.error("--mode worker requires --port")
        run_worker(args.host, args.port)
    elif args.mode == "coordinator":
        run_coordinator(args.host, args.port, args.workers)
    elif args.mode == "kill-smoke":
        run_kill_smoke(args.workers, args.fault_seed)
    else:
        run_smoke(args.workers)


if __name__ == "__main__":
    main()
