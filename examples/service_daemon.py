#!/usr/bin/env python3
"""The detection daemon end to end: stream, alert, kill, resume.

This example exercises :mod:`repro.service` the way an operator would:

1. write a service config (one CCD tenant) and a JSONL trace to a temp dir;
2. launch ``python -m repro.service`` as a real subprocess and discover its
   ephemeral ports through the ``--ready-file``;
3. run a tiny webhook receiver in-process and register it as the daemon's
   anomaly egress — alerts arrive over HTTP while records stream in;
4. stream the first half of the trace, take an explicit checkpoint, then
   **SIGKILL** the daemon (simulating a crash — no cleanup runs);
5. restart on the same checkpoint directory, stream the rest, flush, and
   compare the daemon's detections against an uninterrupted in-process
   serial run: they are identical, dict for dict.

Run with::

    python examples/service_daemon.py            # full trace (~1 day CCD)
    python examples/service_daemon.py --smoke    # reduced trace for CI
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, HTTPServer
from pathlib import Path

from repro import CCDConfig, ForecastConfig, TiresiasConfig, make_ccd_dataset
from repro.io import write_records_jsonl
from repro.service import ServiceConfig, TenantSpec

REPO_ROOT = Path(__file__).resolve().parents[1]
DELTA = 900.0


def build_inputs(workdir: Path, smoke: bool) -> tuple[Path, Path, TenantSpec, list]:
    """Generate the trace + service config; return paths, spec and records."""
    dataset = make_ccd_dataset(
        CCDConfig(
            dimension="trouble",
            duration_days=0.5 if smoke else 1.0,
            delta_seconds=DELTA,
            base_rate_per_hour=60.0 if smoke else 120.0,
            num_anomalies=2,
            anomaly_warmup_days=0.2,
            seed=42,
        )
    )
    records = list(dataset.records())
    trace_path = workdir / "trace.jsonl"
    write_records_jsonl(iter(records), trace_path)

    spec = TenantSpec(
        name="care-calls",
        tree=dataset.tree,
        config=TiresiasConfig(
            theta=5.0,
            ratio_threshold=2.0,
            difference_threshold=4.0,
            delta_seconds=DELTA,
            window_units=48,
            reference_levels=1,
            track_root=False,
            allow_root_heavy=False,
            forecast=ForecastConfig(season_lengths=(8,), fallback_alpha=0.3),
        ),
        clock=dataset.clock,
    )
    config_path = workdir / "service.json"
    return trace_path, config_path, spec, records


class WebhookReceiver(BaseHTTPRequestHandler):
    """Collects anomaly alerts POSTed by the daemon's webhook sink."""

    alerts: list[dict] = []

    def do_POST(self):  # noqa: N802 - stdlib naming
        length = int(self.headers.get("Content-Length", "0"))
        type(self).alerts.append(json.loads(self.rfile.read(length)))
        self.send_response(200)
        self.end_headers()

    def log_message(self, *args):
        pass


def http_json(port: int, path: str, method: str = "GET", data: bytes | None = None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def launch_daemon(config_path: Path, ready_file: Path) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    ready_file.unlink(missing_ok=True)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service",
         "--config", str(config_path), "--ready-file", str(ready_file)],
        env=env,
    )
    deadline = time.monotonic() + 30
    while not ready_file.exists():
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("daemon did not become ready")
        time.sleep(0.05)
    ready = json.loads(ready_file.read_text())
    return process, ready["port"]


def stream_ndjson(port: int, lines: list[str], chunk: int = 500) -> int:
    """POST the trace in NDJSON chunks, retrying politely on 429."""
    accepted = 0
    for start in range(0, len(lines), chunk):
        body = ("\n".join(lines[start : start + chunk]) + "\n").encode()
        while True:
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/ingest", data=body, method="POST"
            )
            try:
                with urllib.request.urlopen(request, timeout=60) as response:
                    accepted += json.loads(response.read())["accepted"]
                break
            except urllib.error.HTTPError as exc:
                if exc.code != 429:
                    raise
                # Backpressure: the bounded queue is full.  Nothing of this
                # chunk was admitted; honor Retry-After and resend it whole.
                time.sleep(float(exc.headers.get("Retry-After", "0.05")))
    return accepted


def wait_drained(port: int) -> None:
    while not http_json(port, "/healthz")["drained"]:
        time.sleep(0.05)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="reduced trace for CI smoke runs"
    )
    args = parser.parse_args()

    receiver = HTTPServer(("127.0.0.1", 0), WebhookReceiver)
    threading.Thread(target=receiver.serve_forever, daemon=True).start()

    with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
        workdir = Path(tmp)
        trace_path, config_path, spec, records = build_inputs(workdir, args.smoke)
        config = ServiceConfig(
            tenants=(spec,),
            checkpoint_dir=workdir / "checkpoints",
            port=0,
            checkpoint_interval=5.0,
            alert_jsonl_path=workdir / "alerts.jsonl",
            webhook_url=f"http://127.0.0.1:{receiver.server_port}/alerts",
        )
        config.save(config_path)
        lines = [l for l in trace_path.read_text().splitlines() if l]
        cut = len(lines) // 2
        print(f"trace: {len(lines)} records, tenant {spec.name!r}")

        ready_file = workdir / "ready.json"
        print("\n[1] first daemon: stream half the trace, checkpoint, SIGKILL")
        process, port = launch_daemon(config_path, ready_file)
        try:
            accepted = stream_ndjson(port, lines[:cut])
            wait_drained(port)
            written = http_json(port, "/checkpoint", "POST")["checkpoints"]
            print(f"    accepted {accepted} records; checkpointed: {sorted(written)}")
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
            print("    daemon killed with SIGKILL (no cleanup ran)")
        finally:
            if process.poll() is None:
                process.kill()

        print("\n[2] second daemon: resume from checkpoint, stream the rest")
        process, port = launch_daemon(config_path, ready_file)
        try:
            inventory = http_json(port, "/tenants")["tenants"][spec.name]
            print(f"    tenant on restart: {inventory}")
            accepted = stream_ndjson(port, lines[cut:])
            wait_drained(port)
            http_json(port, "/flush", "POST")
            daemon_anomalies = http_json(
                port, f"/anomalies?tenant={spec.name}"
            )["anomalies"]
            metrics = http_json(port, "/metrics")
            tenant = metrics["tenants"][spec.name]
            print(
                f"    accepted {accepted} records; units processed: "
                f"{tenant['units_processed']}; anomalies: {len(daemon_anomalies)}"
            )
            print(f"    adaptation stats: {tenant['adaptation_stats']}")
            http_json(port, "/shutdown", "POST")
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()

        print("\n[3] uninterrupted serial run for comparison")
        serial = spec.build_session()
        serial.process_stream(iter(records))
        serial_anomalies = [a.to_dict() for a in serial.anomalies]
        identical = daemon_anomalies == serial_anomalies
        print(
            f"    serial anomalies: {len(serial_anomalies)}; "
            f"crash-resumed daemon identical: {identical}"
        )

        alert_lines = [
            json.loads(line)
            for line in (workdir / "alerts.jsonl").read_text().splitlines()
            if line
        ]
        print(
            f"\n[4] alert egress: {len(alert_lines)} JSONL alerts, "
            f"{len(WebhookReceiver.alerts)} webhook deliveries"
        )

        print("\n[5] online reconfiguration + shadow experiment cycle")
        config2_path = workdir / "service2.json"
        config.replace(checkpoint_dir=workdir / "checkpoints2").save(config2_path)
        process, port = launch_daemon(config2_path, ready_file)
        try:
            stream_ndjson(port, lines[:cut])
            wait_drained(port)
            new_config = http_json(
                port,
                f"/reconfigure?tenant={spec.name}",
                "POST",
                json.dumps({"difference_threshold": 3.5}).encode(),
            )["config"]
            print(
                f"    reconfigured live: difference_threshold -> "
                f"{new_config['difference_threshold']}"
            )
            http_json(
                port,
                f"/shadow?tenant={spec.name}",
                "POST",
                json.dumps(
                    {
                        "action": "start",
                        "config": {"theta": 2.0, "ratio_threshold": 1.2},
                    }
                ).encode(),
            )
            stream_ndjson(port, lines[cut:])
            wait_drained(port)
            http_json(port, "/flush", "POST")
            report = http_json(port, f"/shadow?tenant={spec.name}")
            print(
                f"    shadow compared {report['units_compared']} units, "
                f"divergent: {report['units_divergent']} "
                f"(agreement {report['agreement']:.2f})"
            )
            promoted = http_json(
                port,
                f"/shadow?tenant={spec.name}",
                "POST",
                json.dumps({"action": "promote"}).encode(),
            )
            reconf_metrics = http_json(port, "/metrics")["reconfiguration"]
            print(
                f"    promoted the candidate; reconfiguration counters: "
                f"{reconf_metrics}"
            )
            http_json(port, "/shutdown", "POST")
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()

        receiver.shutdown()
        receiver.server_close()

        if report["units_compared"] == 0 or report["units_divergent"] == 0:
            print("FAIL: the shadow experiment never diverged")
            return 1
        if promoted["report"]["units_compared"] != report["units_compared"]:
            print("FAIL: promote returned a different experiment report")
            return 1
        if reconf_metrics["shadows_promoted_total"] != 1:
            print("FAIL: promotion not visible in /metrics")
            return 1
        if not identical:
            print("FAIL: daemon detections diverged from the serial run")
            return 1
        if args.smoke and not daemon_anomalies:
            print("FAIL: smoke run produced no anomalies")
            return 1
        stats = tenant["adaptation_stats"]
        if not (stats.get("fastpath_units", 0) or stats.get("planned_units", 0)):
            print("FAIL: /metrics reported an idle adaptation engine")
            return 1
        print("\nOK: kill-and-restart run is identical to the serial run")
        return 0


if __name__ == "__main__":
    sys.exit(main())
