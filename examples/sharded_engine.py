#!/usr/bin/env python3
"""Scale one detection session across worker processes — bit-identically.

The detection pipeline is embarrassingly parallel across disjoint depth-1
subtrees of a hierarchy, and :class:`~repro.engine.sharded.
ShardedDetectionEngine` exploits that with full determinism: whatever the
worker count, the detections, timeunit results and checkpoints are
byte-identical to the serial engine.  This example:

1. generates a CCD trouble-dimension trace and runs it through the serial
   :class:`~repro.engine.engine.DetectionEngine` as the reference;
2. runs the identical workload through a sharded engine at two and four
   workers (the trouble hierarchy's nine depth-1 subtrees are balanced
   across them) and verifies the outputs are bit-for-bit equal;
3. checkpoints the sharded engine mid-stream, restores the checkpoint into a
   *serial* engine — the formats are interchangeable — and finishes the
   stream there, again with identical detections.

Subtree sharding requires excluding the hierarchy root from heavy hitter
tracking (``track_root=False, allow_root_heavy=False``): the root is the one
node whose state would span every shard.  The serial engine honours the same
configuration, which is what makes the comparison exact.

Run with::

    python examples/sharded_engine.py
"""

from __future__ import annotations

import time

from repro import (
    CCDConfig,
    DetectionEngine,
    ForecastConfig,
    ShardedDetectionEngine,
    TiresiasConfig,
    make_ccd_dataset,
)
from repro.streaming.batch import iter_record_batches

DELTA = 900.0
UNITS_PER_DAY = int(86400 / DELTA)


def main() -> None:
    dataset = make_ccd_dataset(
        CCDConfig(
            dimension="trouble",
            duration_days=4.0,
            delta_seconds=DELTA,
            base_rate_per_hour=400.0,
            num_anomalies=5,
            anomaly_warmup_days=1.5,
            seed=2024,
        )
    )
    config = TiresiasConfig(
        theta=6.0,
        ratio_threshold=2.8,
        difference_threshold=8.0,
        delta_seconds=DELTA,
        window_units=3 * UNITS_PER_DAY,
        reference_levels=2,
        track_root=False,
        allow_root_heavy=False,
        forecast=ForecastConfig(season_lengths=(UNITS_PER_DAY,), fallback_alpha=0.3),
    )
    records = dataset.record_list()
    print(f"workload: {len(records)} records, {dataset.num_timeunits} timeunits, "
          f"{len(dataset.tree.root.children)} depth-1 subtrees")

    # 1. Serial reference -------------------------------------------------
    serial = DetectionEngine()
    serial.add_session("ccd", dataset.tree, config, clock=dataset.clock)
    start = time.perf_counter()
    serial_results = serial.process_batches(iter_record_batches(records, 8192))["ccd"]
    serial_seconds = time.perf_counter() - start
    serial_anomalies = [a.to_dict() for a in serial.anomalies()["ccd"]]
    print(f"serial: {len(serial_anomalies)} anomalies in {serial_seconds:.2f}s")

    # 2. Sharded runs must match bit-for-bit ------------------------------
    for workers in (2, 4):
        with ShardedDetectionEngine(num_workers=workers) as engine:
            engine.add_session(
                "ccd", dataset.tree, config, clock=dataset.clock,
                subtree_shards=workers,
            )
            engine.units_processed()  # spawn workers before timing
            start = time.perf_counter()
            results = engine.process_batches(
                iter_record_batches(records, 8192)
            )["ccd"]
            seconds = time.perf_counter() - start
            anomalies = [a.to_dict() for a in engine.anomalies()["ccd"]]
        assert results == serial_results, "sharded results diverged!"
        assert anomalies == serial_anomalies, "sharded anomalies diverged!"
        print(f"sharded x{workers}: identical detections in {seconds:.2f}s "
              f"({serial_seconds / seconds:.2f}x vs serial on this machine)")

    # 3. Checkpoints are interchangeable with the serial engine -----------
    batches = list(iter_record_batches(records, 8192))
    half = len(batches) // 2
    produced = []
    with ShardedDetectionEngine(num_workers=2) as engine:
        engine.add_session(
            "ccd", dataset.tree, config, clock=dataset.clock, subtree_shards=2
        )
        for batch in batches[:half]:
            produced.extend(engine.ingest_record_batch(batch)["ccd"])
        state = engine.state_dict()  # serial checkpoint format

    resumed = DetectionEngine.from_state_dict(state)
    for batch in batches[half:]:
        produced.extend(resumed.ingest_record_batch(batch)["ccd"])
    produced.extend(resumed.flush()["ccd"])
    assert produced == serial_results, "resume across engines diverged!"
    print("sharded -> checkpoint -> serial resume: identical detections")


if __name__ == "__main__":
    main()
