#!/usr/bin/env python3
"""Ablation: how the ADA split rule and reference levels affect accuracy.

DESIGN.md calls out two design choices of ADA worth ablating: the split rule
used to hand a heavy hitter's time series down to its children (Uniform /
Last-Time-Unit / Long-Term-History / EWMA, §V-B4) and the number of reference
levels h (§V-B5).  This example runs ADA and STA side by side on the same CCD
trace for each configuration and prints the resulting time-series error and
detection agreement -- the same quantities as the paper's Fig. 12 and
Table V, at example scale.

Run with::

    python examples/split_rule_ablation.py
"""

from __future__ import annotations

from repro import CCDConfig, ForecastConfig, TiresiasConfig, make_ccd_dataset
from repro.datagen.generator import counts_per_timeunit
from repro.evaluation.comparison import AlgorithmComparator

CONFIGURATIONS = [
    ("uniform", 0.4, 2),
    ("last-time-unit", 0.4, 2),
    ("ewma", 0.4, 2),
    ("long-term-history", 0.4, 0),
    ("long-term-history", 0.4, 1),
    ("long-term-history", 0.4, 2),
]


def main() -> None:
    dataset = make_ccd_dataset(
        CCDConfig(
            dimension="trouble",
            duration_days=5.0,
            base_rate_per_hour=300.0,
            num_anomalies=3,
            anomaly_warmup_days=2.0,
            seed=99,
        )
    )
    units_per_day = int(86400 / dataset.config.delta_seconds)
    units = counts_per_timeunit(
        dataset.record_list(), dataset.clock, dataset.num_timeunits
    )
    print(f"trace: {len(units)} timeunits over the "
          f"{dataset.tree.num_nodes}-node trouble hierarchy\n")

    # One base configuration; each ablation point is a targeted replace().
    base_config = TiresiasConfig(
        theta=10.0,
        delta_seconds=dataset.config.delta_seconds,
        window_units=3 * units_per_day,
        forecast=ForecastConfig(season_lengths=(units_per_day,)),
    )

    header = (f"{'split rule':<20}{'h':>3}{'series err':>12}{'accuracy':>10}"
              f"{'precision':>11}{'recall':>9}{'speedup':>9}")
    print(header)
    print("-" * len(header))
    for split_rule, alpha, h in CONFIGURATIONS:
        config = base_config.replace(
            reference_levels=h,
            split_rule=split_rule,
            split_ewma_alpha=alpha,
        )
        comparator = AlgorithmComparator(
            dataset.tree, config, warmup_units=units_per_day
        )
        comparator.process_many(units)
        report = comparator.report()
        print(
            f"{split_rule:<20}{h:>3}"
            f"{report.series_errors.overall_mean():>11.2%}"
            f"{report.detection.accuracy:>10.1%}"
            f"{report.detection.precision:>11.1%}"
            f"{report.detection.recall:>9.1%}"
            f"{report.speedup:>8.1f}x"
        )

    print("\nReading the table: more reference levels shrink the error left "
          "behind by split operations; Long-Term-History is the most accurate "
          "rule overall, while Uniform trades precision for recall.")


if __name__ == "__main__":
    main()
