#!/usr/bin/env python3
"""Set-top-box crash monitoring with offline seasonality analysis.

This example follows the paper's SCD scenario end to end, including the parts
of the pipeline that the quickstart skips:

1. generate a history trace and run the offline seasonality analysis (Step 3
   of the system overview: FFT + a-trous wavelet) to choose the seasonal
   periods and their combination weight;
2. configure the forecasting model from that analysis
   (:func:`repro.derive_seasonal_config`);
3. run the online detector over a fresh monitoring window — interrupting it
   halfway through with a checkpoint/restore cycle, the way an always-on
   monitoring process survives a restart — then persist the anomaly reports
   and query them the way an operations engineer would (by subtree, by time
   range, by magnitude).

Run with::

    python examples/stb_crash_monitoring.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import SCDConfig, Tiresias, TiresiasConfig, make_scd_dataset
from repro.core.reporting import AnomalyQuery
from repro.core.pipeline import derive_seasonal_config
from repro.evaluation.metrics import detection_rate
from repro.seasonality import SeasonalityAnalyzer


def aggregate_series(dataset) -> list[float]:
    """Per-timeunit total crash counts (the root aggregate)."""
    series = [0.0] * dataset.num_timeunits
    for record in dataset.records():
        unit = dataset.clock.timeunit_of(record.timestamp)
        if 0 <= unit < len(series):
            series[unit] += 1.0
    return series


def main() -> None:
    delta = 900.0
    units_per_day = int(86400 / delta)

    # ------------------------------------------------------------------
    # 1. Offline seasonality analysis on a clean history trace.
    # ------------------------------------------------------------------
    history = make_scd_dataset(
        SCDConfig(duration_days=14.0, delta_seconds=delta, base_rate_per_hour=400.0,
                  network_scale=0.05, num_anomalies=0, seed=3)
    )
    history_series = aggregate_series(history)
    analyzer = SeasonalityAnalyzer(timeunit_seconds=delta, max_seasons=2)
    profile = analyzer.analyze(history_series)
    print("offline seasonality analysis (FFT + wavelet):")
    for period, weight in zip(profile.periods_timeunits, profile.weights):
        print(f"  period = {period:>4} timeunits ({period * delta / 3600:5.1f} h), "
              f"weight = {weight:.2f}")

    # ------------------------------------------------------------------
    # 2. Detector configuration derived from the analysis.
    # ------------------------------------------------------------------
    base_config = TiresiasConfig(
        theta=12.0,
        delta_seconds=delta,
        window_units=3 * units_per_day,
        reference_levels=1,
        split_rule="long-term-history",
    )
    config = derive_seasonal_config(history_series, base_config, max_seasons=2)
    print(f"\nforecasting seasons: {config.forecast.season_lengths} "
          f"weights: {config.forecast.season_weights}")

    # ------------------------------------------------------------------
    # 3. Online monitoring of a fresh trace with injected crash storms.
    # ------------------------------------------------------------------
    monitoring = make_scd_dataset(
        SCDConfig(duration_days=5.0, delta_seconds=delta, base_rate_per_hour=400.0,
                  network_scale=0.05, num_anomalies=3, anomaly_warmup_days=2.0, seed=21)
    )
    detector = Tiresias(
        monitoring.tree, config, algorithm="ada", clock=monitoring.clock,
        warmup_units=units_per_day,
    )

    # Simulate a process restart mid-stream: ingest half, checkpoint, restore
    # into a fresh detector, and continue.  Detections are identical to an
    # uninterrupted run (the sliding-window and forecaster state round-trip).
    records = monitoring.record_list()
    half = len(records) // 2
    detector.ingest_batch(records[:half])
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_path = Path(tmp) / "scd_detector.ckpt.json"
        detector.save_checkpoint(checkpoint_path)
        print(f"\ncheckpoint at record {half}/{len(records)} "
              f"({checkpoint_path.stat().st_size} bytes); restoring...")
        detector = Tiresias.load_checkpoint(checkpoint_path)
    detector.ingest_batch(records[half:])
    detector.flush()

    print(f"processed {detector.units_processed} timeunits; "
          f"{len(detector.anomalies)} anomalies reported")
    rate = detection_rate(detector.anomalies, monitoring.ground_truth(), tolerance_units=2)
    print(f"injected crash storms detected: {rate:.0%}")

    # Persist and query the report database (Step 5/6 + the front end's role).
    with tempfile.TemporaryDirectory() as tmp:
        report_path = Path(tmp) / "scd_anomalies.jsonl"
        detector.reports.save_jsonl(report_path)
        print(f"\nreports persisted to {report_path.name} "
              f"({report_path.stat().st_size} bytes)")

    print("\nlargest anomalies (excess >= 20 crashes above forecast):")
    for anomaly in detector.reports.query(AnomalyQuery(min_excess=20.0)):
        location = " / ".join(anomaly.node_path) or "<national>"
        print(f"  unit {anomaly.timeunit:>4}  {location:<40} "
              f"actual={anomaly.actual:6.1f} forecast={anomaly.forecast:6.1f}")

    if detector.anomalies:
        first = detector.anomalies[0]
        subtree = first.node_path[:1]
        in_subtree = detector.reports.query(AnomalyQuery(subtree=subtree))
        print(f"\nanomalies under {' / '.join(subtree)}: {len(in_subtree)}")


if __name__ == "__main__":
    main()
