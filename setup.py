"""Setuptools entry point.

Kept as an executable ``setup.py`` (rather than pyproject-only metadata) so
that editable installs work in offline environments whose setuptools
predates PEP 660 wheel-less editable support.  The version is read from
``src/repro/__init__.py`` — the single source of truth.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(
    r'^__version__ = "([^"]+)"', _INIT.read_text(encoding="utf-8"), re.MULTILINE
).group(1)

setup(
    name="repro-tiresias",
    version=VERSION,
    description=(
        "Reproduction of Tiresias (Hong et al., ICDCS 2012): online anomaly "
        "detection over hierarchical operational data, with a multi-tenant "
        "detection daemon"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    extras_require={
        # The library runs without NumPy (pure-Python fallbacks); install the
        # extra for the vectorized kernels.
        "vector": ["numpy"],
    },
    entry_points={
        "console_scripts": [
            "repro-serve = repro.service.daemon:main",
        ],
    },
)
