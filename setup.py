"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools predates PEP 660 wheel-less editable support.
"""

from setuptools import setup

setup()
