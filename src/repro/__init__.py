"""repro: a reproduction of Tiresias (Hong et al., ICDCS 2012).

Tiresias performs online anomaly detection over hierarchical operational
network data (customer care call logs, set-top-box crash logs).  The library
provides:

* the hierarchical-domain and streaming substrates (``repro.hierarchy``,
  ``repro.streaming``);
* the forecasting and seasonality analysis toolkit (``repro.forecasting``,
  ``repro.seasonality``);
* the core contribution -- succinct hierarchical heavy hitters, the STA and
  ADA tracking algorithms, the dual-threshold detector (``repro.core``),
  both resolvable by name through the pluggable registries
  (``repro.core.registry``);
* the engine layer -- multi-session detection over merged streams, lifecycle
  hooks, and JSON checkpoint/restore (``repro.engine``, ``repro.io``);
* synthetic CCD/SCD dataset generators with ground-truth anomaly injection
  (``repro.datagen``);
* the baselines and evaluation harness used to regenerate the paper's tables
  and figures (``repro.baselines``, ``repro.evaluation``).

Quickstart (single hierarchy, engine API)::

    from repro import (
        CallbackObserver, DetectionEngine, TiresiasConfig, make_ccd_dataset,
    )

    dataset = make_ccd_dataset()
    engine = DetectionEngine()
    engine.add_session(
        "ccd",
        dataset.tree,
        TiresiasConfig(theta=12, window_units=672),
        algorithm="ada",
        clock=dataset.clock,
    )
    engine.subscribe(CallbackObserver(
        on_anomaly=lambda session, a: print(session.name, a.node_path, a.ratio)
    ))
    engine.process_stream(dataset.records())
    engine.save_checkpoint("ccd.ckpt.json")   # resume later with
    # engine = DetectionEngine.load_checkpoint("ccd.ckpt.json")

The legacy single-tree facade keeps working unchanged::

    from repro import Tiresias, TiresiasConfig, make_ccd_dataset

    dataset = make_ccd_dataset()
    detector = Tiresias(dataset.tree, TiresiasConfig(theta=12, window_units=672))
    detector.process_stream(dataset.records())
    for anomaly in detector.anomalies:
        print(anomaly.node_path, anomaly.timeunit, anomaly.ratio)
"""

from repro.core import (
    ADAAlgorithm,
    Anomaly,
    AnomalyQuery,
    AnomalyReportStore,
    ForecastConfig,
    STAAlgorithm,
    ThresholdDetector,
    TimeunitResult,
    Tiresias,
    TiresiasConfig,
    available_algorithms,
    available_forecasters,
    compute_hhh,
    compute_shhh,
    derive_seasonal_config,
    register_algorithm,
    register_forecaster,
)
from repro.datagen import (
    CCDConfig,
    SCDConfig,
    make_ccd_dataset,
    make_scd_dataset,
)
from repro.engine import (
    CallbackObserver,
    DetectionEngine,
    DetectionSession,
    EngineObserver,
    ShardedDetectionEngine,
)
from repro.hierarchy import (
    HierarchyNode,
    HierarchyTree,
    build_ccd_network_tree,
    build_ccd_trouble_tree,
    build_scd_network_tree,
)
from repro.io import (
    load_checkpoint,
    read_batches_csv,
    read_batches_jsonl,
    save_checkpoint,
)
from repro.streaming import (
    InputStream,
    OperationalRecord,
    RecordBatch,
    SimulationClock,
    SlidingWindow,
    iter_record_batches,
)

__version__ = "1.9.0"

__all__ = [
    "__version__",
    "Tiresias",
    "TiresiasConfig",
    "ForecastConfig",
    "derive_seasonal_config",
    "DetectionEngine",
    "ShardedDetectionEngine",
    "DetectionSession",
    "EngineObserver",
    "CallbackObserver",
    "register_algorithm",
    "register_forecaster",
    "available_algorithms",
    "available_forecasters",
    "save_checkpoint",
    "load_checkpoint",
    "ADAAlgorithm",
    "STAAlgorithm",
    "ThresholdDetector",
    "Anomaly",
    "AnomalyReportStore",
    "AnomalyQuery",
    "TimeunitResult",
    "compute_hhh",
    "compute_shhh",
    "HierarchyTree",
    "HierarchyNode",
    "build_ccd_trouble_tree",
    "build_ccd_network_tree",
    "build_scd_network_tree",
    "OperationalRecord",
    "RecordBatch",
    "iter_record_batches",
    "InputStream",
    "SimulationClock",
    "SlidingWindow",
    "read_batches_csv",
    "read_batches_jsonl",
    "CCDConfig",
    "SCDConfig",
    "make_ccd_dataset",
    "make_scd_dataset",
]
