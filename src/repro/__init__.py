"""repro: a reproduction of Tiresias (Hong et al., ICDCS 2012).

Tiresias performs online anomaly detection over hierarchical operational
network data (customer care call logs, set-top-box crash logs).  The library
provides:

* the hierarchical-domain and streaming substrates (``repro.hierarchy``,
  ``repro.streaming``);
* the forecasting and seasonality analysis toolkit (``repro.forecasting``,
  ``repro.seasonality``);
* the core contribution -- succinct hierarchical heavy hitters, the STA and
  ADA tracking algorithms, the dual-threshold detector, and the end-to-end
  pipeline (``repro.core``);
* synthetic CCD/SCD dataset generators with ground-truth anomaly injection
  (``repro.datagen``);
* the baselines and evaluation harness used to regenerate the paper's tables
  and figures (``repro.baselines``, ``repro.evaluation``).

Quickstart::

    from repro import Tiresias, TiresiasConfig, make_ccd_dataset

    dataset = make_ccd_dataset()
    config = TiresiasConfig(theta=12, window_units=672)
    detector = Tiresias(dataset.tree, config, algorithm="ada")
    detector.process_stream(dataset.records())
    for anomaly in detector.anomalies:
        print(anomaly.node_path, anomaly.timeunit, anomaly.ratio)
"""

from repro.core import (
    ADAAlgorithm,
    Anomaly,
    AnomalyQuery,
    AnomalyReportStore,
    ForecastConfig,
    STAAlgorithm,
    ThresholdDetector,
    TimeunitResult,
    Tiresias,
    TiresiasConfig,
    compute_hhh,
    compute_shhh,
    derive_seasonal_config,
)
from repro.datagen import (
    CCDConfig,
    SCDConfig,
    make_ccd_dataset,
    make_scd_dataset,
)
from repro.hierarchy import (
    HierarchyNode,
    HierarchyTree,
    build_ccd_network_tree,
    build_ccd_trouble_tree,
    build_scd_network_tree,
)
from repro.streaming import InputStream, OperationalRecord, SimulationClock, SlidingWindow

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Tiresias",
    "TiresiasConfig",
    "ForecastConfig",
    "derive_seasonal_config",
    "ADAAlgorithm",
    "STAAlgorithm",
    "ThresholdDetector",
    "Anomaly",
    "AnomalyReportStore",
    "AnomalyQuery",
    "TimeunitResult",
    "compute_hhh",
    "compute_shhh",
    "HierarchyTree",
    "HierarchyNode",
    "build_ccd_trouble_tree",
    "build_ccd_network_tree",
    "build_scd_network_tree",
    "OperationalRecord",
    "InputStream",
    "SimulationClock",
    "SlidingWindow",
    "CCDConfig",
    "SCDConfig",
    "make_ccd_dataset",
    "make_scd_dataset",
]
