"""Optional compiled kernels: the third backend tier.

The pure-Python and NumPy implementations remain the canonical reference;
this package holds a small C extension (``_impl``) with bit-identical
transcriptions of three close-path kernels.  It is **not** built on install —
environments that want it run::

    python -m repro._ckernels build

which compiles ``_implmodule.c`` with the system C compiler straight into
this package directory (no pip, no network).  Absence is never an error:
:func:`load` returns ``None`` and every caller falls back to the NumPy tier.

The bit-identity contract (and why ``-ffp-contract=off`` is mandatory) is
documented at the top of ``_implmodule.c`` and enforced by the equivalence
suite in ``tests/core/test_ckernels.py`` plus the golden traces.
"""

from __future__ import annotations

import os

#: Setting this to a non-empty value skips the compiled tier even when the
#: extension has been built (the NumPy tier then serves every kernel).
DISABLE_ENV = "REPRO_DISABLE_COMPILED"

_CACHE: list = []  # [module_or_None] once resolved; env is re-read per call.


def load():
    """The compiled kernel module, or ``None`` when absent or disabled.

    The import result is cached (an extension cannot be unloaded anyway) but
    the ``REPRO_DISABLE_COMPILED`` switch is honored on every call, so tests
    can flip tiers per-session without reloading the package.
    """
    if os.environ.get(DISABLE_ENV):
        return None
    if not _CACHE:
        try:
            from repro._ckernels import _impl
        except ImportError:
            _CACHE.append(None)
        else:
            _CACHE.append(_impl)
    return _CACHE[0]


def build(verbose: bool = True) -> str:
    """Compile the extension in place; returns the built path (see build.py)."""
    from repro._ckernels.build import build_extension

    return build_extension(verbose=verbose)
