"""``python -m repro._ckernels build`` — compile the kernel extension."""

import sys

from repro._ckernels.build import main

sys.exit(main())
