/* Compiled close-path kernels: the optional third backend tier.
 *
 * Every kernel here is a line-for-line transcription of a NumPy expression
 * from the close path (``_SplitStatsStore.update_dense``, the steady branch
 * of ``ForecasterBank.observe_rows``, ``NodeTimeSeries.record``).  NumPy
 * element-wise arithmetic is per-element IEEE-754 double arithmetic, so the
 * same expression evaluated per element in C produces bit-identical results
 * — PROVIDED the build forbids FMA contraction and fast-math reassociation.
 * The builder therefore compiles with ``-O2 -ffp-contract=off`` and nothing
 * else that touches floating point; see ``repro/_ckernels/build.py``.
 *
 * Kernels deliberately do only element-wise work, gathers and scatters.
 * Anything NumPy computes with pairwise-block reductions (np.sum, np.mean)
 * stays out of this module: a naive C loop would NOT be bit-identical.
 */

#define PY_SSIZE_T_CLEAN
#define NPY_NO_DEPRECATED_API NPY_1_7_API_VERSION
#include <Python.h>
#include <numpy/arrayobject.h>

static int
check_1d(PyArrayObject *arr, int typenum, const char *name)
{
    if (PyArray_NDIM(arr) != 1 || PyArray_TYPE(arr) != typenum ||
        !PyArray_IS_C_CONTIGUOUS(arr)) {
        PyErr_Format(PyExc_ValueError,
                     "%s must be a 1-d C-contiguous array of the expected "
                     "dtype", name);
        return 0;
    }
    return 1;
}

/* update_stats_dense(raw, timeunit, alpha, decay, cumulative, ewma,
 *                    last_weight, observations, last_unit, seen, has_last)
 *
 * Mirror of _SplitStatsStore.update_dense.  Returns 0 on success, or the
 * needed decay-table length (a positive gap) when ``decay`` is too short —
 * the caller then extends the table with Python ``**`` (the bit-contract:
 * decay factors always come from Python pow) and retries.  Nothing is
 * mutated on the retry return.
 */
static PyObject *
update_stats_dense(PyObject *self, PyObject *args)
{
    PyArrayObject *raw, *decay, *cumulative, *ewma, *last_weight;
    PyArrayObject *observations, *last_unit, *seen, *has_last;
    long long timeunit;
    double alpha;

    if (!PyArg_ParseTuple(args, "O!LdO!O!O!O!O!O!O!O!",
                          &PyArray_Type, &raw, &timeunit, &alpha,
                          &PyArray_Type, &decay,
                          &PyArray_Type, &cumulative,
                          &PyArray_Type, &ewma,
                          &PyArray_Type, &last_weight,
                          &PyArray_Type, &observations,
                          &PyArray_Type, &last_unit,
                          &PyArray_Type, &seen,
                          &PyArray_Type, &has_last))
        return NULL;
    if (!check_1d(raw, NPY_DOUBLE, "raw") ||
        !check_1d(decay, NPY_DOUBLE, "decay") ||
        !check_1d(cumulative, NPY_DOUBLE, "cumulative") ||
        !check_1d(ewma, NPY_DOUBLE, "ewma") ||
        !check_1d(last_weight, NPY_DOUBLE, "last_weight") ||
        !check_1d(observations, NPY_INT64, "observations") ||
        !check_1d(last_unit, NPY_INT64, "last_unit") ||
        !check_1d(seen, NPY_BOOL, "seen") ||
        !check_1d(has_last, NPY_BOOL, "has_last"))
        return NULL;

    npy_intp n = PyArray_DIM(raw, 0);
    if (PyArray_DIM(cumulative, 0) != n || PyArray_DIM(ewma, 0) != n ||
        PyArray_DIM(last_weight, 0) != n || PyArray_DIM(observations, 0) != n ||
        PyArray_DIM(last_unit, 0) != n || PyArray_DIM(seen, 0) != n ||
        PyArray_DIM(has_last, 0) != n) {
        PyErr_SetString(PyExc_ValueError, "stats arrays must share one length");
        return NULL;
    }

    const double *rw = (const double *)PyArray_DATA(raw);
    const double *dk = (const double *)PyArray_DATA(decay);
    double *cum = (double *)PyArray_DATA(cumulative);
    double *ew = (double *)PyArray_DATA(ewma);
    double *lw = (double *)PyArray_DATA(last_weight);
    npy_int64 *obs = (npy_int64 *)PyArray_DATA(observations);
    npy_int64 *lu = (npy_int64 *)PyArray_DATA(last_unit);
    npy_bool *sn = (npy_bool *)PyArray_DATA(seen);
    npy_bool *hl = (npy_bool *)PyArray_DATA(has_last);
    npy_intp dlen = PyArray_DIM(decay, 0);
    long long t = timeunit;

    /* Pass 1: is the decay table long enough for every silent gap?  Checked
     * up front so a short table mutates nothing (the caller retries). */
    long long needed = 0;
    for (npy_intp i = 0; i < n; i++) {
        if (rw[i] > 0.0 && hl[i] && lu[i] < t - 1) {
            long long gap = t - lu[i] - 1;
            if (gap >= dlen && gap > needed)
                needed = gap;
        }
    }
    if (needed > 0)
        return PyLong_FromLongLong(needed);

    const double one_minus_alpha = 1.0 - alpha;
    for (npy_intp i = 0; i < n; i++) {
        double w = rw[i];
        if (!(w > 0.0))
            continue;
        if (hl[i] && lu[i] < t - 1)
            ew[i] = ew[i] * dk[t - lu[i] - 1];
        cum[i] += w;
        ew[i] = obs[i] > 0 ? alpha * w + one_minus_alpha * ew[i] : w;
        lw[i] = w;
        obs[i] += 1;
        sn[i] = 1;
        hl[i] = 1;
        lu[i] = t;
    }
    return PyLong_FromLong(0);
}

/* observe_steady(idx, v, level, trend, seasonal, phases, phase_cols, ewma,
 *                seen, alpha, beta, gamma, fallback_alpha, season_len, out)
 *
 * The single-season steady-state branch of ForecasterBank.observe_rows:
 * every row active, no NaN EWMA, rows distinct.  ``seasonal`` is the
 * (capacity, season_len) buffer, ``phases`` the (capacity, K) phase matrix
 * of which only column 0 is used (K passed as phase_cols).  Forecasts for
 * each row land in ``out``.
 */
static PyObject *
observe_steady(PyObject *self, PyObject *args)
{
    PyArrayObject *idx, *v, *level, *trend, *seasonal, *phases;
    PyArrayObject *ewma, *seen, *out;
    double alpha, beta, gamma, fallback_alpha;
    long long phase_cols, season_len;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!O!LO!O!ddddLO!",
                          &PyArray_Type, &idx,
                          &PyArray_Type, &v,
                          &PyArray_Type, &level,
                          &PyArray_Type, &trend,
                          &PyArray_Type, &seasonal,
                          &PyArray_Type, &phases, &phase_cols,
                          &PyArray_Type, &ewma,
                          &PyArray_Type, &seen,
                          &alpha, &beta, &gamma, &fallback_alpha,
                          &season_len,
                          &PyArray_Type, &out))
        return NULL;
    if (!check_1d(idx, NPY_INTP, "idx") || !check_1d(v, NPY_DOUBLE, "v") ||
        !check_1d(level, NPY_DOUBLE, "level") ||
        !check_1d(trend, NPY_DOUBLE, "trend") ||
        !check_1d(ewma, NPY_DOUBLE, "ewma") ||
        !check_1d(seen, NPY_INT64, "seen") ||
        !check_1d(out, NPY_DOUBLE, "out"))
        return NULL;
    if (PyArray_NDIM(seasonal) != 2 || PyArray_TYPE(seasonal) != NPY_DOUBLE ||
        !PyArray_IS_C_CONTIGUOUS(seasonal) ||
        PyArray_NDIM(phases) != 2 || PyArray_TYPE(phases) != NPY_INT64 ||
        !PyArray_IS_C_CONTIGUOUS(phases)) {
        PyErr_SetString(PyExc_ValueError,
                        "seasonal/phases must be 2-d C-contiguous");
        return NULL;
    }
    npy_intp m = PyArray_DIM(idx, 0);
    npy_intp cap = PyArray_DIM(level, 0);
    if (PyArray_DIM(v, 0) != m || PyArray_DIM(out, 0) != m ||
        PyArray_DIM(seasonal, 1) != (npy_intp)season_len ||
        PyArray_DIM(phases, 1) != (npy_intp)phase_cols ||
        PyArray_DIM(seasonal, 0) != cap || PyArray_DIM(phases, 0) != cap ||
        PyArray_DIM(trend, 0) != cap || PyArray_DIM(ewma, 0) != cap ||
        PyArray_DIM(seen, 0) != cap) {
        PyErr_SetString(PyExc_ValueError, "observe_steady shape mismatch");
        return NULL;
    }

    const npy_intp *ix = (const npy_intp *)PyArray_DATA(idx);
    const double *vv = (const double *)PyArray_DATA(v);
    double *lv = (double *)PyArray_DATA(level);
    double *tr = (double *)PyArray_DATA(trend);
    double *seas = (double *)PyArray_DATA(seasonal);
    npy_int64 *ph = (npy_int64 *)PyArray_DATA(phases);
    double *ew = (double *)PyArray_DATA(ewma);
    npy_int64 *sn = (npy_int64 *)PyArray_DATA(seen);
    double *fc = (double *)PyArray_DATA(out);
    const long long p = season_len;
    const long long K = phase_cols;
    const double oma = 1.0 - alpha, omb = 1.0 - beta, omg = 1.0 - gamma;
    const double omf = 1.0 - fallback_alpha;

    for (npy_intp j = 0; j < m; j++) {
        npy_intp row = ix[j];
        if (row < 0 || row >= cap) {
            PyErr_SetString(PyExc_IndexError, "row index out of range");
            return NULL;
        }
        double val = vv[j];
        npy_int64 phase = ph[row * K];
        double sea = seas[row * p + phase];
        double lev = lv[row];
        double trd = tr[row];
        fc[j] = lev + trd + sea;
        ew[row] = fallback_alpha * val + omf * ew[row];
        sn[row] += 1;
        double new_level = alpha * (val - sea) + oma * (lev + trd);
        lv[row] = new_level;
        tr[row] = beta * (new_level - lev) + omb * trd;
        seas[row * p + phase] = gamma * (val - new_level) + omg * sea;
        ph[row * K] = (phase + 1) % p;
    }
    Py_RETURN_NONE;
}

/* fused_record(bases, starts, sizes, maxlens, values, forecasts)
 *
 * The batched form of NodeTimeSeries.record's fused-storage branch: one call
 * appends this timeunit's (actual, forecast) pair to every tracked series.
 * ``bases`` is a list of (2, maxlen) float64 arrays (row 0 actuals, row 1
 * forecasts); ``starts``/``sizes`` are int64 ring cursors read from the
 * FloatRing pairs before the call and written back after it (the caller owns
 * that sync — the arrays are authoritative only inside this call).
 */
static PyObject *
fused_record(PyObject *self, PyObject *args)
{
    PyObject *bases;
    PyArrayObject *starts, *sizes, *maxlens, *values, *forecasts;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!O!",
                          &PyList_Type, &bases,
                          &PyArray_Type, &starts,
                          &PyArray_Type, &sizes,
                          &PyArray_Type, &maxlens,
                          &PyArray_Type, &values,
                          &PyArray_Type, &forecasts))
        return NULL;
    if (!check_1d(starts, NPY_INT64, "starts") ||
        !check_1d(sizes, NPY_INT64, "sizes") ||
        !check_1d(maxlens, NPY_INT64, "maxlens") ||
        !check_1d(values, NPY_DOUBLE, "values") ||
        !check_1d(forecasts, NPY_DOUBLE, "forecasts"))
        return NULL;
    npy_intp m = PyList_GET_SIZE(bases);
    if (PyArray_DIM(starts, 0) != m || PyArray_DIM(sizes, 0) != m ||
        PyArray_DIM(maxlens, 0) != m || PyArray_DIM(values, 0) != m ||
        PyArray_DIM(forecasts, 0) != m) {
        PyErr_SetString(PyExc_ValueError, "fused_record length mismatch");
        return NULL;
    }
    npy_int64 *st = (npy_int64 *)PyArray_DATA(starts);
    npy_int64 *sz = (npy_int64 *)PyArray_DATA(sizes);
    const npy_int64 *ml = (const npy_int64 *)PyArray_DATA(maxlens);
    const double *vv = (const double *)PyArray_DATA(values);
    const double *ff = (const double *)PyArray_DATA(forecasts);

    for (npy_intp j = 0; j < m; j++) {
        PyObject *obj = PyList_GET_ITEM(bases, j);
        if (!PyArray_Check(obj)) {
            PyErr_SetString(PyExc_TypeError, "bases must hold ndarrays");
            return NULL;
        }
        PyArrayObject *base = (PyArrayObject *)obj;
        npy_int64 L = ml[j];
        if (PyArray_NDIM(base) != 2 || PyArray_TYPE(base) != NPY_DOUBLE ||
            !PyArray_IS_C_CONTIGUOUS(base) || PyArray_DIM(base, 0) != 2 ||
            PyArray_DIM(base, 1) != (npy_intp)L) {
            PyErr_SetString(PyExc_ValueError,
                            "each base must be a C-contiguous (2, maxlen) "
                            "float64 array");
            return NULL;
        }
        double *data = (double *)PyArray_DATA(base);
        npy_int64 pos = st[j] + sz[j];
        if (pos >= L)
            pos -= L;
        data[pos] = vv[j];
        data[L + pos] = ff[j];
        if (sz[j] == L) {
            npy_int64 s = st[j] + 1;
            if (s == L)
                s = 0;
            st[j] = s;
        } else {
            sz[j] += 1;
        }
    }
    Py_RETURN_NONE;
}

static int
check_base(PyArrayObject *arr, npy_intp maxlen, const char *name)
{
    if (PyArray_NDIM(arr) != 2 || PyArray_TYPE(arr) != NPY_DOUBLE ||
        !PyArray_IS_C_CONTIGUOUS(arr) || PyArray_DIM(arr, 0) != 2 ||
        PyArray_DIM(arr, 1) != maxlen) {
        PyErr_Format(PyExc_ValueError,
                     "%s must be a C-contiguous (2, maxlen) float64 array",
                     name);
        return 0;
    }
    return 1;
}

/* split_windows(base, child_base, start, size, maxlen, ratio)
 *
 * Mirror of NodeTimeSeries._split_windows' fused branch: the live region of
 * ``base`` (ring order, possibly wrapped) is copied times ``ratio`` into the
 * head of ``child_base`` and scaled by ``1 - ratio`` in place.  Entries of
 * ``child_base`` beyond ``size`` stay uninitialized, exactly like the
 * ``np.empty`` the NumPy branch leaves behind (the child ring's size hides
 * them).
 */
static PyObject *
split_windows(PyObject *self, PyObject *args)
{
    PyArrayObject *base, *child;
    long long start, size, maxlen;
    double ratio;

    if (!PyArg_ParseTuple(args, "O!O!LLLd",
                          &PyArray_Type, &base,
                          &PyArray_Type, &child,
                          &start, &size, &maxlen, &ratio))
        return NULL;
    if (!check_base(base, (npy_intp)maxlen, "base") ||
        !check_base(child, (npy_intp)maxlen, "child_base"))
        return NULL;
    if (start < 0 || start >= maxlen || size < 0 || size > maxlen) {
        PyErr_SetString(PyExc_ValueError, "split_windows cursor out of range");
        return NULL;
    }
    double *bd = (double *)PyArray_DATA(base);
    double *cd = (double *)PyArray_DATA(child);
    const double rest = 1.0 - ratio;
    const long long L = maxlen;

    for (int row = 0; row < 2; row++) {
        double *b = bd + (npy_intp)row * L;
        double *c = cd + (npy_intp)row * L;
        for (long long j = 0; j < size; j++) {
            long long src = start + j;
            if (src >= L)
                src -= L;
            c[j] = b[src] * ratio;
            b[src] *= rest;
        }
    }
    Py_RETURN_NONE;
}

/* merge_windows(base, n_start, n_size, other, o_start, o_size, maxlen,
 *               o_maxlen)
 *
 * Mirror of NodeTimeSeries.merge_windows_from's in-place branch
 * (``m <= n``): ``other``'s live region adds into the newest ``m`` slots of
 * ``base``, both in ring order.  Per-element independent additions — order
 * cannot matter.
 */
static PyObject *
merge_windows(PyObject *self, PyObject *args)
{
    PyArrayObject *base, *other;
    long long n_start, n_size, o_start, o_size, maxlen, o_maxlen;

    if (!PyArg_ParseTuple(args, "O!LLO!LLLL",
                          &PyArray_Type, &base, &n_start, &n_size,
                          &PyArray_Type, &other, &o_start, &o_size,
                          &maxlen, &o_maxlen))
        return NULL;
    if (!check_base(base, (npy_intp)maxlen, "base") ||
        !check_base(other, (npy_intp)o_maxlen, "other"))
        return NULL;
    if (o_size > n_size || n_size > maxlen || o_size > o_maxlen ||
        n_start < 0 || n_start >= maxlen || o_start < 0 ||
        o_start >= o_maxlen || o_size < 0) {
        PyErr_SetString(PyExc_ValueError, "merge_windows cursor out of range");
        return NULL;
    }
    double *bd = (double *)PyArray_DATA(base);
    const double *od = (const double *)PyArray_DATA(other);
    const long long L = maxlen, OL = o_maxlen, m = o_size;
    long long dst0 = n_start + (n_size - m);
    if (dst0 >= L)
        dst0 -= L;

    for (int row = 0; row < 2; row++) {
        double *b = bd + (npy_intp)row * L;
        const double *o = od + (npy_intp)row * OL;
        for (long long j = 0; j < m; j++) {
            long long src = o_start + j;
            if (src >= OL)
                src -= OL;
            long long dst = dst0 + j;
            if (dst >= L)
                dst -= L;
            b[dst] += o[src];
        }
    }
    Py_RETURN_NONE;
}

/* accumulate_up(raw, parent, order, bounds, scratch)
 *
 * Mirror of HierarchyIndex._accumulate_up: one bottom-up level sweep adding
 * each level's weights onto parents.  ``order`` is the concatenation of
 * levels_deepest_first and ``bounds`` its level boundaries (L+1 entries).
 * Per level the child contributions accumulate into ``scratch`` in child
 * order (exactly bincount's accumulation order) and the whole scratch vector
 * is then added to ``raw`` — including the zero entries, matching
 * ``raw += bincount(...)`` bit for bit (-0.0 + 0.0 normalization included).
 */
static PyObject *
accumulate_up(PyObject *self, PyObject *args)
{
    PyArrayObject *raw, *parent, *order, *bounds, *scratch;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!",
                          &PyArray_Type, &raw,
                          &PyArray_Type, &parent,
                          &PyArray_Type, &order,
                          &PyArray_Type, &bounds,
                          &PyArray_Type, &scratch))
        return NULL;
    if (!check_1d(raw, NPY_DOUBLE, "raw") ||
        !check_1d(parent, NPY_INTP, "parent") ||
        !check_1d(order, NPY_INTP, "order") ||
        !check_1d(bounds, NPY_INTP, "bounds") ||
        !check_1d(scratch, NPY_DOUBLE, "scratch"))
        return NULL;
    npy_intp n = PyArray_DIM(raw, 0);
    if (PyArray_DIM(parent, 0) != n || PyArray_DIM(scratch, 0) != n ||
        PyArray_DIM(bounds, 0) < 1) {
        PyErr_SetString(PyExc_ValueError, "accumulate_up shape mismatch");
        return NULL;
    }
    double *rw = (double *)PyArray_DATA(raw);
    const npy_intp *pa = (const npy_intp *)PyArray_DATA(parent);
    const npy_intp *od = (const npy_intp *)PyArray_DATA(order);
    const npy_intp *bd = (const npy_intp *)PyArray_DATA(bounds);
    double *sc = (double *)PyArray_DATA(scratch);
    npy_intp total = PyArray_DIM(order, 0);
    npy_intp levels = PyArray_DIM(bounds, 0) - 1;

    for (npy_intp l = 0; l < levels; l++) {
        npy_intp lo = bd[l], hi = bd[l + 1];
        if (lo < 0 || hi < lo || hi > total) {
            PyErr_SetString(PyExc_ValueError, "accumulate_up bad bounds");
            return NULL;
        }
        memset(sc, 0, (size_t)n * sizeof(double));
        for (npy_intp i = lo; i < hi; i++) {
            npy_intp c = od[i];
            if (c < 0 || c >= n || pa[c] < 0 || pa[c] >= n) {
                PyErr_SetString(PyExc_IndexError, "accumulate_up id range");
                return NULL;
            }
            sc[pa[c]] += rw[c];
        }
        for (npy_intp j = 0; j < n; j++)
            rw[j] += sc[j];
    }
    Py_RETURN_NONE;
}

/* succinct_sweep(raw, modified, heavy, parent, order, bounds, theta,
 *                scratch_raw, scratch_mod)
 *
 * Mirror of HierarchyIndex.succinct (Definition 2).  ``modified`` arrives as
 * a copy of ``raw`` and ``heavy`` zeroed; both are filled in place.  Each
 * level reads its children's raw and non-heavy modified sums (accumulated in
 * child order, as bincount does) and evaluates
 * ``modified = (raw - child_raw) + child_modified`` left to right, then
 * ``heavy = modified >= theta``; the root closes the sweep from the depth-1
 * level.
 */
static PyObject *
succinct_sweep(PyObject *self, PyObject *args)
{
    PyArrayObject *raw, *modified, *heavy, *parent, *order, *bounds;
    PyArrayObject *scratch_raw, *scratch_mod;
    double theta;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!O!dO!O!",
                          &PyArray_Type, &raw,
                          &PyArray_Type, &modified,
                          &PyArray_Type, &heavy,
                          &PyArray_Type, &parent,
                          &PyArray_Type, &order,
                          &PyArray_Type, &bounds,
                          &theta,
                          &PyArray_Type, &scratch_raw,
                          &PyArray_Type, &scratch_mod))
        return NULL;
    if (!check_1d(raw, NPY_DOUBLE, "raw") ||
        !check_1d(modified, NPY_DOUBLE, "modified") ||
        !check_1d(heavy, NPY_BOOL, "heavy") ||
        !check_1d(parent, NPY_INTP, "parent") ||
        !check_1d(order, NPY_INTP, "order") ||
        !check_1d(bounds, NPY_INTP, "bounds") ||
        !check_1d(scratch_raw, NPY_DOUBLE, "scratch_raw") ||
        !check_1d(scratch_mod, NPY_DOUBLE, "scratch_mod"))
        return NULL;
    npy_intp n = PyArray_DIM(raw, 0);
    if (PyArray_DIM(modified, 0) != n || PyArray_DIM(heavy, 0) != n ||
        PyArray_DIM(parent, 0) != n || PyArray_DIM(scratch_raw, 0) != n ||
        PyArray_DIM(scratch_mod, 0) != n || PyArray_DIM(bounds, 0) < 1) {
        PyErr_SetString(PyExc_ValueError, "succinct_sweep shape mismatch");
        return NULL;
    }
    const double *rw = (const double *)PyArray_DATA(raw);
    double *md = (double *)PyArray_DATA(modified);
    npy_bool *hv = (npy_bool *)PyArray_DATA(heavy);
    const npy_intp *pa = (const npy_intp *)PyArray_DATA(parent);
    const npy_intp *od = (const npy_intp *)PyArray_DATA(order);
    const npy_intp *bd = (const npy_intp *)PyArray_DATA(bounds);
    double *sr = (double *)PyArray_DATA(scratch_raw);
    double *sm = (double *)PyArray_DATA(scratch_mod);
    npy_intp total = PyArray_DIM(order, 0);
    npy_intp levels = PyArray_DIM(bounds, 0) - 1;

    for (npy_intp l = 0; l < levels; l++) {
        npy_intp lo = bd[l], hi = bd[l + 1];
        if (lo < 0 || hi < lo || hi > total) {
            PyErr_SetString(PyExc_ValueError, "succinct_sweep bad bounds");
            return NULL;
        }
        if (l > 0) {
            npy_intp clo = bd[l - 1], chi = bd[l];
            memset(sr, 0, (size_t)n * sizeof(double));
            memset(sm, 0, (size_t)n * sizeof(double));
            for (npy_intp i = clo; i < chi; i++) {
                npy_intp c = od[i];
                npy_intp p = pa[c];
                sr[p] += rw[c];
                sm[p] += hv[c] ? 0.0 : md[c];
            }
            for (npy_intp i = lo; i < hi; i++) {
                npy_intp nid = od[i];
                if (nid < 0 || nid >= n) {
                    PyErr_SetString(PyExc_IndexError, "succinct_sweep id");
                    return NULL;
                }
                md[nid] = (rw[nid] - sr[nid]) + sm[nid];
            }
        }
        for (npy_intp i = lo; i < hi; i++) {
            npy_intp nid = od[i];
            if (nid < 0 || nid >= n) {
                PyErr_SetString(PyExc_IndexError, "succinct_sweep id");
                return NULL;
            }
            hv[nid] = md[nid] >= theta;
        }
    }
    if (levels > 0) {
        npy_intp clo = bd[levels - 1], chi = bd[levels];
        memset(sr, 0, (size_t)n * sizeof(double));
        memset(sm, 0, (size_t)n * sizeof(double));
        for (npy_intp i = clo; i < chi; i++) {
            npy_intp c = od[i];
            npy_intp p = pa[c];
            sr[p] += rw[c];
            sm[p] += hv[c] ? 0.0 : md[c];
        }
        md[0] = (rw[0] - sr[0]) + sm[0];
    }
    hv[0] = md[0] >= theta;
    Py_RETURN_NONE;
}

/* seed_steady(hist, row, alpha, p, ewma, level, trend, seasonal, phases, K,
 *             active)
 *
 * ForecasterBank.seed_fast's steady branch for a contiguous float64 history:
 * the EWMA tail fold, the sequential Holt-Winters window sums (the
 * np.cumsum[-1] arithmetic is a left-to-right fold, replicated exactly) and
 * the seasonal-row write, all in one call.  Single-season layout only.
 */
static PyObject *
seed_steady(PyObject *self, PyObject *args)
{
    PyArrayObject *hist, *ewma, *level, *trend, *seasonal, *phases, *active;
    double alpha;
    long long row, p, K;

    if (!PyArg_ParseTuple(args, "O!LdLO!O!O!O!O!LO!",
                          &PyArray_Type, &hist, &row, &alpha, &p,
                          &PyArray_Type, &ewma,
                          &PyArray_Type, &level,
                          &PyArray_Type, &trend,
                          &PyArray_Type, &seasonal,
                          &PyArray_Type, &phases, &K,
                          &PyArray_Type, &active))
        return NULL;
    if (!check_1d(hist, NPY_DOUBLE, "hist") ||
        !check_1d(ewma, NPY_DOUBLE, "ewma") ||
        !check_1d(level, NPY_DOUBLE, "level") ||
        !check_1d(trend, NPY_DOUBLE, "trend") ||
        !check_1d(active, NPY_BOOL, "active"))
        return NULL;
    if (PyArray_NDIM(seasonal) != 2 || PyArray_TYPE(seasonal) != NPY_DOUBLE ||
        !PyArray_IS_C_CONTIGUOUS(seasonal) ||
        PyArray_NDIM(phases) != 2 || PyArray_TYPE(phases) != NPY_INT64 ||
        !PyArray_IS_C_CONTIGUOUS(phases)) {
        PyErr_SetString(PyExc_ValueError,
                        "seasonal/phases must be 2-d C-contiguous");
        return NULL;
    }
    npy_intp L = PyArray_DIM(hist, 0);
    npy_intp cap = PyArray_DIM(level, 0);
    if (row < 0 || row >= cap || p <= 0 || L < 2 * p ||
        PyArray_DIM(seasonal, 1) != (npy_intp)p ||
        PyArray_DIM(phases, 1) != (npy_intp)K ||
        PyArray_DIM(seasonal, 0) != cap || PyArray_DIM(phases, 0) != cap ||
        PyArray_DIM(trend, 0) != cap || PyArray_DIM(ewma, 0) != cap ||
        PyArray_DIM(active, 0) != cap) {
        PyErr_SetString(PyExc_ValueError, "seed_steady shape mismatch");
        return NULL;
    }
    const double *h = (const double *)PyArray_DATA(hist);
    double *ew = (double *)PyArray_DATA(ewma);
    double *lv = (double *)PyArray_DATA(level);
    double *tr = (double *)PyArray_DATA(trend);
    double *seas = (double *)PyArray_DATA(seasonal);
    npy_int64 *ph = (npy_int64 *)PyArray_DATA(phases);
    npy_bool *ac = (npy_bool *)PyArray_DATA(active);

    npy_intp tlen = L < 64 ? L : 64;
    const double rest = 1.0 - alpha;
    double ew_level = h[L - tlen];
    for (npy_intp j = L - tlen; j < L; j++)
        ew_level = alpha * h[j] + rest * ew_level;
    ew[row] = ew_level;

    const double *w = h + (L - 2 * p);
    double total = 0.0, first = 0.0, second = 0.0;
    for (npy_intp j = 0; j < 2 * p; j++)
        total += w[j];
    for (npy_intp j = 0; j < p; j++)
        first += w[j];
    for (npy_intp j = p; j < 2 * p; j++)
        second += w[j];
    double hw_level = total / (double)(2 * p);
    ac[row] = 1;
    lv[row] = hw_level;
    tr[row] = (second - first) / (double)(p * p);
    double *srow = seas + (npy_intp)row * p;
    for (npy_intp j = 0; j < p; j++)
        srow[j] = w[p + j] - hw_level;
    ph[(npy_intp)row * K] = 0;
    Py_RETURN_NONE;
}

/* split_row_state(row, dst, ratio, ewma, seen, active, level, trend,
 *                 seasonal, phases, K)
 *
 * The array side of ForecasterBank.split_row (no object-overflow state):
 * ``dst`` takes ``ratio`` of the row's EWMA / Holt-Winters components and
 * the donor keeps the complementary share.  Warm-up histories stay in
 * Python (they are lists either way).  Single-season layout only.
 */
static PyObject *
split_row_state(PyObject *self, PyObject *args)
{
    PyArrayObject *ewma, *seen, *active, *level, *trend, *seasonal, *phases;
    double ratio;
    long long row, dst, K;

    if (!PyArg_ParseTuple(args, "LLdO!O!O!O!O!O!O!L",
                          &row, &dst, &ratio,
                          &PyArray_Type, &ewma,
                          &PyArray_Type, &seen,
                          &PyArray_Type, &active,
                          &PyArray_Type, &level,
                          &PyArray_Type, &trend,
                          &PyArray_Type, &seasonal,
                          &PyArray_Type, &phases, &K))
        return NULL;
    if (!check_1d(ewma, NPY_DOUBLE, "ewma") ||
        !check_1d(seen, NPY_INT64, "seen") ||
        !check_1d(active, NPY_BOOL, "active") ||
        !check_1d(level, NPY_DOUBLE, "level") ||
        !check_1d(trend, NPY_DOUBLE, "trend"))
        return NULL;
    if (PyArray_NDIM(seasonal) != 2 || PyArray_TYPE(seasonal) != NPY_DOUBLE ||
        !PyArray_IS_C_CONTIGUOUS(seasonal) ||
        PyArray_NDIM(phases) != 2 || PyArray_TYPE(phases) != NPY_INT64 ||
        !PyArray_IS_C_CONTIGUOUS(phases)) {
        PyErr_SetString(PyExc_ValueError,
                        "seasonal/phases must be 2-d C-contiguous");
        return NULL;
    }
    npy_intp cap = PyArray_DIM(level, 0);
    npy_intp p = PyArray_DIM(seasonal, 1);
    if (row < 0 || row >= cap || dst < 0 || dst >= cap || row == dst ||
        PyArray_DIM(seasonal, 0) != cap || PyArray_DIM(phases, 0) != cap ||
        PyArray_DIM(phases, 1) != (npy_intp)K ||
        PyArray_DIM(trend, 0) != cap || PyArray_DIM(ewma, 0) != cap ||
        PyArray_DIM(seen, 0) != cap || PyArray_DIM(active, 0) != cap) {
        PyErr_SetString(PyExc_ValueError, "split_row_state shape mismatch");
        return NULL;
    }
    double *ew = (double *)PyArray_DATA(ewma);
    npy_int64 *sn = (npy_int64 *)PyArray_DATA(seen);
    npy_bool *ac = (npy_bool *)PyArray_DATA(active);
    double *lv = (double *)PyArray_DATA(level);
    double *tr = (double *)PyArray_DATA(trend);
    double *seas = (double *)PyArray_DATA(seasonal);
    npy_int64 *ph = (npy_int64 *)PyArray_DATA(phases);
    const double rest = 1.0 - ratio;

    sn[dst] = sn[row];
    double e = ew[row];
    if (e != e) {
        ew[dst] = Py_NAN;
    } else {
        ew[dst] = e * ratio;
        ew[row] = e * rest;
    }
    if (ac[row]) {
        ac[dst] = 1;
        double lev = lv[row], trd = tr[row];
        lv[dst] = lev * ratio;
        lv[row] = lev * rest;
        tr[dst] = trd * ratio;
        tr[row] = trd * rest;
        double *srow = seas + (npy_intp)row * p;
        double *sdst = seas + (npy_intp)dst * p;
        for (npy_intp j = 0; j < p; j++) {
            double v = srow[j];
            sdst[j] = v * ratio;
            srow[j] = v * rest;
        }
        for (npy_intp k = 0; k < (npy_intp)K; k++)
            ph[dst * K + k] = ph[row * K + k];
    } else {
        ac[dst] = 0;
    }
    Py_RETURN_NONE;
}

/* fold_row_steady(dst, src, p, ewma, seen, active, level, trend, seasonal,
 *                 phases, K)
 *
 * ForecasterBank._fold_direct for a source row without warm-up history
 * (the common MERGE shape): EWMA sum, seen max, and the phase-aligned
 * Holt-Winters component fold.  Warm-up histories and the activation check
 * stay in Python.  Single-season layout only.
 */
static PyObject *
fold_row_steady(PyObject *self, PyObject *args)
{
    PyArrayObject *ewma, *seen, *active, *level, *trend, *seasonal, *phases;
    long long dst, src, p, K;

    if (!PyArg_ParseTuple(args, "LLLO!O!O!O!O!O!O!L",
                          &dst, &src, &p,
                          &PyArray_Type, &ewma,
                          &PyArray_Type, &seen,
                          &PyArray_Type, &active,
                          &PyArray_Type, &level,
                          &PyArray_Type, &trend,
                          &PyArray_Type, &seasonal,
                          &PyArray_Type, &phases, &K))
        return NULL;
    if (!check_1d(ewma, NPY_DOUBLE, "ewma") ||
        !check_1d(seen, NPY_INT64, "seen") ||
        !check_1d(active, NPY_BOOL, "active") ||
        !check_1d(level, NPY_DOUBLE, "level") ||
        !check_1d(trend, NPY_DOUBLE, "trend"))
        return NULL;
    if (PyArray_NDIM(seasonal) != 2 || PyArray_TYPE(seasonal) != NPY_DOUBLE ||
        !PyArray_IS_C_CONTIGUOUS(seasonal) ||
        PyArray_NDIM(phases) != 2 || PyArray_TYPE(phases) != NPY_INT64 ||
        !PyArray_IS_C_CONTIGUOUS(phases)) {
        PyErr_SetString(PyExc_ValueError,
                        "seasonal/phases must be 2-d C-contiguous");
        return NULL;
    }
    npy_intp cap = PyArray_DIM(level, 0);
    if (dst < 0 || dst >= cap || src < 0 || src >= cap || dst == src ||
        p <= 0 || PyArray_DIM(seasonal, 1) != (npy_intp)p ||
        PyArray_DIM(seasonal, 0) != cap || PyArray_DIM(phases, 0) != cap ||
        PyArray_DIM(phases, 1) != (npy_intp)K ||
        PyArray_DIM(trend, 0) != cap || PyArray_DIM(ewma, 0) != cap ||
        PyArray_DIM(seen, 0) != cap || PyArray_DIM(active, 0) != cap) {
        PyErr_SetString(PyExc_ValueError, "fold_row_steady shape mismatch");
        return NULL;
    }
    double *ew = (double *)PyArray_DATA(ewma);
    npy_int64 *sn = (npy_int64 *)PyArray_DATA(seen);
    npy_bool *ac = (npy_bool *)PyArray_DATA(active);
    double *lv = (double *)PyArray_DATA(level);
    double *tr = (double *)PyArray_DATA(trend);
    double *seas = (double *)PyArray_DATA(seasonal);
    npy_int64 *ph = (npy_int64 *)PyArray_DATA(phases);

    double s = ew[src];
    if (s == s) {
        double d = ew[dst];
        ew[dst] = (d == d) ? d + s : s;
    }
    if (sn[src] > sn[dst])
        sn[dst] = sn[src];
    if (ac[src]) {
        double *sdst = seas + (npy_intp)dst * p;
        const double *ssrc = seas + (npy_intp)src * p;
        if (!ac[dst]) {
            ac[dst] = 1;
            lv[dst] = lv[src];
            tr[dst] = tr[src];
            memcpy(sdst, ssrc, (size_t)p * sizeof(double));
            for (npy_intp k = 0; k < (npy_intp)K; k++)
                ph[dst * K + k] = ph[src * K + k];
        } else {
            lv[dst] += lv[src];
            tr[dst] += tr[src];
            npy_intp shift = (npy_intp)((ph[src * K] - ph[dst * K]) % p);
            if (shift < 0)
                shift += p;
            if (shift == 0) {
                for (npy_intp j = 0; j < p; j++)
                    sdst[j] += ssrc[j];
            } else {
                npy_intp split_at = p - shift;
                for (npy_intp j = 0; j < split_at; j++)
                    sdst[j] += ssrc[shift + j];
                for (npy_intp j = 0; j < shift; j++)
                    sdst[split_at + j] += ssrc[j];
            }
        }
    }
    Py_RETURN_NONE;
}

static PyMethodDef Methods[] = {
    {"update_stats_dense", update_stats_dense, METH_VARARGS,
     "Dense split-statistics update (mirror of _SplitStatsStore.update_dense)."},
    {"observe_steady", observe_steady, METH_VARARGS,
     "Single-season steady-state Holt-Winters batch observe."},
    {"fused_record", fused_record, METH_VARARGS,
     "Batched (actual, forecast) ring append over fused series storage."},
    {"split_windows", split_windows, METH_VARARGS,
     "Fused-storage window split (NodeTimeSeries._split_windows)."},
    {"merge_windows", merge_windows, METH_VARARGS,
     "Fused-storage in-place window merge (NodeTimeSeries.merge_windows_from)."},
    {"accumulate_up", accumulate_up, METH_VARARGS,
     "Bottom-up hierarchy weight aggregation (HierarchyIndex._accumulate_up)."},
    {"succinct_sweep", succinct_sweep, METH_VARARGS,
     "Succinct heavy-hitter level sweep (HierarchyIndex.succinct)."},
    {"seed_steady", seed_steady, METH_VARARGS,
     "Holt-Winters warm-start from a contiguous history (seed_fast)."},
    {"split_row_state", split_row_state, METH_VARARGS,
     "In-place forecaster-row SPLIT (ForecasterBank.split_row)."},
    {"fold_row_steady", fold_row_steady, METH_VARARGS,
     "History-free forecaster-row MERGE fold (ForecasterBank._fold_direct)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef moduledef = {
    PyModuleDef_HEAD_INIT, "_impl",
    "Compiled close-path kernels (bit-identical third backend tier).",
    -1, Methods,
};

PyMODINIT_FUNC
PyInit__impl(void)
{
    PyObject *module = PyModule_Create(&moduledef);
    if (module == NULL)
        return NULL;
    import_array();
    if (PyErr_Occurred()) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
