"""In-place builder for the compiled kernel extension.

Deliberately *not* a setuptools ``Extension``: offline environments (and the
CI compiled-tier leg) build the module with one direct compiler invocation::

    python -m repro._ckernels build

Flags are minimal and floating-point-strict: ``-O2 -ffp-contract=off``.  No
``-ffast-math``, no FMA contraction — the kernels' bit-identity contract with
the NumPy tier depends on plain IEEE-754 double arithmetic per element.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
import sysconfig
from pathlib import Path

PACKAGE_DIR = Path(__file__).resolve().parent
SOURCE = PACKAGE_DIR / "_implmodule.c"


class BuildError(RuntimeError):
    """The extension could not be built (no compiler, no NumPy headers...)."""


def _numpy_include() -> str:
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - needs a no-numpy env
        raise BuildError("building the compiled tier requires NumPy headers") from exc
    return numpy.get_include()


def extension_path() -> Path:
    """Where the built module lands (``_impl`` + platform EXT_SUFFIX)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return PACKAGE_DIR / f"_impl{suffix}"


def build_extension(verbose: bool = True) -> str:
    """Compile ``_implmodule.c`` into this package; returns the .so path."""
    compiler = (
        sysconfig.get_config_var("CC") or "cc"
    ).split()[0]
    if shutil.which(compiler) is None:
        compiler = next(
            (c for c in ("cc", "gcc", "clang") if shutil.which(c)), None
        )
        if compiler is None:
            raise BuildError("no C compiler found on PATH")
    target = extension_path()
    command = [
        compiler,
        "-O2",
        "-ffp-contract=off",
        "-fPIC",
        "-shared",
        f"-I{sysconfig.get_paths()['include']}",
        f"-I{_numpy_include()}",
        str(SOURCE),
        "-o",
        str(target),
    ]
    if verbose:
        print(" ".join(command))
    proc = subprocess.run(command, capture_output=True, text=True)
    if proc.returncode != 0:
        raise BuildError(
            f"compiler exited with {proc.returncode}:\n{proc.stderr}"
        )
    if verbose:
        print(f"built {target}")
    return str(target)


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv[:1] in ([], ["build"]):
        try:
            build_extension()
        except BuildError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    if argv[:1] == ["clean"]:
        target = extension_path()
        if target.exists():
            target.unlink()
            print(f"removed {target}")
        return 0
    print("usage: python -m repro._ckernels [build|clean]", file=sys.stderr)
    return 2
