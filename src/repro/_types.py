"""Shared type aliases used across the repro library.

Keeping the aliases in one private module avoids circular imports between the
hierarchy, streaming and core packages while giving every signature a single
vocabulary for the paper's concepts:

* a *category path* is the tuple of labels from the hierarchy root (exclusive)
  down to a leaf, e.g. ``("TV", "TV No Service", "No Pic No Sound")``;
* a *timestamp* is seconds since an arbitrary epoch (floats so that synthetic
  traces can use sub-second precision);
* a *timeunit index* is the integer index of a fixed-size bucket of length
  ``delta`` seconds.
"""

from __future__ import annotations

from typing import Sequence, Union

#: A path of labels from the root (exclusive) to a node of the hierarchy.
CategoryPath = tuple[str, ...]

#: Anything accepted where a category path is expected.
CategoryLike = Union[Sequence[str], CategoryPath]

#: Seconds since the trace epoch.
Timestamp = float

#: Index of a timeunit bucket (0 is the first bucket of the trace).
TimeunitIndex = int

#: Weight (count of appearances) of a node in one timeunit.
Weight = float
