"""Shared NumPy loading for the vectorized kernels.

Every module with a vectorized fast path (columnar batches, the forecaster
bank, the hierarchy weight index, the batch detector) obtains its NumPy
handle through :func:`load_numpy` so that

* minimal installs without NumPy transparently fall back to the pure-Python
  implementations, and
* the ``REPRO_DISABLE_NUMPY`` environment variable can force the fallback
  paths in a normal environment — the perf harness uses it to measure the
  scalar baseline, and the CI golden-trace job uses it to prove detections
  are identical with and without the vector backend.
"""

from __future__ import annotations

import os

#: Environment variable that forces the pure-Python fallbacks when set to a
#: non-empty value, even when NumPy is importable.
DISABLE_ENV = "REPRO_DISABLE_NUMPY"


def load_numpy():
    """The ``numpy`` module, or ``None`` when absent or explicitly disabled."""
    if os.environ.get(DISABLE_ENV):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - minimal installs
        return None
    return numpy
