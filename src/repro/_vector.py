"""Shared backend loading for the vectorized and compiled kernels.

The backend stack has three tiers, each a bit-identical implementation of
the same arithmetic:

1. **compiled** — the optional C extension (``repro._ckernels``), built on
   demand with ``python -m repro._ckernels build``;
2. **numpy** — the vectorized kernels, active whenever NumPy imports;
3. **python** — the pure-Python fallbacks, always available.

Every module with a vectorized fast path (columnar batches, the forecaster
bank, the hierarchy weight index, the batch detector) obtains its NumPy
handle through :func:`load_numpy`, and the close-path hot spots additionally
probe :func:`load_kernels` for the compiled tier, so that

* minimal installs without NumPy transparently fall back to the pure-Python
  implementations,
* the ``REPRO_DISABLE_NUMPY`` environment variable can force the fallback
  paths in a normal environment — the perf harness uses it to measure the
  scalar baseline, and the CI golden-trace job uses it to prove detections
  are identical with and without the vector backend — and
* ``REPRO_DISABLE_COMPILED`` pins a build with the extension present to the
  NumPy tier (the equivalence suites compare the two in one process).
"""

from __future__ import annotations

import os

#: Environment variable that forces the pure-Python fallbacks when set to a
#: non-empty value, even when NumPy is importable.
DISABLE_ENV = "REPRO_DISABLE_NUMPY"

#: Environment variable that skips the compiled tier even when built (the
#: actual gate lives in :mod:`repro._ckernels`; re-exported for discovery).
DISABLE_COMPILED_ENV = "REPRO_DISABLE_COMPILED"


def load_numpy():
    """The ``numpy`` module, or ``None`` when absent or explicitly disabled."""
    if os.environ.get(DISABLE_ENV):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - minimal installs
        return None
    return numpy


# Kernel pin stack: a close-path entry point resolves the tier once and pins
# it for the duration of the close, so the dozens of nested load_kernels()
# probes (window splits, merges, row seeds) skip the per-call environment
# read.  Entries may be None (tier disabled) — an empty stack means unpinned.
_PINNED: list = []


def load_kernels():
    """The compiled kernel module, or ``None``.

    The compiled tier rides on top of the NumPy tier (its kernels operate on
    the same dense arrays), so disabling NumPy disables it too.  Inside a
    :class:`pinned_kernels` region the pinned resolution is returned without
    re-reading the environment.
    """
    if _PINNED:
        return _PINNED[-1]
    if load_numpy() is None:
        return None
    from repro import _ckernels

    return _ckernels.load()


class pinned_kernels:
    """Context manager pinning the kernel-tier resolution for a hot region.

    Re-entrant and exception-safe; the pinned value is resolved on entry
    (one environment read) and handed to every nested :func:`load_kernels`
    call.  Used by ADA around each timeunit close.
    """

    __slots__ = ("kernels",)

    def __enter__(self):
        kernels = load_kernels()
        _PINNED.append(kernels)
        return kernels

    def __exit__(self, *exc):
        _PINNED.pop()
        return False


def backend_tier() -> str:
    """The active backend tier name: ``compiled``, ``numpy`` or ``python``.

    Recorded by the perf harness so throughput trajectories state which
    stack produced them.
    """
    if load_numpy() is None:
        return "python"
    return "numpy" if load_kernels() is None else "compiled"
