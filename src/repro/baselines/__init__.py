"""Baseline detectors the paper compares Tiresias against.

* :class:`ControlChartDetector` -- the ISP operations team's current practice:
  control charts on the first-level (VHO) aggregates only (§VII-B).
* :func:`offline_hhd` -- offline per-timeunit hierarchical heavy hitter
  detection, the lineage STA extends (§VIII).
"""

from repro.baselines.control_chart import ControlChartDetector
from repro.baselines.offline_hhd import OfflineHHDResult, offline_hhd

__all__ = ["ControlChartDetector", "offline_hhd", "OfflineHHDResult"]
