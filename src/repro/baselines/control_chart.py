"""Reference detection method: control charts on first-level aggregates.

The paper compares Tiresias against "an existing approach based on applying
control charts to time series of aggregates at the first network level (the
VHO level)", used by the ISP's operations team (§VII-B).  That approach is not
published in detail, so the reproduction implements the standard Shewhart
individuals control chart: for each level-1 aggregate, an exponentially
weighted baseline mean and deviation are maintained, and a timeunit alarms
when the observed count exceeds ``mean + k * deviation``.

Crucially, the reference method only monitors the first level -- it cannot
localize anomalies deeper in the hierarchy, which is exactly the gap Table VI
shows Tiresias closing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro._types import CategoryPath, TimeunitIndex, Weight
from repro.core.detector import Anomaly
from repro.core.hhh import accumulate_raw_weights
from repro.exceptions import ConfigurationError
from repro.hierarchy.tree import HierarchyTree


@dataclass
class _ChartState:
    """Per-aggregate running mean / deviation of the monitored count."""

    mean: float = 0.0
    deviation: float = 0.0
    observations: int = 0


class ControlChartDetector:
    """Shewhart-style control chart over the level-``depth`` aggregates.

    Parameters
    ----------
    tree:
        The monitored hierarchy.
    depth:
        Hierarchy level to monitor (1 = the children of the root, i.e. the
        paper's VHO level for the network hierarchy).
    k_sigma:
        Alarm threshold in deviations above the running mean.
    smoothing:
        EWMA rate used for the running mean and deviation.
    min_observations:
        Number of timeunits observed before a chart may alarm (warm-up).
    min_excess:
        Minimum absolute excess over the mean required to alarm, suppressing
        alarms on near-zero aggregates.
    seasonal_period:
        When set (in timeunits, e.g. 96 for a day of 15-minute units), a
        separate chart is kept per phase of the period, i.e. the baseline is
        the historical mean for that time of day.  Operations teams typically
        run their control charts against time-of-day baselines; without this
        the chart alarms on every morning ramp-up.
    """

    name = "control-chart"

    def __init__(
        self,
        tree: HierarchyTree,
        depth: int = 1,
        k_sigma: float = 3.0,
        smoothing: float = 0.1,
        min_observations: int = 24,
        min_excess: float = 5.0,
        seasonal_period: int | None = None,
    ):
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        if k_sigma <= 0:
            raise ConfigurationError("k_sigma must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError("smoothing must be in (0, 1]")
        if min_observations < 1:
            raise ConfigurationError("min_observations must be >= 1")
        if seasonal_period is not None and seasonal_period < 1:
            raise ConfigurationError("seasonal_period must be >= 1 when given")
        self.tree = tree
        self.depth = depth
        self.k_sigma = k_sigma
        self.smoothing = smoothing
        self.min_observations = min_observations
        self.min_excess = min_excess
        self.seasonal_period = seasonal_period
        self._monitored: tuple[CategoryPath, ...] = tuple(
            node.path for node in tree.nodes_at_depth(depth)
        )
        self._charts: dict[tuple[CategoryPath, int], _ChartState] = {}
        self._observed_units: dict[CategoryPath, int] = {path: 0 for path in self._monitored}
        self._timeunit: TimeunitIndex = -1
        self.anomalies: list[Anomaly] = []

    # ------------------------------------------------------------------
    @property
    def monitored_paths(self) -> tuple[CategoryPath, ...]:
        return self._monitored

    def _phase(self) -> int:
        if self.seasonal_period is None:
            return 0
        return self._timeunit % self.seasonal_period

    def process_timeunit(
        self, leaf_counts: Mapping[CategoryPath, Weight], timeunit: TimeunitIndex | None = None
    ) -> list[Anomaly]:
        """Ingest one timeunit of counts; returns the alarms it raised."""
        self._timeunit = self._timeunit + 1 if timeunit is None else timeunit
        raw = accumulate_raw_weights(self.tree, leaf_counts)
        phase = self._phase()
        alarms: list[Anomaly] = []
        for path in self._monitored:
            value = float(raw.get(path, 0.0))
            chart = self._charts.setdefault((path, phase), _ChartState())
            if self._observed_units[path] >= self.min_observations and chart.observations >= 1:
                threshold = chart.mean + self.k_sigma * max(chart.deviation, 1e-6)
                excess = value - chart.mean
                if value > threshold and excess > self.min_excess:
                    alarms.append(
                        Anomaly(
                            node_path=path,
                            timeunit=self._timeunit,
                            actual=value,
                            forecast=chart.mean,
                            depth=self.depth,
                            metadata={"method": self.name},
                        )
                    )
            # Update the chart after the decision so the spike itself does not
            # immediately inflate the baseline.
            error = value - chart.mean
            if chart.observations == 0:
                chart.mean = value
                chart.deviation = abs(value) * 0.25
            else:
                chart.mean += self.smoothing * error
                chart.deviation = (
                    (1 - self.smoothing) * chart.deviation + self.smoothing * abs(error)
                )
            chart.observations += 1
            self._observed_units[path] += 1
        self.anomalies.extend(alarms)
        return alarms

    def reset(self) -> None:
        """Clear all chart state and recorded alarms."""
        self._charts = {}
        self._observed_units = {path: 0 for path in self._monitored}
        self._timeunit = -1
        self.anomalies = []
