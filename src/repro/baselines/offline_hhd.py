"""Offline hierarchical heavy hitter detection (the HHD lineage, §VIII).

The paper's strawman STA is described as "a natural extension of HHD where we
apply HHD for every timeunit".  This module provides that offline building
block directly: given a batch of records, compute the per-timeunit succinct
heavy hitter sets and the long-term (whole-batch) heavy hitters over a
coarser granularity.  It serves as an additional baseline and as a sanity
check for the online algorithms (their per-unit heavy hitter sets must match
this offline computation).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro._types import CategoryPath
from repro.core.hhh import HeavyHitterResult, compute_shhh
from repro.exceptions import ConfigurationError
from repro.hierarchy.tree import HierarchyTree
from repro.streaming.clock import SimulationClock
from repro.streaming.record import OperationalRecord


@dataclass(frozen=True)
class OfflineHHDResult:
    """Per-timeunit and whole-batch heavy hitter sets for a record batch."""

    per_unit: tuple[HeavyHitterResult, ...]
    long_term: HeavyHitterResult

    @property
    def num_units(self) -> int:
        return len(self.per_unit)

    def heavy_hitter_sets(self) -> list[frozenset[CategoryPath]]:
        return [result.shhh for result in self.per_unit]


def offline_hhd(
    tree: HierarchyTree,
    records: Sequence[OperationalRecord],
    clock: SimulationClock,
    theta: float,
    long_term_theta: float | None = None,
) -> OfflineHHDResult:
    """Compute per-timeunit and long-term succinct heavy hitters offline.

    Parameters
    ----------
    tree, records, clock:
        The hierarchy, the record batch and the clock defining the timeunits.
    theta:
        Per-timeunit heavy hitter threshold.
    long_term_theta:
        Threshold for the whole-batch computation; defaults to ``theta``
        scaled by the number of timeunits (so it represents the same average
        per-unit volume).
    """
    if theta <= 0:
        raise ConfigurationError("theta must be positive")
    if not records:
        raise ConfigurationError("offline_hhd needs at least one record")

    per_unit_counts: dict[int, Counter] = {}
    total_counts: Counter = Counter()
    for record in records:
        unit = clock.timeunit_of(record.timestamp)
        per_unit_counts.setdefault(unit, Counter())[record.category] += 1
        total_counts[record.category] += 1

    first = min(per_unit_counts)
    last = max(per_unit_counts)
    per_unit: list[HeavyHitterResult] = []
    for unit in range(first, last + 1):
        counts = per_unit_counts.get(unit, Counter())
        per_unit.append(compute_shhh(tree, counts, theta))

    if long_term_theta is None:
        long_term_theta = theta * len(per_unit)
    long_term = compute_shhh(tree, total_counts, long_term_theta)
    return OfflineHHDResult(per_unit=tuple(per_unit), long_term=long_term)
