"""Core Tiresias algorithms: heavy hitters, STA/ADA, detection, pipeline."""

from repro.core.ada import ADAAlgorithm, nearest_tracked_node
from repro.core.config import (
    OUT_OF_ORDER_POLICIES,
    SPLIT_RULE_NAMES,
    ForecastConfig,
    TiresiasConfig,
)
from repro.core.detector import Anomaly, ThresholdDetector
from repro.core.hhh import (
    HeavyHitterResult,
    accumulate_raw_weights,
    compute_hhh,
    compute_shhh,
    discounted_series,
)
from repro.core.pipeline import Tiresias, derive_seasonal_config
from repro.core.registry import (
    available_algorithms,
    available_forecasters,
    create_algorithm,
    create_forecaster,
    register_algorithm,
    register_forecaster,
    unregister_algorithm,
    unregister_forecaster,
)
from repro.core.reporting import AnomalyQuery, AnomalyReportStore
from repro.core.results import TimeunitResult
from repro.core.split_rules import (
    EWMASplitRule,
    LastTimeUnitSplitRule,
    LongTermHistorySplitRule,
    NodeUsageStats,
    SplitRule,
    UniformSplitRule,
    make_split_rule,
)
from repro.core.sta import STAAlgorithm
from repro.core.timeseries import MultiScaleTimeSeries, NodeTimeSeries, SeriesForecaster

__all__ = [
    "TiresiasConfig",
    "ForecastConfig",
    "SPLIT_RULE_NAMES",
    "OUT_OF_ORDER_POLICIES",
    "Tiresias",
    "derive_seasonal_config",
    "register_algorithm",
    "unregister_algorithm",
    "create_algorithm",
    "available_algorithms",
    "register_forecaster",
    "unregister_forecaster",
    "create_forecaster",
    "available_forecasters",
    "ADAAlgorithm",
    "STAAlgorithm",
    "nearest_tracked_node",
    "Anomaly",
    "ThresholdDetector",
    "TimeunitResult",
    "AnomalyReportStore",
    "AnomalyQuery",
    "HeavyHitterResult",
    "accumulate_raw_weights",
    "compute_hhh",
    "compute_shhh",
    "discounted_series",
    "SplitRule",
    "UniformSplitRule",
    "LastTimeUnitSplitRule",
    "LongTermHistorySplitRule",
    "EWMASplitRule",
    "NodeUsageStats",
    "make_split_rule",
    "NodeTimeSeries",
    "SeriesForecaster",
    "MultiScaleTimeSeries",
]
