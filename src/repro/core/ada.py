"""ADA: the low-complexity adaptive heavy hitter tracking algorithm (§V-B).

ADA keeps a *single* weighted tree plus one time series per current heavy
hitter.  When the heavy hitter set changes between time instances, the
existing time series are *adapted* instead of being reconstructed from ℓ
stored timeunits:

* **SPLIT** (Fig. 7): a heavy hitter whose weight moved down the hierarchy
  hands (a share of) its time series to descendants, the share being chosen
  by a split rule (Uniform / Last-Time-Unit / Long-Term-History / EWMA,
  §V-B4).
* **MERGE** (Fig. 8): nodes that stopped being heavy fold their time series
  back into their nearest heavy ancestor.
* **Reference time series** (§V-B5): nodes in the top ``h`` levels always keep
  the time series of their *unmodified* weight ``A_n``; a node that just
  received a split-derived (hence possibly biased) series replaces it with
  ``reference − Σ(series of heavy descendants)``.

The heavy hitter membership itself is recomputed exactly per Definition 2
every timeunit with a single bottom-up pass (the same
``Update-Ishh-and-Weight`` recursion as Fig. 6), so Lemma 1 -- ADA tracks the
correct succinct heavy hitter set -- holds by construction; only the
*historical* part of each adapted time series is approximate, which is the
error Fig. 12 and Table V quantify.

Implementation note: the paper's pseudocode drives the split/merge cascade
with ``tosplit`` flags and level-order traversals over the mutated weights.
We implement the same cascade by walking from each new heavy hitter up to its
nearest series-holding ancestor (split, top-down) and from each stale series
holder up to its nearest heavy ancestor (merge, bottom-up).  The two
formulations visit the same nodes; ours avoids the corner-case ambiguities of
the in-place weight mutations while preserving the split-rule approximation
behaviour the paper evaluates.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Mapping

from repro._types import CategoryPath, TimeunitIndex, Weight
from repro.core.config import TiresiasConfig
from repro.core.detector import ThresholdDetector
from repro.core.hhh import accumulate_raw_weights, compute_shhh
from repro.core.results import TimeunitResult
from repro.core.split_rules import NodeUsageStats, make_split_rule
from repro.core.timeseries import NodeTimeSeries
from repro.hierarchy.node import HierarchyNode
from repro.hierarchy.tree import HierarchyTree


class ADAAlgorithm:
    """Adaptive online heavy hitter tracking and time-series maintenance."""

    name = "ADA"

    def __init__(self, tree: HierarchyTree, config: TiresiasConfig):
        self.tree = tree
        self.config = config
        self.detector = ThresholdDetector(config)
        self.split_rule = make_split_rule(config)
        #: Time series of the current heavy hitters, keyed by node path.
        self.series: dict[CategoryPath, NodeTimeSeries] = {}
        #: Reference (unmodified weight) series for nodes in the top h levels.
        self.reference: dict[CategoryPath, Deque[float]] = {}
        #: Split-rule statistics for every node seen so far.
        self._stats: dict[CategoryPath, NodeUsageStats] = {}
        self._stats_last_unit: dict[CategoryPath, int] = {}
        self._timeunit: TimeunitIndex = -1
        self.stage_seconds: dict[str, float] = {
            "updating_hierarchies": 0.0,
            "creating_time_series": 0.0,
            "detecting_anomalies": 0.0,
        }
        self.split_operations = 0
        self.merge_operations = 0
        self.last_result: TimeunitResult | None = None
        #: Raw root weight of the most recent timeunit.  Additive across
        #: disjoint subtree shards; the sharded engine sums it to replay the
        #: root's split-rule bookkeeping coordinator-side.
        self.last_root_raw = 0.0
        #: Nodes in the top h levels, cached once: these keep reference series.
        self._reference_nodes: tuple[CategoryPath, ...] = tuple(
            node.path
            for depth in range(1, config.reference_levels + 1)
            for node in tree.nodes_at_depth(depth)
        )

    # ------------------------------------------------------------------
    # Online interface
    # ------------------------------------------------------------------
    def process_timeunit(
        self, leaf_counts: Mapping[CategoryPath, Weight], timeunit: TimeunitIndex | None = None
    ) -> TimeunitResult:
        """Ingest one timeunit of data, adapt the heavy hitter series, detect."""
        self._timeunit = self._timeunit + 1 if timeunit is None else timeunit

        start = time.perf_counter()
        raw = accumulate_raw_weights(self.tree, leaf_counts)
        shhh_result = compute_shhh(self.tree, leaf_counts, self.config.theta, raw=raw)
        heavy = set(shhh_result.shhh)
        if self.config.track_root:
            heavy.add(self.tree.root.path)
        elif not self.config.allow_root_heavy:
            heavy.discard(self.tree.root.path)
        self.last_root_raw = float(raw.get(self.tree.root.path, 0.0))
        self.stage_seconds["updating_hierarchies"] += time.perf_counter() - start

        start = time.perf_counter()
        self._adapt(heavy)
        self._update_reference(raw)
        self._append_weights(heavy, shhh_result.modified_weights, raw)
        self._update_stats(raw)
        self.stage_seconds["creating_time_series"] += time.perf_counter() - start

        start = time.perf_counter()
        result = self._detect(heavy)
        self.stage_seconds["detecting_anomalies"] += time.perf_counter() - start
        self.last_result = result
        return result

    # ------------------------------------------------------------------
    # Heavy hitter adaptation (SPLIT / MERGE)
    # ------------------------------------------------------------------
    def _adapt(self, heavy: set[CategoryPath]) -> None:
        """Move the existing time series to the new heavy hitter positions."""
        # SPLIT phase, top-down: every new heavy hitter that lacks a series
        # derives one from its nearest ancestor that currently holds a series.
        # Ties at the same depth break lexicographically so that the cascade
        # order (and hence the split-rule arithmetic) is process-independent,
        # which checkpoint/restore across restarts relies on.
        new_paths = sorted((p for p in heavy if p not in self.series), key=lambda p: (len(p), p))
        for path in new_paths:
            if path in self.series:
                continue  # created by a previous cascade in this phase
            donor = self._nearest_series_ancestor(path)
            if donor is None:
                self.series[path] = NodeTimeSeries(
                    self.config.window_units, self.config.forecast
                )
                continue
            self._split_cascade(donor, path)

        # MERGE phase, bottom-up: series whose node is no longer heavy fold
        # into the nearest heavy ancestor (which now holds a series thanks to
        # the split phase), or are dropped when no ancestor is heavy.
        stale = sorted(
            (p for p in self.series if p not in heavy),
            key=lambda p: (len(p), p),
            reverse=True,
        )
        for path in stale:
            series = self.series.pop(path)
            target = self._nearest_heavy_ancestor(path, heavy)
            if target is None:
                self.merge_operations += 1
                continue
            self.merge_operations += 1
            existing = self.series.get(target)
            if existing is None:
                self.series[target] = series
            else:
                existing.merge_from(series)

    def _nearest_series_ancestor(self, path: CategoryPath) -> CategoryPath | None:
        """Closest strict ancestor of ``path`` currently holding a series."""
        for depth in range(len(path) - 1, -1, -1):
            candidate = path[:depth]
            if candidate in self.series:
                return candidate
        return None

    def _nearest_heavy_ancestor(
        self, path: CategoryPath, heavy: set[CategoryPath]
    ) -> CategoryPath | None:
        """Closest strict ancestor of ``path`` in the new heavy hitter set."""
        for depth in range(len(path) - 1, -1, -1):
            candidate = path[:depth]
            if candidate in heavy:
                return candidate
        return None

    def _split_cascade(self, donor: CategoryPath, target: CategoryPath) -> None:
        """Split the donor's series down the hierarchy until ``target`` has one.

        At each level the receiving child's share is the split rule's ratio
        among the donor's children that do not already hold a series (the
        paper's ``Cn``); the donor keeps the complementary share.  If the
        receiving child lies in the top ``h`` reference levels the biased
        share is immediately replaced using the reference series (§V-B5).
        """
        current = donor
        while current != target:
            child = target[: len(current) + 1]
            node = self.tree.node(current)
            receivers = [
                c.path for c in node.children.values() if c.path not in self.series
            ]
            if child not in receivers:
                receivers.append(child)
            ratios = self.split_rule.ratios(
                {p: self._stats_view(p) for p in receivers}
            )
            ratio = ratios.get(child, 1.0 / max(len(receivers), 1))
            parent_series = self.series[current]
            child_series = parent_series.scaled(ratio)
            self.series[current] = parent_series.scaled(1.0 - ratio)
            self.series[child] = child_series
            self.split_operations += 1
            self._apply_reference_correction(child)
            current = child

    # ------------------------------------------------------------------
    # Reference time series (§V-B5)
    # ------------------------------------------------------------------
    def _update_reference(self, raw: Mapping[CategoryPath, Weight]) -> None:
        """Append the unmodified weight A_n for every reference-level node."""
        if not self._reference_nodes:
            return
        maxlen = self.config.window_units
        for path in self._reference_nodes:
            buf = self.reference.get(path)
            if buf is None:
                buf = deque(maxlen=maxlen)
                self.reference[path] = buf
            buf.append(float(raw.get(path, 0.0)))

    def _apply_reference_correction(self, path: CategoryPath) -> None:
        """Replace a freshly split series with reference − Σ heavy descendants."""
        buf = self.reference.get(path)
        if buf is None:
            return
        node = self.tree.node(path)
        corrected = list(buf)
        for other_path, other_series in self.series.items():
            if other_path == path or len(other_path) <= len(path):
                continue
            if other_path[: len(path)] != path:
                continue
            descendant = list(other_series.actual)
            offset = len(corrected) - len(descendant)
            for i, value in enumerate(descendant):
                index = offset + i
                if 0 <= index < len(corrected):
                    corrected[index] -= value
        del node  # structural lookup only validates the path
        series = self.series.get(path)
        if series is not None and corrected:
            series.replace_actual(corrected)

    # ------------------------------------------------------------------
    # Per-timeunit bookkeeping
    # ------------------------------------------------------------------
    def _append_weights(
        self,
        heavy: set[CategoryPath],
        modified_weights: Mapping[CategoryPath, Weight],
        raw: Mapping[CategoryPath, Weight],
    ) -> None:
        """Append the Definition-2 modified weight to every heavy hitter series."""
        for path in sorted(heavy):
            series = self.series.get(path)
            if series is None:
                series = NodeTimeSeries(self.config.window_units, self.config.forecast)
                self.series[path] = series
            if path == self.tree.root.path and path not in modified_weights:
                value = raw.get(path, 0.0)
            else:
                value = modified_weights.get(path, 0.0)
            series.append(value)

    def _update_stats(self, raw: Mapping[CategoryPath, Weight]) -> None:
        """Record raw weights for the split rules (lazy for inactive nodes)."""
        alpha = self.config.split_ewma_alpha
        for path, weight in raw.items():
            stats = self._stats.get(path)
            if stats is None:
                stats = NodeUsageStats()
                self._stats[path] = stats
            last = self._stats_last_unit.get(path)
            if last is not None and self._timeunit - last > 1:
                # Account the silent (zero-weight) timeunits in the EWMA.
                gap = self._timeunit - last - 1
                stats.ewma_weight *= (1 - alpha) ** gap
                stats.last_weight = 0.0
            stats.update(weight, alpha)
            self._stats_last_unit[path] = self._timeunit

    def _stats_view(self, path: CategoryPath) -> NodeUsageStats:
        """Statistics for ``path`` adjusted for timeunits it was silent in."""
        stats = self._stats.get(path)
        if stats is None:
            return NodeUsageStats()
        last = self._stats_last_unit.get(path, -1)
        gap = self._timeunit - last
        if gap <= 0:
            return stats
        alpha = self.config.split_ewma_alpha
        return NodeUsageStats(
            last_weight=0.0 if gap > 1 else stats.last_weight,
            cumulative_weight=stats.cumulative_weight,
            ewma_weight=stats.ewma_weight * (1 - alpha) ** (gap - 1),
            observations=stats.observations,
        )

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def _detect(self, heavy: set[CategoryPath]) -> TimeunitResult:
        actuals: dict[CategoryPath, Weight] = {}
        forecasts: dict[CategoryPath, Weight] = {}
        anomalies = []
        # Canonical (sorted) order so the anomaly sequence is identical across
        # processes regardless of hash randomization.
        for path in sorted(heavy):
            series = self.series[path]
            actual = series.latest_actual
            forecast = series.latest_forecast
            actuals[path] = actual
            forecasts[path] = forecast
            anomaly = self.detector.check(
                path,
                self._timeunit,
                actual,
                forecast,
                depth=len(path),
                algorithm=self.name,
            )
            if anomaly is not None:
                anomalies.append(anomaly)
        return TimeunitResult(
            timeunit=self._timeunit,
            heavy_hitters=frozenset(heavy),
            actuals=actuals,
            forecasts=forecasts,
            anomalies=tuple(anomalies),
        )

    # ------------------------------------------------------------------
    # Introspection used by the evaluation harness
    # ------------------------------------------------------------------
    def series_for(self, path: CategoryPath) -> list[float]:
        """The adapted actual series currently held for ``path``."""
        series = self.series.get(tuple(path))
        return list(series.actual) if series is not None else []

    def memory_units(self) -> int:
        """Number of stored scalars (Table IV cost proxy): one tree + series."""
        tree_cost = self.tree.num_nodes
        series_cost = sum(len(s.actual) + len(s.forecast) for s in self.series.values())
        reference_cost = sum(len(buf) for buf in self.reference.values())
        return tree_cost + series_cost + reference_cost

    @property
    def current_timeunit(self) -> TimeunitIndex:
        return self._timeunit

    @property
    def heavy_hitters(self) -> frozenset[CategoryPath]:
        return self.last_result.heavy_hitters if self.last_result else frozenset()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of all mutable tracking state.

        Category paths (tuples of labels) become lists; dicts keyed by paths
        become ``[path, value]`` pairs so the snapshot survives JSON's
        string-only object keys.
        """
        return {
            "timeunit": self._timeunit,
            "split_operations": self.split_operations,
            "merge_operations": self.merge_operations,
            "stage_seconds": dict(self.stage_seconds),
            "series": [
                [list(path), series.state_dict()]
                for path, series in self.series.items()
            ],
            "reference": [
                [list(path), list(buf)] for path, buf in self.reference.items()
            ],
            "stats": [
                [
                    list(path),
                    {
                        "last_weight": stats.last_weight,
                        "cumulative_weight": stats.cumulative_weight,
                        "ewma_weight": stats.ewma_weight,
                        "observations": stats.observations,
                    },
                ]
                for path, stats in self._stats.items()
            ],
            "stats_last_unit": [
                [list(path), unit] for path, unit in self._stats_last_unit.items()
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict` (same tree/config)."""
        forecast_config = self.config.forecast
        maxlen = self.config.window_units
        self._timeunit = int(state["timeunit"])
        self.split_operations = int(state["split_operations"])
        self.merge_operations = int(state["merge_operations"])
        self.stage_seconds = {k: float(v) for k, v in state["stage_seconds"].items()}
        self.series = {
            tuple(path): NodeTimeSeries.from_state_dict(ts_state, forecast_config)
            for path, ts_state in state["series"]
        }
        self.reference = {
            tuple(path): deque((float(v) for v in values), maxlen=maxlen)
            for path, values in state["reference"]
        }
        self._stats = {
            tuple(path): NodeUsageStats(
                last_weight=float(stats["last_weight"]),
                cumulative_weight=float(stats["cumulative_weight"]),
                ewma_weight=float(stats["ewma_weight"]),
                observations=int(stats["observations"]),
            )
            for path, stats in state["stats"]
        }
        self._stats_last_unit = {
            tuple(path): int(unit) for path, unit in state["stats_last_unit"]
        }
        self.last_result = None


def nearest_tracked_node(
    tree: HierarchyTree, path: CategoryPath, tracked: set[CategoryPath]
) -> HierarchyNode | None:
    """The deepest tracked node on the path from the root to ``path``.

    Used by the evaluation to map a ground-truth anomaly location to the heavy
    hitter that should report it (anomalies at untracked leaves surface at
    their nearest tracked ancestor).
    """
    best: HierarchyNode | None = None
    for depth in range(len(path) + 1):
        candidate = path[:depth]
        if candidate in tracked and candidate in tree:
            best = tree.node(candidate)
    return best
