"""ADA: the low-complexity adaptive heavy hitter tracking algorithm (§V-B).

ADA keeps a *single* weighted tree plus one time series per current heavy
hitter.  When the heavy hitter set changes between time instances, the
existing time series are *adapted* instead of being reconstructed from ℓ
stored timeunits:

* **SPLIT** (Fig. 7): a heavy hitter whose weight moved down the hierarchy
  hands (a share of) its time series to descendants, the share being chosen
  by a split rule (Uniform / Last-Time-Unit / Long-Term-History / EWMA,
  §V-B4).
* **MERGE** (Fig. 8): nodes that stopped being heavy fold their time series
  back into their nearest heavy ancestor.
* **Reference time series** (§V-B5): nodes in the top ``h`` levels always keep
  the time series of their *unmodified* weight ``A_n``; a node that just
  received a split-derived (hence possibly biased) series replaces it with
  ``reference − Σ(series of heavy descendants)``.

The heavy hitter membership itself is recomputed exactly per Definition 2
every timeunit with a single bottom-up pass (the same
``Update-Ishh-and-Weight`` recursion as Fig. 6), so Lemma 1 -- ADA tracks the
correct succinct heavy hitter set -- holds by construction; only the
*historical* part of each adapted time series is approximate, which is the
error Fig. 12 and Table V quantify.

Implementation note: the paper's pseudocode drives the split/merge cascade
with ``tosplit`` flags and level-order traversals over the mutated weights.
We implement the same cascade by walking from each new heavy hitter up to its
nearest series-holding ancestor (split, top-down) and from each stale series
holder up to its nearest heavy ancestor (merge, bottom-up).  The two
formulations visit the same nodes; ours avoids the corner-case ambiguities of
the in-place weight mutations while preserving the split-rule approximation
behaviour the paper evaluates.

Vectorized close path: with NumPy present the per-timeunit work runs
columnar end to end — the weight passes through a
:class:`~repro.hierarchy.index.HierarchyIndex` (integer arithmetic, so
bit-identical to the scalar :mod:`repro.core.hhh` functions), one
:meth:`~repro.forecasting.bank.ForecasterBank.observe_rows` call updates
every tracked forecaster, split-rule statistics update as dense per-node
arrays, and the dual-threshold check evaluates as one batch comparison
(:meth:`~repro.core.detector.ThresholdDetector.check_many`).  Without NumPy
every stage falls back to the scalar implementations with identical
detections.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Deque, Mapping

from repro._types import CategoryPath, TimeunitIndex, Weight
from repro._vector import load_kernels, load_numpy, pinned_kernels
from repro.core.adapt import (
    FOLD,
    FRESH,
    MOVE,
    SPLIT,
    batched_split_runs,
    plan_adaptation,
)
from repro.core import fused
from repro.core.config import TiresiasConfig
from repro.core.detector import ThresholdDetector
from repro.core.hhh import accumulate_raw_weights, compute_shhh
from repro.core.results import TimeunitResult
from repro.core.split_rules import NodeUsageStats, make_split_rule
from repro.core.timeseries import NodeTimeSeries
from repro.exceptions import ConfigurationError
from repro.forecasting.bank import ForecasterBank
from repro.hierarchy.index import HierarchyIndex
from repro.hierarchy.node import HierarchyNode
from repro.hierarchy.tree import HierarchyTree

_np = load_numpy()

#: Environment variable forcing the historical scalar adaptation walk even
#: when the vector backend is available — the deployment-level escape hatch
#: (in-repo code such as the perf harness prefers the explicit
#: ``ADAAlgorithm(adaptation="legacy")`` constructor argument).  Resolved
#: once at construction; toggling it mid-run does not switch live instances.
DISABLE_DELTA_ENV = "REPRO_DISABLE_DELTA"


class _SplitStatsStore:
    """Split-rule statistics for every node seen so far (§V-B4 bookkeeping).

    With NumPy the statistics live in dense per-node arrays updated by one
    vectorized kernel per timeunit; otherwise a per-path dict of
    :class:`NodeUsageStats` is maintained with the historical scalar loop.
    Values are bit-identical between the two (the EWMA decay powers are
    precomputed with Python's ``**``, the same operator the scalar path
    uses).  Checkpoint emission keeps the canonical ``[[path, stats], ...]``
    rows either way.
    """

    def __init__(self, config: TiresiasConfig, index: "HierarchyIndex | None"):
        self.alpha = config.split_ewma_alpha
        self.index = index
        if index is None:
            self.stats: dict[CategoryPath, NodeUsageStats] = {}
            self.last_unit: dict[CategoryPath, int] = {}
            return
        n = index.num_nodes
        self.last_weight = _np.zeros(n)
        self.cumulative = _np.zeros(n)
        self.ewma = _np.zeros(n)
        self.observations = _np.zeros(n, dtype=_np.int64)
        self.last_unit_arr = _np.zeros(n, dtype=_np.int64)
        self.seen = _np.zeros(n, dtype=bool)
        self.has_last = _np.zeros(n, dtype=bool)
        #: ``(1 - alpha) ** g`` for g = 0..; grown lazily with Python pow so
        #: the decay factors match the scalar path bit for bit.
        self._decay = [1.0]
        #: Array mirror of ``_decay`` for the compiled kernel (rebuilt when
        #: the list grows; the length check keeps it in sync).
        self._decay_arr = None
        #: Rows restored from a foreign state whose paths are not in the tree.
        self._extra_stats: dict[CategoryPath, NodeUsageStats] = {}
        self._extra_last: dict[CategoryPath, int] = {}

    # ------------------------------------------------------------------
    # Per-timeunit updates
    # ------------------------------------------------------------------
    def _extend_decay(self, gap: int) -> None:
        base = 1 - self.alpha
        while len(self._decay) <= gap:
            self._decay.append(base ** len(self._decay))

    def update_dense(self, timeunit: int, raw_vec) -> None:
        """Fold one timeunit of dense raw weights into the statistics."""
        kernels = load_kernels()
        if kernels is not None:
            # Compiled tier: one C pass over the vector.  The kernel returns
            # the needed decay-table length (mutating nothing) when a silent
            # gap outruns the table; decay factors always come from Python
            # ``**`` so all three tiers share the exact same constants.
            decay_arr = self._decay_arr
            if decay_arr is None or len(decay_arr) != len(self._decay):
                decay_arr = self._decay_arr = _np.asarray(self._decay)
            needed = kernels.update_stats_dense(
                raw_vec,
                int(timeunit),
                self.alpha,
                decay_arr,
                self.cumulative,
                self.ewma,
                self.last_weight,
                self.observations,
                self.last_unit_arr,
                self.seen,
                self.has_last,
            )
            if needed:
                self._extend_decay(int(needed))
                decay_arr = self._decay_arr = _np.asarray(self._decay)
                kernels.update_stats_dense(
                    raw_vec,
                    int(timeunit),
                    self.alpha,
                    decay_arr,
                    self.cumulative,
                    self.ewma,
                    self.last_weight,
                    self.observations,
                    self.last_unit_arr,
                    self.seen,
                    self.has_last,
                )
            return
        ids = _np.flatnonzero(raw_vec > 0.0)
        if ids.size == 0:
            return
        weights = raw_vec[ids]
        last = self.last_unit_arr[ids]
        decay_rows = self.has_last[ids] & (last < timeunit - 1)
        if decay_rows.any():
            gap_values = timeunit - last[decay_rows] - 1
            self._extend_decay(int(gap_values.max()))
            selected = ids[decay_rows]
            self.ewma[selected] = self.ewma[selected] * _np.asarray(self._decay)[
                gap_values
            ]
        self.cumulative[ids] += weights
        self.ewma[ids] = _np.where(
            self.observations[ids] > 0,
            self.alpha * weights + (1 - self.alpha) * self.ewma[ids],
            weights,
        )
        self.last_weight[ids] = weights
        self.observations[ids] += 1
        self.seen[ids] = True
        self.has_last[ids] = True
        self.last_unit_arr[ids] = timeunit

    def _scalar_update(
        self, stats: NodeUsageStats, last: "int | None", weight, timeunit: int
    ) -> None:
        """The historical per-path update, shared by every scalar store path.

        ``update_dense`` is its vectorized twin — any change here must be
        mirrored there (and is guarded by the dense-vs-dict parity tests).
        """
        if last is not None and timeunit - last > 1:
            # Account the silent (zero-weight) timeunits in the EWMA.
            gap = timeunit - last - 1
            stats.ewma_weight *= (1 - self.alpha) ** gap
            stats.last_weight = 0.0
        stats.update(weight, self.alpha)

    def update_dict(self, timeunit: int, raw: Mapping[CategoryPath, Weight]) -> None:
        """Per-path statistics update from a raw-weight mapping.

        The historical scalar loop; in dense mode the same arithmetic runs
        through a per-path read / scalar-update / write-back on the arrays
        (identical values, any store mode).
        """
        if self.index is not None:
            lookup = self.index.path_to_id.get
            for path, weight in raw.items():
                path = tuple(path)
                node_id = lookup(path)
                if node_id is None:
                    stats = self._extra_stats.get(path)
                    if stats is None:
                        stats = NodeUsageStats()
                        self._extra_stats[path] = stats
                    self._scalar_update(
                        stats, self._extra_last.get(path), weight, timeunit
                    )
                    self._extra_last[path] = timeunit
                    continue
                stats = NodeUsageStats(
                    last_weight=float(self.last_weight[node_id]),
                    cumulative_weight=float(self.cumulative[node_id]),
                    ewma_weight=float(self.ewma[node_id]),
                    observations=int(self.observations[node_id]),
                )
                last = (
                    int(self.last_unit_arr[node_id])
                    if self.has_last[node_id]
                    else None
                )
                self._scalar_update(stats, last, weight, timeunit)
                self.last_weight[node_id] = stats.last_weight
                self.cumulative[node_id] = stats.cumulative_weight
                self.ewma[node_id] = stats.ewma_weight
                self.observations[node_id] = stats.observations
                self.seen[node_id] = True
                self.has_last[node_id] = True
                self.last_unit_arr[node_id] = timeunit
            return
        for path, weight in raw.items():
            stats = self.stats.get(path)
            if stats is None:
                stats = NodeUsageStats()
                self.stats[path] = stats
            self._scalar_update(stats, self.last_unit.get(path), weight, timeunit)
            self.last_unit[path] = timeunit

    # ------------------------------------------------------------------
    # Split-rule reads
    # ------------------------------------------------------------------
    def view(self, path: CategoryPath, timeunit: int) -> NodeUsageStats:
        """Statistics for ``path`` adjusted for timeunits it was silent in."""
        if self.index is None:
            stats = self.stats.get(path)
            last = self.last_unit.get(path, -1)
        else:
            node_id = self.index.path_to_id.get(path)
            if node_id is not None:
                return self.view_id(node_id, timeunit)
            stats = self._extra_stats.get(path)
            last = self._extra_last.get(path, -1)
        if stats is None:
            return NodeUsageStats()
        return self._silence_adjusted(stats, last, timeunit)

    def _silence_adjusted(
        self, stats: NodeUsageStats, last: int, timeunit: int
    ) -> NodeUsageStats:
        """``stats`` adjusted for the timeunits since ``last`` (shared tail).

        The single owner of the silent-timeunit decay arithmetic (Python
        ``**`` decay, last-weight zeroing); :meth:`view`, :meth:`view_id` and
        the per-rule scorers in :meth:`ADAAlgorithm._make_id_scorer` must all
        agree with it bit for bit.
        """
        gap = timeunit - last
        if gap <= 0:
            return stats
        alpha = self.alpha
        return NodeUsageStats(
            last_weight=0.0 if gap > 1 else stats.last_weight,
            cumulative_weight=stats.cumulative_weight,
            ewma_weight=stats.ewma_weight * (1 - alpha) ** (gap - 1),
            observations=stats.observations,
        )

    def view_id(self, node_id: int, timeunit: int) -> NodeUsageStats:
        """Dense-store :meth:`view` for an in-tree node id (no path lookup).

        Same arithmetic, same Python ``**`` decay, so views are bit-identical
        to the path-keyed read.
        """
        if not self.seen[node_id]:
            return NodeUsageStats()
        stats = NodeUsageStats(
            last_weight=float(self.last_weight[node_id]),
            cumulative_weight=float(self.cumulative[node_id]),
            ewma_weight=float(self.ewma[node_id]),
            observations=int(self.observations[node_id]),
        )
        last = int(self.last_unit_arr[node_id]) if self.has_last[node_id] else -1
        return self._silence_adjusted(stats, last, timeunit)

    # ------------------------------------------------------------------
    # Canonical checkpoint rows
    # ------------------------------------------------------------------
    @staticmethod
    def _stats_row(stats: NodeUsageStats) -> dict:
        return {
            "last_weight": stats.last_weight,
            "cumulative_weight": stats.cumulative_weight,
            "ewma_weight": stats.ewma_weight,
            "observations": stats.observations,
        }

    def emit(self) -> tuple[list, list]:
        """``(stats_rows, last_unit_rows)`` in the canonical list format."""
        if self.index is None:
            stats_rows = [
                [list(path), self._stats_row(stats)]
                for path, stats in self.stats.items()
            ]
            last_rows = [
                [list(path), unit] for path, unit in self.last_unit.items()
            ]
            return stats_rows, last_rows
        stats_rows = [
            [
                list(self.index.paths[node_id]),
                {
                    "last_weight": float(self.last_weight[node_id]),
                    "cumulative_weight": float(self.cumulative[node_id]),
                    "ewma_weight": float(self.ewma[node_id]),
                    "observations": int(self.observations[node_id]),
                },
            ]
            for node_id in _np.flatnonzero(self.seen).tolist()
        ]
        stats_rows.extend(
            [list(path), self._stats_row(stats)]
            for path, stats in self._extra_stats.items()
        )
        last_rows = [
            [list(self.index.paths[node_id]), int(self.last_unit_arr[node_id])]
            for node_id in _np.flatnonzero(self.has_last).tolist()
        ]
        last_rows.extend(
            [list(path), unit] for path, unit in self._extra_last.items()
        )
        return stats_rows, last_rows

    def load(self, stats_rows, last_rows) -> None:
        """Restore from canonical rows (inverse of :meth:`emit`)."""
        if self.index is None:
            self.stats = {
                tuple(path): NodeUsageStats(
                    last_weight=float(row["last_weight"]),
                    cumulative_weight=float(row["cumulative_weight"]),
                    ewma_weight=float(row["ewma_weight"]),
                    observations=int(row["observations"]),
                )
                for path, row in stats_rows
            }
            self.last_unit = {tuple(path): int(unit) for path, unit in last_rows}
            return
        for array in (self.last_weight, self.cumulative, self.ewma):
            array[:] = 0.0
        self.observations[:] = 0
        self.last_unit_arr[:] = 0
        self.seen[:] = False
        self.has_last[:] = False
        self._extra_stats = {}
        self._extra_last = {}
        lookup = self.index.path_to_id.get
        for path, row in stats_rows:
            path = tuple(path)
            node_id = lookup(path)
            if node_id is None:
                self._extra_stats[path] = NodeUsageStats(
                    last_weight=float(row["last_weight"]),
                    cumulative_weight=float(row["cumulative_weight"]),
                    ewma_weight=float(row["ewma_weight"]),
                    observations=int(row["observations"]),
                )
                continue
            self.last_weight[node_id] = float(row["last_weight"])
            self.cumulative[node_id] = float(row["cumulative_weight"])
            self.ewma[node_id] = float(row["ewma_weight"])
            self.observations[node_id] = int(row["observations"])
            self.seen[node_id] = True
        for path, unit in last_rows:
            path = tuple(path)
            node_id = lookup(path)
            if node_id is None:
                self._extra_last[path] = int(unit)
                continue
            self.last_unit_arr[node_id] = int(unit)
            self.has_last[node_id] = True


class _RefStore:
    """Reference (unmodified weight ``A_n``) series for the top-``h`` levels.

    With NumPy the buffers live in one ``(rows, window)`` ring written with a
    single column assignment per timeunit; without NumPy — or after restoring
    a snapshot whose rows are ragged — every row is a bounded deque, exactly
    the historical representation.  Emission preserves row insertion order so
    checkpoints stay byte-identical across save/restore round trips
    (including merged sharded checkpoints, whose row order is shard-grouped).
    """

    def __init__(self, maxlen: int):
        self.maxlen = maxlen
        #: Row paths in insertion order (both modes).
        self.order: list[CategoryPath] = []
        self.row_of: dict[CategoryPath, int] = {}
        self.deques: "dict[CategoryPath, Deque[float]] | None" = (
            {} if _np is None else None
        )
        self._buf = None  # (rows, maxlen) ring payload, ring mode only
        self._start = 0
        self._size = 0
        self._perm_paths: "tuple | None" = None
        self._perm = None

    @property
    def ring_mode(self) -> bool:
        return self.deques is None

    def __len__(self) -> int:
        return len(self.order)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _degrade(self) -> None:
        """Fall back to per-row deques (keeps values and order)."""
        if not self.ring_mode:
            return
        deques: dict[CategoryPath, Deque[float]] = {}
        for row, path in enumerate(self.order):
            deques[path] = deque(self._row_list(row), maxlen=self.maxlen)
        self.deques = deques
        self._buf = None
        self._start = 0
        self._size = 0
        self._perm_paths = None
        self._perm = None

    def _perm_for(self, paths) -> "object | None":
        """Row indices for ``paths`` (cached), or None if any path is absent."""
        if self._perm_paths is paths:
            return self._perm
        row_of = self.row_of
        try:
            perm = _np.array([row_of[path] for path in paths], dtype=_np.intp)
        except KeyError:
            return None
        self._perm_paths = paths
        self._perm = perm
        return perm

    def append_column(self, paths, values) -> None:
        """Append one timeunit's value per path (creating missing rows).

        ``paths`` is the session's fixed reference-node tuple; in ring mode
        the whole column lands with one array write.
        """
        if self.ring_mode:
            if not self.order:
                self.order = [path for path in paths]
                self.row_of = {path: row for row, path in enumerate(self.order)}
                self._buf = _np.zeros((len(self.order), self.maxlen))
                self._perm_paths = None
            perm = self._perm_for(paths)
            if perm is None or len(self.order) != len(paths):
                self._degrade()
            else:
                pos = self._start + self._size
                if pos >= self.maxlen:
                    pos -= self.maxlen
                self._buf[perm, pos] = values
                if self._size == self.maxlen:
                    self._start += 1
                    if self._start == self.maxlen:
                        self._start = 0
                else:
                    self._size += 1
                return
        if not isinstance(values, list):
            values = values.tolist() if _np is not None else list(values)
        maxlen = self.maxlen
        deques = self.deques
        for path, value in zip(paths, values):
            buf = deques.get(path)
            if buf is None:
                buf = deque(maxlen=maxlen)
                deques[path] = buf
                self.order.append(path)
                self.row_of[path] = len(self.order) - 1
            buf.append(value)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _row_list(self, row: int) -> list[float]:
        end = self._start + self._size
        if end <= self.maxlen:
            return self._buf[row, self._start : end].tolist()
        return (
            self._buf[row, self._start :].tolist()
            + self._buf[row, : end - self.maxlen].tolist()
        )

    def has_values(self, path: CategoryPath) -> bool:
        if self.ring_mode:
            return self._size > 0 and path in self.row_of
        buf = self.deques.get(path)
        return buf is not None and len(buf) > 0

    def corrected_base(self, path: CategoryPath):
        """A fresh, mutable oldest-first copy of the path's buffer (or None).

        NumPy present: a float64 array (bit-identical to the historical
        ``np.fromiter`` over the deque); fallback: a plain list.
        """
        if self.ring_mode:
            row = self.row_of.get(path)
            if row is None or self._size == 0:
                return None
            end = self._start + self._size
            if end <= self.maxlen:
                return self._buf[row, self._start : end].copy()
            return _np.concatenate(
                [self._buf[row, self._start :], self._buf[row, : end - self.maxlen]]
            )
        buf = self.deques.get(path)
        if buf is None or not buf:
            return None
        if _np is not None:
            return _np.fromiter(buf, dtype=_np.float64, count=len(buf))
        return list(buf)

    def total_len(self) -> int:
        if self.ring_mode:
            return self._size * len(self.order)
        return sum(len(buf) for buf in self.deques.values())

    def as_dict(self) -> "dict[CategoryPath, Deque[float]]":
        """Compat view: ``{path: deque}`` in insertion order.

        In ring mode the deques are materialized copies — reads only (the
        live state is columnar)."""
        if not self.ring_mode:
            return self.deques
        return {
            path: deque(self._row_list(row), maxlen=self.maxlen)
            for row, path in enumerate(self.order)
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def emit(self) -> list:
        if self.ring_mode:
            return [
                [list(path), self._row_list(row)]
                for row, path in enumerate(self.order)
            ]
        return [[list(path), list(buf)] for path, buf in self.deques.items()]

    def load(self, rows) -> None:
        """Restore from canonical ``[[path, values], ...]`` rows."""
        self.order = []
        self.row_of = {}
        self._buf = None
        self._start = 0
        self._size = 0
        self._perm_paths = None
        self._perm = None
        self.deques = {} if _np is None else None
        maxlen = self.maxlen
        if not rows:
            return
        lengths = {min(len(values), maxlen) for _path, values in rows}
        if _np is not None and len(lengths) == 1:
            size = next(iter(lengths))
            self.order = [tuple(path) for path, _values in rows]
            self.row_of = {path: row for row, path in enumerate(self.order)}
            self._buf = _np.zeros((len(rows), maxlen))
            for row, (_path, values) in enumerate(rows):
                tail = [float(v) for v in values][-maxlen:]
                self._buf[row, :size] = tail
            self._size = size
            return
        if _np is not None:
            self.deques = {}
        for path, values in rows:
            path = tuple(path)
            self.order.append(path)
            self.row_of[path] = len(self.order) - 1
            self.deques[path] = deque((float(v) for v in values), maxlen=maxlen)


class ADAAlgorithm:
    """Adaptive online heavy hitter tracking and time-series maintenance."""

    name = "ADA"

    def __init__(
        self, tree: HierarchyTree, config: TiresiasConfig, adaptation: str = "auto"
    ):
        if adaptation not in ("auto", "delta", "legacy"):
            raise ConfigurationError(
                f"adaptation must be 'auto', 'delta' or 'legacy', got {adaptation!r}"
            )
        self.tree = tree
        self.config = config
        self.detector = ThresholdDetector(config)
        self.split_rule = make_split_rule(config)
        #: Columnar forecaster state shared by every tracked node's series.
        self.bank = ForecasterBank(config.forecast)
        #: Time series of the current heavy hitters, keyed by node path.
        self.series: dict[CategoryPath, NodeTimeSeries] = {}
        #: The same series grouped by top-level label, in the same relative
        #: insertion order: the reference correction scans only the bucket a
        #: path can have descendants in, instead of every tracked series.
        self._series_buckets: dict[str, dict[CategoryPath, NodeTimeSeries]] = {}
        #: Reference (unmodified weight) series for nodes in the top h levels.
        self._ref = _RefStore(config.window_units)
        #: Dense hierarchy view driving the vectorized weight kernels.
        self._index: HierarchyIndex | None = (
            HierarchyIndex(tree) if _np is not None else None
        )
        if adaptation == "delta" and self._index is None:
            raise ConfigurationError(
                "adaptation='delta' requires the vector backend (NumPy); "
                "use 'auto' to fall back to the scalar walk transparently"
            )
        #: Split-rule statistics for every node seen so far.
        self._stats = _SplitStatsStore(config, self._index)
        self._timeunit: TimeunitIndex = -1
        self.stage_seconds: dict[str, float] = {
            "updating_hierarchies": 0.0,
            "creating_time_series": 0.0,
            "detecting_anomalies": 0.0,
        }
        self.split_operations = 0
        self.merge_operations = 0
        self._view_cache: dict[CategoryPath, NodeUsageStats] = {}
        self.last_result: TimeunitResult | None = None
        #: Id-indexed series registry: one slot per node id, an occupancy
        #: mask (== the previous timeunit's heavy mask between closes) and a
        #: dense forecaster row-handle table.  The tuple-keyed ``series`` /
        #: ``_series_buckets`` dicts above are kept in lockstep as thin
        #: compat views — mutated only on churn, never on stable timeunits.
        if self._index is not None:
            n = self._index.num_nodes
            self._series_by_id: list[NodeTimeSeries | None] = [None] * n
            self._series_mask = _np.zeros(n, dtype=bool)
            self._series_rows = _np.full(n, -1, dtype=_np.int64)
        else:
            self._series_by_id = []
            self._series_mask = None
            self._series_rows = None
        self._adaptation = adaptation
        #: Resolved once at construction so an instance never switches mode
        #: mid-run (mixed-mode switching would leave the id tables stale).
        self._env_disable_delta = bool(os.environ.get(DISABLE_DELTA_ENV))
        #: Cleared when state that the id planner cannot represent appears
        #: (e.g. a restored series path outside this tree).
        self._delta_ok = True
        #: Per-timeunit id-keyed split-statistics view memo (churn path).
        self._id_view_cache: dict[int, NodeUsageStats] = {}
        #: Cached heavy-order structures reused verbatim while the heavy set
        #: is unchanged: (mask, ids array, paths, frozenset, rows, series).
        self._hv_cache = None
        #: Delta-engine counters (not checkpointed).
        self.fastpath_units = 0
        self.planned_units = 0
        self.adapt_seconds = 0.0
        #: Fused close path (resolved once at construction, like the delta
        #: switch): array-native observe + compiled ring record on delta
        #: closes, plus the dense columnar ingest entry point.  Execution
        #: strategy only — values are bit-identical to the staged close.
        self._fused_active = self._index is not None and fused.fused_enabled()
        self._fused_pack = None
        #: Close-profile counters (not checkpointed): units closed through
        #: the fused vs staged path, units fed by dense columnar counts, and
        #: a close-latency histogram for --profile-close / service metrics.
        self.fused_units = 0
        self.staged_units = 0
        self.dense_close_units = 0
        self.close_histogram = fused.CloseHistogram()
        #: Raw root weight of the most recent timeunit.  Additive across
        #: disjoint subtree shards; the sharded engine sums it to replay the
        #: root's split-rule bookkeeping coordinator-side.
        self.last_root_raw = 0.0
        #: Frontier-band capture for depth-k sharding: when the sharded
        #: engine calls :meth:`capture_frontier`, every close also records
        #: the raw weights of the shared ancestor band (root + depths
        #: 1..k-1) so the coordinator can replay their split-rule stats and
        #: reference series exactly.  Off (``None``) outside sharded workers.
        self._frontier_paths: tuple[CategoryPath, ...] | None = None
        self._frontier_ids = None
        self.last_frontier_raw: tuple[float, ...] | None = None
        #: Band exclusion for ``min_heavy_depth > 1``: node ids at depths
        #: 1..m-1 can never qualify as heavy (the root is handled by the
        #: track_root/allow_root_heavy flags above).
        m = config.min_heavy_depth
        if self._index is not None and m > 1:
            depths = self._index.depths
            self._shallow_ids = _np.flatnonzero((depths >= 1) & (depths < m))
        else:
            self._shallow_ids = None
        self._band_excluded: frozenset[CategoryPath] = (
            frozenset(
                node.path
                for depth in range(1, m)
                for node in tree.nodes_at_depth(depth)
            )
            if m > 1
            else frozenset()
        )
        #: Nodes in the top h levels, cached once: these keep reference series.
        self._reference_nodes: tuple[CategoryPath, ...] = tuple(
            node.path
            for depth in range(1, config.reference_levels + 1)
            for node in tree.nodes_at_depth(depth)
        )
        self._reference_ids = (
            None
            if self._index is None
            else [self._index.path_to_id[path] for path in self._reference_nodes]
        )

    # ------------------------------------------------------------------
    # Online interface
    # ------------------------------------------------------------------
    @property
    def delta_adaptation_active(self) -> bool:
        """Whether the id-based delta planner drives the close path."""
        if self._index is None or not self._delta_ok:
            return False
        if self._adaptation == "legacy":
            return False
        if self._adaptation == "delta":
            return True
        return not self._env_disable_delta

    def process_timeunit(
        self, leaf_counts: Mapping[CategoryPath, Weight], timeunit: TimeunitIndex | None = None
    ) -> TimeunitResult:
        """Ingest one timeunit of data, adapt the heavy hitter series, detect."""
        return self._process_timeunit_impl(leaf_counts, None, timeunit)

    def process_timeunit_dense(
        self,
        base_vec,
        timeunit: TimeunitIndex | None = None,
        leaf_counts: "Mapping[CategoryPath, Weight] | None" = None,
    ) -> TimeunitResult:
        """Close one timeunit from a per-node dense count vector.

        The columnar ingest path aggregates a batch's dictionary codes with
        one ``bincount`` per run and hands the resulting node-id count vector
        here, skipping the per-record Counter and the per-path dict loop of
        :meth:`HierarchyIndex.raw_weights`.  ``leaf_counts`` folds in a dict
        remainder (counts that arrived through the classic route for the
        same timeunit).  Callers must check :attr:`supports_dense_close`;
        results are bit-identical to :meth:`process_timeunit` on the
        equivalent mapping.
        """
        if self._index is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("dense close requires the vector backend")
        return self._process_timeunit_impl(leaf_counts or {}, base_vec, timeunit)

    @property
    def supports_dense_close(self) -> bool:
        """Whether :meth:`process_timeunit_dense` may be used (fused path on)."""
        return self._fused_active

    def dense_count_template(self):
        """A zeroed per-node float64 count vector for the dense ingest path."""
        return _np.zeros(self._index.num_nodes)

    def dictionary_node_ids(self, dictionary):
        """Node id per path of a batch string-dictionary (-1 for unknown)."""
        return self._index.dictionary_ids(dictionary)

    def capture_frontier(self, paths) -> None:
        """Record the raw weight of each of ``paths`` on every close.

        Used by depth-k sharded workers: ``paths`` is the shard's slice of
        the shared ancestor band (root plus ancestors above the cut depth),
        in (depth, lex) order.  After each closed timeunit
        :attr:`last_frontier_raw` holds one float per path; the coordinator
        sums them across shards to replay the band's split-rule statistics
        and reference series exactly as the serial cascade would.
        """
        self._frontier_paths = tuple(tuple(p) for p in paths)
        self._frontier_ids = (
            None
            if self._index is None
            else _np.array(
                [self._index.path_to_id[path] for path in self._frontier_paths],
                dtype=_np.intp,
            )
        )
        self.last_frontier_raw = None

    def _process_timeunit_impl(
        self, leaf_counts, base_vec, timeunit: TimeunitIndex | None
    ) -> TimeunitResult:
        # One environment read pins the kernel tier for the whole close; the
        # nested probes (hierarchy sweeps, window splits/merges, row seeds)
        # all reuse the pinned resolution.
        with pinned_kernels():
            return self._process_timeunit_pinned(leaf_counts, base_vec, timeunit)

    def _process_timeunit_pinned(
        self, leaf_counts, base_vec, timeunit: TimeunitIndex | None
    ) -> TimeunitResult:
        self._timeunit = self._timeunit + 1 if timeunit is None else timeunit
        delta_close = self.delta_adaptation_active
        close_start = time.perf_counter()

        start = time.perf_counter()
        if self._index is not None:
            index = self._index
            if base_vec is None:
                raw_vec = index.raw_weights(leaf_counts)
            else:
                raw_vec = index.raw_weights_dense(base_vec, leaf_counts)
                self.dense_close_units += 1
            modified_vec, heavy_mask = index.succinct(raw_vec, self.config.theta)
            if self.config.track_root:
                heavy_mask[0] = True
            elif not self.config.allow_root_heavy:
                heavy_mask[0] = False
            if self._shallow_ids is not None:
                # The shared ancestor band above min_heavy_depth never
                # qualifies; must precede _prepare_delta (its cache keys on
                # the mask bytes).
                heavy_mask[self._shallow_ids] = False
            self.last_root_raw = float(raw_vec[0])
            if self._frontier_ids is not None:
                self.last_frontier_raw = tuple(
                    float(v) for v in raw_vec[self._frontier_ids]
                )
            raw = None
            modified_weights = None
            if delta_close:
                # Heavy-order identity (ids, paths, membership set) depends
                # only on the mask and is resolved here, exactly where the
                # scalar close resolves it; on stable timeunits it is the
                # cached tuple, untouched.
                prepared = self._prepare_delta(heavy_mask)
                heavy_paths = prepared[2]
                heavy_set = prepared[3]
            else:
                heavy_paths = [index.paths[i] for i in index.sorted_ids(heavy_mask)]
                heavy_set = set(heavy_paths)
        else:
            raw_vec = None
            modified_vec = None
            heavy_mask = None
            raw = accumulate_raw_weights(self.tree, leaf_counts)
            shhh_result = compute_shhh(
                self.tree, leaf_counts, self.config.theta, raw=raw
            )
            heavy = set(shhh_result.shhh)
            if self.config.track_root:
                heavy.add(self.tree.root.path)
            elif not self.config.allow_root_heavy:
                heavy.discard(self.tree.root.path)
            if self._band_excluded:
                heavy -= self._band_excluded
            heavy_paths = sorted(heavy)
            modified_weights = shhh_result.modified_weights
            self.last_root_raw = float(raw.get(self.tree.root.path, 0.0))
            if self._frontier_paths is not None:
                self.last_frontier_raw = tuple(
                    float(raw.get(path, 0.0)) for path in self._frontier_paths
                )
            heavy_set = set(heavy_paths)
        self.stage_seconds["updating_hierarchies"] += time.perf_counter() - start

        start = time.perf_counter()
        if delta_close:
            actuals, forecasts = self._close_delta(
                prepared, heavy_mask, raw_vec, modified_vec
            )
        else:
            # Split-rule statistics are frozen during adaptation (they update
            # after it), so per-path views can be memoized for this timeunit.
            self._view_cache = {}
            adapt_start = time.perf_counter()
            self._adapt(heavy_set)
            self.adapt_seconds += time.perf_counter() - adapt_start
            self._update_reference(raw, raw_vec)
            actuals, forecasts = self._append_weights(
                heavy_paths, raw_vec, modified_vec, raw, modified_weights
            )
            if self._index is not None:
                self._stats.update_dense(self._timeunit, raw_vec)
            else:
                self._stats.update_dict(self._timeunit, raw)
        self.stage_seconds["creating_time_series"] += time.perf_counter() - start

        start = time.perf_counter()
        result = self._detect(heavy_set, heavy_paths, actuals, forecasts)
        self.stage_seconds["detecting_anomalies"] += time.perf_counter() - start
        self.last_result = result
        if delta_close and self._fused_active:
            self.fused_units += 1
        else:
            self.staged_units += 1
        self.close_histogram.observe(time.perf_counter() - close_start)
        return result

    def close_profile(self) -> dict:
        """Close-path execution profile for ``--profile-close`` / metrics.

        ``fused_units`` / ``staged_units`` count timeunits closed through the
        fused vs staged path (every close increments exactly one),
        ``dense_close_units`` those fed a dense columnar count vector, and
        ``close_time`` is a log-bucketed histogram of per-timeunit close wall
        times.  Not checkpointed — these describe this process's execution,
        not algorithm state.
        """
        return {
            "fused_units": self.fused_units,
            "staged_units": self.staged_units,
            "dense_close_units": self.dense_close_units,
            "close_time": self.close_histogram.to_dict(),
        }

    # ------------------------------------------------------------------
    # Delta-driven close path (id-based fast path + batched planner)
    # ------------------------------------------------------------------
    def _prepare_delta(self, heavy_mask):
        """Resolve the timeunit's heavy-order identity from the mask alone.

        Returns ``(stable, ids_arr, heavy_paths, heavy_set, ids)`` — on a
        stable timeunit (mask unchanged) everything comes from the cache and
        ``ids`` is None; otherwise the lex-ordered ids and path structures
        are built fresh (this is the work the scalar close performs in the
        same stage when it materializes ``heavy_paths``).
        """
        cache = self._hv_cache
        check_start = time.perf_counter()
        if cache is not None and cache[0] == heavy_mask.tobytes():
            # The whole adaptation engine's work for a stable timeunit is
            # this one mask comparison (bytes compare: one memcmp).
            self.adapt_seconds += time.perf_counter() - check_start
            return (True, cache[1], cache[2], cache[3], None)
        self.adapt_seconds += time.perf_counter() - check_start
        index = self._index
        lex = index.lex_order
        ids_arr = lex[heavy_mask[lex]]
        ids = ids_arr.tolist()
        paths = index.paths
        heavy_paths = [paths[i] for i in ids]
        heavy_set = frozenset(heavy_paths)
        return (False, ids_arr, heavy_paths, heavy_set, ids)

    def _close_delta(self, prepared, heavy_mask, raw_vec, modified_vec):
        """The id-based per-timeunit close: adapt on the heavy-set delta only.

        When the heavy mask is unchanged from the previous timeunit the whole
        adaptation stage reduces to one mask comparison and the cached
        heavy-order structures are reused verbatim; otherwise the shared
        planner emits the SPLIT/MERGE cascade as ops which are applied with
        batched bank kernels.  Values are bit-identical to the scalar walk.
        """
        stable, ids_arr, heavy_paths, heavy_set, ids = prepared
        if stable:
            cache = self._hv_cache
            rows = cache[4]
            series_list = cache[5]
            self.fastpath_units += 1
        else:
            index = self._index
            adapt_start = time.perf_counter()
            self._id_view_cache = {}
            plan = plan_adaptation(
                index,
                self._series_mask,
                heavy_mask,
                self._view_by_id,
                self.split_rule,
                self._ref_has_id,
                score_of=self._make_id_scorer(),
            )
            if plan.ops:
                self._apply_plan(plan)
            self.split_operations += plan.num_splits
            self.merge_operations += plan.num_merges
            self.planned_units += 1
            missing = heavy_mask & ~self._series_mask
            if missing.any():
                # Mirrors the scalar path's belt-and-braces series creation
                # inside ``_append_weights`` (same lex insertion order).
                for node_id in index.sorted_ids(missing):
                    self._reg_set_id(
                        node_id,
                        NodeTimeSeries(
                            self.config.window_units,
                            self.config.forecast,
                            bank=self.bank,
                        ),
                    )
            rows = self._series_rows[ids_arr]
            by_id = self._series_by_id
            series_list = [by_id[i] for i in ids]
            self._hv_cache = (
                heavy_mask.tobytes(),
                ids_arr,
                heavy_paths,
                heavy_set,
                rows,
                series_list,
            )
            self.adapt_seconds += time.perf_counter() - adapt_start
        self._update_reference(None, raw_vec)
        values_vec = modified_vec[ids_arr]
        if heavy_mask[0] and modified_vec[0] <= 0.0:
            # A tracked root with zero modified weight falls back to its raw
            # weight; the root is lexicographically first when present.
            values_vec = values_vec.copy()
            values_vec[0] = raw_vec[0]
        if self._fused_active:
            # Fused tail: array-native observe (compiled steady kernel when
            # built) and one compiled ring append for the whole heavy set.
            # Same values, same operation order as the staged tail below.
            forecasts_vec = self.bank.observe_rows_arrays(rows, values_vec)
            values = values_vec.tolist()
            forecasts = forecasts_vec.tolist()
            pack = self._fused_pack
            if pack is None or pack.series_list is not series_list:
                pack = self._fused_pack = fused.build_record_pack(series_list)
            if not fused.record_fused(
                pack, load_kernels(), values_vec, forecasts_vec
            ):
                for series, value, predicted in zip(series_list, values, forecasts):
                    series.record(value, predicted)
        else:
            values = values_vec.tolist()
            forecasts = self.bank.observe_rows(rows, values)
            for series, value, predicted in zip(series_list, values, forecasts):
                series.record(value, predicted)
        self._stats.update_dense(self._timeunit, raw_vec)
        return values, forecasts

    def _view_by_id(self, node_id: int) -> NodeUsageStats:
        view = self._id_view_cache.get(node_id)
        if view is None:
            view = self._stats.view_id(node_id, self._timeunit)
            self._id_view_cache[node_id] = view
        return view

    def _make_id_scorer(self):
        """Per-id split-rule score shortcut for the built-in rules.

        Evaluates only the statistics field the rule reads, with exactly the
        gap-adjustment arithmetic of :meth:`_SplitStatsStore.view` followed
        by the rule's ``score`` — so ratios come out bit-identical without
        materializing a :class:`NodeUsageStats` per receiver.  Returns None
        for custom rule classes (the planner then uses full views).
        """
        from repro.core.split_rules import (
            EWMASplitRule,
            LastTimeUnitSplitRule,
            LongTermHistorySplitRule,
            UniformSplitRule,
        )

        rule_cls = type(self.split_rule)
        store = self._stats
        timeunit = self._timeunit
        cache: dict[int, float] = {}
        if rule_cls is UniformSplitRule:
            def score(node_id: int) -> float:
                return 1.0
        elif rule_cls is LongTermHistorySplitRule:
            cumulative, seen = store.cumulative, store.seen
            def score(node_id: int) -> float:
                value = cache.get(node_id)
                if value is None:
                    value = float(cumulative[node_id]) if seen[node_id] else 0.0
                    cache[node_id] = value
                return value
        elif rule_cls is LastTimeUnitSplitRule:
            last_weight, seen = store.last_weight, store.seen
            has_last, last_unit = store.has_last, store.last_unit_arr
            def score(node_id: int) -> float:
                value = cache.get(node_id)
                if value is None:
                    if not seen[node_id]:
                        value = 0.0
                    else:
                        last = int(last_unit[node_id]) if has_last[node_id] else -1
                        value = 0.0 if timeunit - last > 1 else float(
                            last_weight[node_id]
                        )
                    cache[node_id] = value
                return value
        elif rule_cls is EWMASplitRule:
            ewma, seen = store.ewma, store.seen
            has_last, last_unit = store.has_last, store.last_unit_arr
            alpha = store.alpha
            def score(node_id: int) -> float:
                value = cache.get(node_id)
                if value is None:
                    if not seen[node_id]:
                        value = 0.0
                    else:
                        value = float(ewma[node_id])
                        last = int(last_unit[node_id]) if has_last[node_id] else -1
                        gap = timeunit - last
                        if gap > 0:
                            value = value * (1 - alpha) ** (gap - 1)
                    cache[node_id] = value
                return value
        else:
            return None
        return score

    def _ref_has_id(self, node_id: int) -> bool:
        return self._ref.has_values(self._index.paths[node_id])

    def _apply_plan(self, plan) -> None:
        """Apply a planner op list, batching independent bank operations.

        Ops run in exact cascade order; consecutive SPLIT steps with disjoint
        donors/receivers and no reference correction collapse into one
        ``split_rows_many`` call (grouped by :func:`batched_split_runs`),
        and MERGE folds buffer until a destination repeats and land through
        ``merge_rows_many`` (which applies small batches via the direct
        per-pair kernel).  Window (ring) arithmetic always runs inline in op
        order, so every float operation happens in the scalar cascade's
        sequence.
        """
        index = self._index
        paths = index.paths
        by_id = self._series_by_id
        bank = self.bank
        config = self.config
        ops = plan.ops
        n = len(ops)
        series_dict = self.series
        buckets = self._series_buckets
        #: Ids whose registry slot changed; the occupancy mask and row-handle
        #: table are refreshed once at the end (nothing reads them mid-apply).
        changed: set[int] = set()

        def reg_set(node_id: int, series: NodeTimeSeries) -> None:
            by_id[node_id] = series
            changed.add(node_id)
            path = paths[node_id]
            series_dict[path] = series
            if path:
                bucket = buckets.get(path[0])
                if bucket is None:
                    bucket = {}
                    buckets[path[0]] = bucket
                bucket[path] = series

        def reg_pop(node_id: int) -> NodeTimeSeries:
            series = by_id[node_id]
            by_id[node_id] = None
            changed.add(node_id)
            path = paths[node_id]
            del series_dict[path]
            if path:
                bucket = buckets.get(path[0])
                if bucket is not None:
                    bucket.pop(path, None)
            return series

        #: SPLIT ops grouped into independently applicable batches (an op
        #: carrying a reference correction closes its batch); the helper is
        #: the single owner of the run-breaking rules.
        runs_by_start = {run[0]: run for run in batched_split_runs(ops)}
        #: MERGE folds buffer until a destination repeats (same-destination
        #: folds must land in cascade order) and flush through the bank's
        #: batched kernel, which routes small batches to the direct per-pair
        #: fold itself.  Ring arithmetic stays inline in op order.
        fold_dst_rows: list[int] = []
        fold_src_rows: list[int] = []
        fold_dst_ids: set[int] = set()

        def flush_folds() -> None:
            if fold_dst_rows:
                bank.merge_rows_many(fold_dst_rows, fold_src_rows)
                fold_dst_rows.clear()
                fold_src_rows.clear()
                fold_dst_ids.clear()

        i = 0
        while i < n:
            op = ops[i]
            kind = op[0]
            if kind == SPLIT:
                run = runs_by_start[i]
                if len(run) == 1:
                    _kind, donor_id, child_id, ratio, correct = op
                    child = by_id[donor_id].split_inplace(ratio)
                    reg_set(child_id, child)
                    if correct:
                        self._apply_reference_correction(paths[child_id])
                else:
                    donor_rows = [by_id[ops[k][1]].forecaster.row for k in run]
                    ratios = [ops[k][3] for k in run]
                    child_rows = bank.split_rows_many(donor_rows, ratios)
                    for k, child_row in zip(run, child_rows):
                        _kind, donor_id, child_id, ratio, correct = ops[k]
                        child = by_id[donor_id].split_inplace(ratio, child_row)
                        reg_set(child_id, child)
                        if correct:
                            self._apply_reference_correction(paths[child_id])
                i = run[-1] + 1
                continue
            if kind == FRESH:
                reg_set(
                    op[1],
                    NodeTimeSeries(
                        config.window_units, config.forecast, bank=self.bank
                    ),
                )
            elif kind == FOLD:
                dst_id = op[2]
                src = reg_pop(op[1])
                dst = by_id[dst_id]
                dst.merge_windows_from(src)
                if dst_id in fold_dst_ids:
                    flush_folds()
                fold_dst_rows.append(dst.forecaster.row)
                fold_src_rows.append(src.forecaster.row)
                fold_dst_ids.add(dst_id)
            elif kind == MOVE:
                src = reg_pop(op[1])
                reg_set(op[2], src)
            else:  # DROP
                reg_pop(op[1]).release()
            i += 1
        flush_folds()
        if changed:
            mask = self._series_mask
            rows = self._series_rows
            for node_id in changed:
                series = by_id[node_id]
                if series is None:
                    mask[node_id] = False
                    rows[node_id] = -1
                else:
                    mask[node_id] = True
                    rows[node_id] = series.forecaster.row

    # ------------------------------------------------------------------
    # Series registry: id-indexed table with the path dicts as compat views
    # ------------------------------------------------------------------
    @property
    def reference(self) -> "dict[CategoryPath, Deque[float]]":
        """Reference series per path (compat view over the columnar store)."""
        return self._ref.as_dict()

    def _reg_set_id(self, node_id: int, series: NodeTimeSeries) -> None:
        """Register a series under a node id (and the path compat views)."""
        self._series_by_id[node_id] = series
        self._series_mask[node_id] = True
        self._series_rows[node_id] = series.forecaster.row
        path = self._index.paths[node_id]
        self.series[path] = series
        if path:
            bucket = self._series_buckets.get(path[0])
            if bucket is None:
                bucket = {}
                self._series_buckets[path[0]] = bucket
            bucket[path] = series

    def _reg_pop_id(self, node_id: int) -> NodeTimeSeries:
        series = self._series_by_id[node_id]
        self._series_by_id[node_id] = None
        self._series_mask[node_id] = False
        self._series_rows[node_id] = -1
        path = self._index.paths[node_id]
        del self.series[path]
        if path:
            bucket = self._series_buckets.get(path[0])
            if bucket is not None:
                bucket.pop(path, None)
        return series

    def _series_set(self, path: CategoryPath, series: NodeTimeSeries) -> None:
        self.series[path] = series
        if path:
            bucket = self._series_buckets.get(path[0])
            if bucket is None:
                bucket = {}
                self._series_buckets[path[0]] = bucket
            bucket[path] = series
        if self._series_mask is not None:
            node_id = self._index.path_to_id.get(path)
            if node_id is None:
                # A path outside this tree cannot be represented by the id
                # planner; fall back to the scalar walk from here on.
                self._delta_ok = False
            else:
                self._series_by_id[node_id] = series
                self._series_mask[node_id] = True
                self._series_rows[node_id] = series.forecaster.row
            self._hv_cache = None

    def _series_pop(self, path: CategoryPath) -> NodeTimeSeries:
        series = self.series.pop(path)
        if path:
            bucket = self._series_buckets.get(path[0])
            if bucket is not None:
                bucket.pop(path, None)
        if self._series_mask is not None:
            node_id = self._index.path_to_id.get(path)
            if node_id is not None:
                self._series_by_id[node_id] = None
                self._series_mask[node_id] = False
                self._series_rows[node_id] = -1
            self._hv_cache = None
        return series

    # ------------------------------------------------------------------
    # Heavy hitter adaptation (SPLIT / MERGE)
    # ------------------------------------------------------------------
    def _adapt(self, heavy: set[CategoryPath]) -> None:
        """Move the existing time series to the new heavy hitter positions."""
        # SPLIT phase, top-down: every new heavy hitter that lacks a series
        # derives one from its nearest ancestor that currently holds a series.
        # Ties at the same depth break lexicographically so that the cascade
        # order (and hence the split-rule arithmetic) is process-independent,
        # which checkpoint/restore across restarts relies on.
        new_paths = sorted((p for p in heavy if p not in self.series), key=lambda p: (len(p), p))
        for path in new_paths:
            if path in self.series:
                continue  # created by a previous cascade in this phase
            donor = self._nearest_series_ancestor(path)
            if donor is None:
                self._series_set(
                    path,
                    NodeTimeSeries(
                        self.config.window_units, self.config.forecast, bank=self.bank
                    ),
                )
                continue
            self._split_cascade(donor, path)

        # MERGE phase, bottom-up: series whose node is no longer heavy fold
        # into the nearest heavy ancestor (which now holds a series thanks to
        # the split phase), or are dropped when no ancestor is heavy.
        stale = sorted(
            (p for p in self.series if p not in heavy),
            key=lambda p: (len(p), p),
            reverse=True,
        )
        for path in stale:
            series = self._series_pop(path)
            target = self._nearest_heavy_ancestor(path, heavy)
            if target is None:
                self.merge_operations += 1
                series.release()
                continue
            self.merge_operations += 1
            existing = self.series.get(target)
            if existing is None:
                self._series_set(target, series)
            else:
                existing.merge_from(series)
                series.release()

    def _cached_view(self, path: CategoryPath) -> NodeUsageStats:
        view = self._view_cache.get(path)
        if view is None:
            view = self._stats.view(path, self._timeunit)
            self._view_cache[path] = view
        return view

    def _nearest_series_ancestor(self, path: CategoryPath) -> CategoryPath | None:
        """Closest strict ancestor of ``path`` currently holding a series."""
        for depth in range(len(path) - 1, -1, -1):
            candidate = path[:depth]
            if candidate in self.series:
                return candidate
        return None

    def _nearest_heavy_ancestor(
        self, path: CategoryPath, heavy: set[CategoryPath]
    ) -> CategoryPath | None:
        """Closest strict ancestor of ``path`` in the new heavy hitter set."""
        for depth in range(len(path) - 1, -1, -1):
            candidate = path[:depth]
            if candidate in heavy:
                return candidate
        return None

    def _split_cascade(self, donor: CategoryPath, target: CategoryPath) -> None:
        """Split the donor's series down the hierarchy until ``target`` has one.

        At each level the receiving child's share is the split rule's ratio
        among the donor's children that do not already hold a series (the
        paper's ``Cn``); the donor keeps the complementary share.  If the
        receiving child lies in the top ``h`` reference levels the biased
        share is immediately replaced using the reference series (§V-B5).
        """
        current = donor
        while current != target:
            child = target[: len(current) + 1]
            node = self.tree.node(current)
            receivers = [
                c.path for c in node.children.values() if c.path not in self.series
            ]
            if child not in receivers:
                receivers.append(child)
            ratios = self.split_rule.ratios(
                {p: self._cached_view(p) for p in receivers}
            )
            ratio = ratios.get(child, 1.0 / max(len(receivers), 1))
            parent_series = self.series[current]
            child_series = parent_series.scaled(ratio)
            self._series_set(current, parent_series.scaled(1.0 - ratio))
            self._series_set(child, child_series)
            parent_series.release()
            self.split_operations += 1
            self._apply_reference_correction(child)
            current = child

    # ------------------------------------------------------------------
    # Reference time series (§V-B5)
    # ------------------------------------------------------------------
    def _update_reference(self, raw, raw_vec) -> None:
        """Append the unmodified weight A_n for every reference-level node."""
        if not self._reference_nodes:
            return
        if raw_vec is not None:
            values = raw_vec[self._reference_ids]
        else:
            values = [float(raw.get(path, 0.0)) for path in self._reference_nodes]
        self._ref.append_column(self._reference_nodes, values)

    def _apply_reference_correction(self, path: CategoryPath) -> None:
        """Replace a freshly split series with reference − Σ heavy descendants."""
        corrected = self._ref.corrected_base(path)
        if corrected is None:
            return
        depth = len(path)
        # Only series under the same top-level label can be descendants; the
        # bucket preserves the tracking order of the full series dict, so the
        # per-descendant subtraction order (and hence the float arithmetic)
        # is exactly that of a full scan.
        bucket = self._series_buckets.get(path[0], {})
        if _np is not None:
            length = corrected.shape[0]
            for other_path, other_series in bucket.items():
                if len(other_path) <= depth or other_path[:depth] != path:
                    continue
                descendant = other_series.actual.ordered()
                m = descendant.shape[0]
                # Aligned on the newest element, clipped to the overlap.
                if m >= length:
                    corrected -= descendant[m - length :]
                elif m:
                    corrected[length - m :] -= descendant
            corrected_values = corrected
        else:
            corrected_list = corrected
            for other_path, other_series in bucket.items():
                if len(other_path) <= depth or other_path[:depth] != path:
                    continue
                descendant = list(other_series.actual)
                offset = len(corrected_list) - len(descendant)
                for i, value in enumerate(descendant):
                    index = offset + i
                    if 0 <= index < len(corrected_list):
                        corrected_list[index] -= value
            corrected_values = corrected_list
        series = self.series.get(path)
        if series is not None and len(corrected_values):
            series.replace_actual(corrected_values)

    # ------------------------------------------------------------------
    # Per-timeunit bookkeeping
    # ------------------------------------------------------------------
    def _append_weights(
        self,
        heavy_paths: list[CategoryPath],
        raw_vec,
        modified_vec,
        raw: "Mapping[CategoryPath, Weight] | None",
        modified_weights: "Mapping[CategoryPath, Weight] | None",
    ) -> tuple[list[float], list[float]]:
        """Append the Definition-2 modified weight to every heavy hitter series.

        All forecaster rows advance with one bank call; returns the parallel
        (actuals, forecasts) lists for the detection stage.
        """
        root_path = self.tree.root.path
        index = self._index
        rows: list[int] = []
        values: list[float] = []
        for path in heavy_paths:
            series = self.series.get(path)
            if series is None:
                series = NodeTimeSeries(
                    self.config.window_units, self.config.forecast, bank=self.bank
                )
                self._series_set(path, series)
            if index is not None:
                node_id = index.path_to_id[path]
                if path == root_path and modified_vec[0] <= 0.0:
                    # A tracked root with zero modified weight falls back to
                    # its raw weight (the scalar path's "not in
                    # modified_weights" case — zero entries are filtered).
                    value = float(raw_vec[0])
                else:
                    value = float(modified_vec[node_id])
            else:
                if path == root_path and path not in modified_weights:
                    value = raw.get(path, 0.0)
                else:
                    value = modified_weights.get(path, 0.0)
            rows.append(series.forecaster.row)
            values.append(float(value))
        forecasts = self.bank.observe_rows(rows, values)
        for path, value, predicted in zip(heavy_paths, values, forecasts):
            self.series[path].record(value, predicted)
        return values, forecasts

    def _update_stats(self, raw: Mapping[CategoryPath, Weight]) -> None:
        """Record raw weights for the split rules (kept for API compatibility)."""
        self._stats.update_dict(self._timeunit, raw)

    def _stats_view(self, path: CategoryPath) -> NodeUsageStats:
        """Statistics for ``path`` adjusted for timeunits it was silent in."""
        return self._stats.view(path, self._timeunit)

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def _detect(
        self,
        heavy: set[CategoryPath],
        heavy_paths: list[CategoryPath],
        actuals: list[float],
        forecasts: list[float],
    ) -> TimeunitResult:
        # Canonical (sorted) order so the anomaly sequence is identical across
        # processes regardless of hash randomization.
        anomalies = self.detector.check_many(
            heavy_paths, self._timeunit, actuals, forecasts, algorithm=self.name
        )
        return TimeunitResult(
            timeunit=self._timeunit,
            heavy_hitters=frozenset(heavy),
            actuals=dict(zip(heavy_paths, actuals)),
            forecasts=dict(zip(heavy_paths, forecasts)),
            anomalies=tuple(anomalies),
        )

    # ------------------------------------------------------------------
    # Introspection used by the evaluation harness
    # ------------------------------------------------------------------
    def series_for(self, path: CategoryPath) -> list[float]:
        """The adapted actual series currently held for ``path``."""
        series = self.series.get(tuple(path))
        return list(series.actual) if series is not None else []

    def memory_units(self) -> int:
        """Number of stored scalars (Table IV cost proxy): one tree + series."""
        tree_cost = self.tree.num_nodes
        series_cost = sum(len(s.actual) + len(s.forecast) for s in self.series.values())
        return tree_cost + series_cost + self._ref.total_len()

    @property
    def current_timeunit(self) -> TimeunitIndex:
        return self._timeunit

    @property
    def heavy_hitters(self) -> frozenset[CategoryPath]:
        return self.last_result.heavy_hitters if self.last_result else frozenset()

    def adaptation_stats(self) -> dict:
        """Delta-engine counters (not part of the checkpoint format).

        ``fastpath_units`` counts timeunits whose heavy set was unchanged
        (adaptation skipped entirely), ``planned_units`` those that went
        through the batched planner; ``adapt_seconds`` is the time spent in
        adaptation proper (plan + apply, or the scalar ``_adapt`` walk in
        legacy mode) — the denominator of the bench harness's
        ``--check-adapt-speedup`` gate.
        """
        return {
            "mode": "delta" if self.delta_adaptation_active else "legacy",
            "fastpath_units": self.fastpath_units,
            "planned_units": self.planned_units,
            "split_operations": self.split_operations,
            "merge_operations": self.merge_operations,
            "adapt_seconds": self.adapt_seconds,
        }

    # Pickling / deepcopy: the record pack caches references to the series'
    # fused base arrays, which NodeTimeSeries.__getstate__ drops — a
    # transported pack would write into detached copies while the ring
    # cursors advance.  Drop it; the next fused close rebuilds it.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_fused_pack"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of all mutable tracking state.

        Category paths (tuples of labels) become lists; dicts keyed by paths
        become ``[path, value]`` pairs so the snapshot survives JSON's
        string-only object keys.  This is the canonical per-path format that
        predates the columnar bank — bank-backed, scalar and sharded
        sessions all read and write it interchangeably.
        """
        stats_rows, last_rows = self._stats.emit()
        return {
            "timeunit": self._timeunit,
            "split_operations": self.split_operations,
            "merge_operations": self.merge_operations,
            "stage_seconds": dict(self.stage_seconds),
            "series": [
                [list(path), series.state_dict()]
                for path, series in self.series.items()
            ],
            "reference": self._ref.emit(),
            "stats": stats_rows,
            "stats_last_unit": last_rows,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict` (same tree/config)."""
        forecast_config = self.config.forecast
        self._timeunit = int(state["timeunit"])
        self.split_operations = int(state["split_operations"])
        self.merge_operations = int(state["merge_operations"])
        self.stage_seconds = {k: float(v) for k, v in state["stage_seconds"].items()}
        self.bank = ForecasterBank(forecast_config)
        self.series = {}
        self._series_buckets = {}
        self._delta_ok = True
        self._hv_cache = None
        self._id_view_cache = {}
        if self._series_mask is not None:
            self._series_by_id = [None] * self._index.num_nodes
            self._series_mask[:] = False
            self._series_rows[:] = -1
        for path, ts_state in state["series"]:
            self._series_set(
                tuple(path),
                NodeTimeSeries.from_state_dict(ts_state, forecast_config, bank=self.bank),
            )
        self._ref = _RefStore(self.config.window_units)
        self._ref.load(state["reference"])
        self._stats = _SplitStatsStore(self.config, self._index)
        self._stats.load(state["stats"], state["stats_last_unit"])
        self.last_result = None


def nearest_tracked_node(
    tree: HierarchyTree, path: CategoryPath, tracked: set[CategoryPath]
) -> HierarchyNode | None:
    """The deepest tracked node on the path from the root to ``path``.

    Used by the evaluation to map a ground-truth anomaly location to the heavy
    hitter that should report it (anomalies at untracked leaves surface at
    their nearest tracked ancestor).
    """
    best: HierarchyNode | None = None
    for depth in range(len(path) + 1):
        candidate = path[:depth]
        if candidate in tracked and candidate in tree:
            best = tree.node(candidate)
    return best
