"""Delta-driven adaptation planning: ADA's SPLIT/MERGE cascade on node ids.

The historical close path re-derives the whole SPLIT/MERGE cascade from
tuple-keyed dictionaries every timeunit: full scans of the series registry,
per-path ancestor walks over ``CategoryPath`` slices, and one dict of
:class:`~repro.core.split_rules.NodeUsageStats` views per cascade step.  This
module is the id-based twin shared by every execution path (serial sessions,
the columnar batch close and the sharded engine's subtree shards): given the
dense heavy mask of the new timeunit and the registry occupancy mask, it
*simulates* the exact cascade the scalar ``_adapt`` would run — same
``(depth, lex)`` order, same receiver sets, same split-rule arithmetic (the
rule's Python ``sum`` over the same views in the same order) — and emits the
whole adaptation as a flat op list:

* ``("fresh", node)`` — a brand-new series (no series-holding ancestor);
* ``("split", donor, child, ratio, correct)`` — one cascade step handing the
  ``ratio`` share of ``donor``'s series to ``child`` (``correct`` marks
  children in the reference levels whose biased share must be replaced);
* ``("fold", src, dst)`` / ``("move", src, dst)`` / ``("drop", src)`` — the
  MERGE phase, deepest-first.

The emitter never touches forecaster or window state, so planning is cheap
(integer sweeps over the delta, not the registry) and the application layer
is free to batch independent ops through the
:class:`~repro.forecasting.bank.ForecasterBank` array kernels
(``split_rows_many`` / ``merge_rows_many``) while preserving the cascade's
deterministic order — results stay bit-for-bit identical to the scalar walk
(property-checked in ``tests/core/test_adapt_planner.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.split_rules import NodeUsageStats, SplitRule

#: Op tags (tuple-based ops keep planning allocation-light).
FRESH = "fresh"
SPLIT = "split"
FOLD = "fold"
MOVE = "move"
DROP = "drop"


@dataclass
class AdaptationPlan:
    """One timeunit's adaptation as a flat op list in cascade order."""

    ops: list[tuple]
    num_splits: int
    num_merges: int

    def __bool__(self) -> bool:
        return bool(self.ops)


def plan_adaptation(
    index: Any,
    series_mask,
    heavy_mask,
    view_of: Callable[[int], NodeUsageStats],
    split_rule: SplitRule,
    has_reference: Callable[[int], bool],
    score_of: "Callable[[int], float] | None" = None,
) -> AdaptationPlan:
    """Simulate the scalar SPLIT/MERGE cascade on node ids and emit its ops.

    ``series_mask`` is the registry occupancy before adaptation (not
    mutated), ``heavy_mask`` the new heavy hitter membership (root bit
    already adjusted for ``track_root`` / ``allow_root_heavy``).  ``view_of``
    returns the (timeunit-frozen, memoized) split statistics view for a node
    id and ``has_reference`` whether a reference-series correction would
    apply at that node — both mirror exactly what the scalar cascade reads.
    ``score_of``, when given, is a per-id shortcut for the split rule's
    ``score(view)`` (only the field the rule reads, same arithmetic); the
    ratio normalization then runs inline with the exact Python ``sum`` /
    division of :meth:`~repro.core.split_rules.SplitRule.ratios`.  Without
    it (custom rules) the full view-based ``ratios`` call is used.
    """
    sim = series_mask.copy()
    ops: list[tuple] = []
    num_splits = 0
    num_merges = 0
    ancestors = index.ancestors
    depths = index.depths
    child_ids = index.child_ids
    parent = index.parent

    # SPLIT phase, top-down in (depth, lex) order — ties broken exactly like
    # the scalar ``sorted(key=lambda p: (len(p), p))``.
    new_mask = heavy_mask & ~sim
    new_ids = index.depth_lex_ids(new_mask) if new_mask.any() else []
    for target in new_ids:
        if sim[target]:
            continue  # created by a previous cascade in this phase
        donor = target
        while donor != 0:
            donor = int(parent[donor])
            if sim[donor]:
                break
        else:
            donor = None
        if donor is None:
            ops.append((FRESH, target))
            sim[target] = True
            continue
        current = donor
        target_depth = int(depths[target])
        for depth in range(int(depths[current]) + 1, target_depth + 1):
            child = int(ancestors[target, depth])
            receivers = []
            child_pos = -1
            for c in child_ids[current]:
                if not sim[c]:
                    if c == child:
                        child_pos = len(receivers)
                    receivers.append(c)
            if child_pos < 0:  # defensive mirror of the scalar walk
                child_pos = len(receivers)
                receivers.append(child)
            if score_of is not None:
                scores = [max(0.0, score_of(rid)) for rid in receivers]
                total = sum(scores)
                if total <= 0.0:
                    ratio = 1.0 / len(receivers)
                else:
                    ratio = scores[child_pos] / total
            else:
                ratios = split_rule.ratios(
                    {rid: view_of(rid) for rid in receivers}
                )
                ratio = ratios.get(child, 1.0 / max(len(receivers), 1))
            ops.append((SPLIT, current, child, ratio, has_reference(child)))
            num_splits += 1
            sim[child] = True
            current = child

    # MERGE phase, bottom-up: reversed (depth, lex) == the scalar
    # ``sorted(key=(len(p), p), reverse=True)``.
    stale_mask = sim & ~heavy_mask
    stale_ids = index.depth_lex_ids(stale_mask) if stale_mask.any() else []
    for src in reversed(stale_ids):
        sim[src] = False
        dst = src
        while dst != 0:
            dst = int(parent[dst])
            if heavy_mask[dst]:
                break
        else:
            dst = None
        num_merges += 1
        if dst is None:
            ops.append((DROP, src))
        elif sim[dst]:
            ops.append((FOLD, src, dst))
        else:
            ops.append((MOVE, src, dst))
            sim[dst] = True
    return AdaptationPlan(ops=ops, num_splits=num_splits, num_merges=num_merges)


def batched_split_runs(ops: Sequence[tuple]) -> list[list[int]]:
    """Group consecutive SPLIT op positions into independently applicable runs.

    A run may be applied with one batched bank call when its donors are
    pairwise distinct and no op in it depends on another's output: within one
    cascade the next step's donor is the previous step's child, and a
    reference-correction reads other series' windows, so a run breaks at any
    op whose donor or child was already touched by the run and at any op
    carrying a correction (the correction must observe all prior state
    exactly as the scalar cascade would).
    """
    runs: list[list[int]] = []
    run: list[int] = []
    touched: set[int] = set()
    for pos, op in enumerate(ops):
        if op[0] != SPLIT:
            if run:
                runs.append(run)
                run, touched = [], set()
            continue
        _, donor, child, _ratio, correct = op
        if run and (donor in touched or child in touched):
            runs.append(run)
            run, touched = [], set()
        run.append(pos)
        touched.add(donor)
        touched.add(child)
        if correct:
            # The correction must run before any later op reads windows.
            runs.append(run)
            run, touched = [], set()
    if run:
        runs.append(run)
    return runs


__all__ = [
    "AdaptationPlan",
    "plan_adaptation",
    "batched_split_runs",
    "FRESH",
    "SPLIT",
    "FOLD",
    "MOVE",
    "DROP",
]
