"""Configuration objects for the Tiresias detector.

The knobs mirror the paper's "System parameters" paragraph (Section VII):
heavy hitter threshold θ, sensitivity thresholds RT and DT, the timeunit size
Δ and window length ℓ, the split rule and number of reference levels h for
ADA, and the Holt-Winters smoothing parameters / seasonal periods.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ForecastConfig:
    """Parameters of the per-heavy-hitter forecasting model.

    ``season_lengths`` are in timeunits.  With more than one season the
    multi-seasonal Holt-Winters model is used and ``season_weights`` follows
    the paper's linear combination (``xi`` and ``1 - xi``).  An EWMA with rate
    ``fallback_alpha`` is used until a node has accumulated enough history to
    initialize the seasonal model.

    ``model`` selects the seasonal forecasting model by registry name
    (:func:`repro.core.registry.register_forecaster`).  The default ``"auto"``
    picks the built-in single- or multi-seasonal Holt-Winters model based on
    the number of seasonal periods.
    """

    alpha: float = 0.2
    beta: float = 0.02
    gamma: float = 0.2
    season_lengths: tuple[int, ...] = (96,)
    season_weights: tuple[float, ...] | None = None
    fallback_alpha: float = 0.3
    model: str = "auto"

    def __post_init__(self) -> None:
        for name, value in (("alpha", self.alpha), ("beta", self.beta), ("gamma", self.gamma)):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if not self.season_lengths:
            raise ConfigurationError("at least one seasonal period is required")
        if any(p < 1 for p in self.season_lengths):
            raise ConfigurationError("seasonal periods must be >= 1 timeunit")
        if self.season_weights is not None:
            if len(self.season_weights) != len(self.season_lengths):
                raise ConfigurationError("season_weights must match season_lengths")
            if abs(sum(self.season_weights) - 1.0) > 1e-9:
                raise ConfigurationError("season_weights must sum to 1")
        if not 0.0 < self.fallback_alpha <= 1.0:
            raise ConfigurationError("fallback_alpha must be in (0, 1]")
        if not self.model:
            raise ConfigurationError("model must be a non-empty registry name or 'auto'")

    def replace(self, **changes: Any) -> "ForecastConfig":
        """A copy with ``changes`` applied (and re-validated)."""
        return dataclasses.replace(self, **changes)

    #: Alias for :meth:`replace` (attrs-style name).
    evolve = replace

    @property
    def min_history(self) -> int:
        """History needed before the seasonal model can be initialized."""
        return 2 * max(self.season_lengths)

    def with_seasons(
        self, season_lengths: Sequence[int], season_weights: Sequence[float] | None = None
    ) -> "ForecastConfig":
        """A copy with different seasonal periods (e.g. from the analyzer)."""
        return replace(
            self,
            season_lengths=tuple(int(p) for p in season_lengths),
            season_weights=tuple(season_weights) if season_weights is not None else None,
        )


@dataclass(frozen=True)
class TiresiasConfig:
    """Full configuration of a Tiresias detector instance.

    Parameters
    ----------
    theta:
        Heavy hitter threshold θ (Definition 1/2).  The paper chooses a small
        value giving ~125 heavy hitters in busy CCD periods.
    ratio_threshold:
        RT in Definition 4 (the paper's sensitivity test picked 2.8).
    difference_threshold:
        DT in Definition 4 (the paper picked 8).
    delta_seconds:
        Timeunit size Δ (900 s = 15 minutes in the paper).
    window_units:
        ℓ, the number of timeunits in the sliding window (8,064 = 12 weeks of
        15-minute units in the paper; far smaller values are fine for tests).
    split_rule:
        Name of the ADA split rule: ``"uniform"``, ``"last-time-unit"``,
        ``"long-term-history"`` or ``"ewma"``.
    split_ewma_alpha:
        Smoothing rate when ``split_rule == "ewma"``.
    reference_levels:
        h, the number of top hierarchy levels that maintain reference time
        series (§V-B5).  0 disables reference series.
    forecast:
        Forecasting model parameters.
    track_root:
        Whether the root aggregate is always tracked (the paper adds/removes
        the root from SHHH purely by its weight; keeping it tracked gives the
        national aggregate a continuous forecast).
    allow_root_heavy:
        Whether the root may *qualify* as a succinct heavy hitter by its
        residual modified weight (Definition 2).  Root qualification affects
        no other node — children's modified weights are computed before the
        root in the bottom-up pass — so disabling it simply stops tracking
        the "scattered small categories" residual at the root.  Subtree
        sharding (:class:`~repro.engine.sharded.ShardedDetectionEngine`)
        requires ``False`` together with ``track_root=False``: the root is
        the only node whose state spans every depth-1 subtree, and excluding
        it makes shard detections exactly equal to a serial run on any
        workload.  Monitor the global aggregate with a separate root-only
        session if needed.
    out_of_order_policy:
        What to do with a record whose timeunit precedes the currently
        accumulating one (it arrived after its timeunit already closed):
        ``"raise"`` (default) rejects it with
        :class:`~repro.exceptions.OutOfOrderRecordError`, ``"drop"`` discards
        it silently, ``"clamp"`` counts it into the current timeunit (the
        seed's silent behaviour, now opt-in).
    min_heavy_depth:
        Nodes shallower than this depth never qualify as heavy hitters
        (the root is governed separately by ``track_root`` /
        ``allow_root_heavy``).  The default ``1`` is the paper's behaviour:
        every non-root node may qualify.  Raising it to ``k`` excludes the
        shared ancestor band above depth ``k`` from tracking, which is what
        makes depth-``k`` subtree sharding exact: a node at depth >= ``k``
        lives wholly inside one shard, so its weights — and therefore the
        detections — are bit-identical to a serial run.  Like the root
        exclusion, this only suppresses *qualification*; children's modified
        weights are computed bottom-up before their ancestors, so deeper
        nodes are unaffected.
    """

    theta: float = 10.0
    ratio_threshold: float = 2.8
    difference_threshold: float = 8.0
    delta_seconds: float = 900.0
    window_units: int = 8064
    split_rule: str = "long-term-history"
    split_ewma_alpha: float = 0.4
    reference_levels: int = 2
    forecast: ForecastConfig = field(default_factory=ForecastConfig)
    track_root: bool = True
    allow_root_heavy: bool = True
    out_of_order_policy: str = "raise"
    min_heavy_depth: int = 1

    def __post_init__(self) -> None:
        if self.theta <= 0:
            raise ConfigurationError(f"theta must be positive, got {self.theta}")
        if self.ratio_threshold < 1.0:
            raise ConfigurationError("ratio_threshold must be >= 1")
        if self.difference_threshold < 0:
            raise ConfigurationError("difference_threshold must be >= 0")
        if self.delta_seconds <= 0:
            raise ConfigurationError("delta_seconds must be positive")
        if self.window_units < 2:
            raise ConfigurationError("window_units must be at least 2")
        if self.split_rule not in SPLIT_RULE_NAMES:
            raise ConfigurationError(
                f"unknown split rule {self.split_rule!r}; expected one of "
                f"{sorted(SPLIT_RULE_NAMES)}"
            )
        if not 0.0 < self.split_ewma_alpha <= 1.0:
            raise ConfigurationError("split_ewma_alpha must be in (0, 1]")
        if self.reference_levels < 0:
            raise ConfigurationError("reference_levels must be >= 0")
        if self.out_of_order_policy not in OUT_OF_ORDER_POLICIES:
            raise ConfigurationError(
                f"unknown out_of_order_policy {self.out_of_order_policy!r}; "
                f"expected one of {sorted(OUT_OF_ORDER_POLICIES)}"
            )
        if self.min_heavy_depth < 1:
            raise ConfigurationError(
                f"min_heavy_depth must be >= 1, got {self.min_heavy_depth}"
            )
        if self.track_root and not self.allow_root_heavy:
            raise ConfigurationError(
                "track_root=True forces the root into the tracked set; "
                "combining it with allow_root_heavy=False is contradictory"
            )

    def replace(self, **changes: Any) -> "TiresiasConfig":
        """A copy with ``changes`` applied (and re-validated).

        This is the general form of the field-by-field copies the seed needed
        (e.g. :func:`~repro.core.pipeline.derive_seasonal_config`)::

            seasonal = config.replace(forecast=config.forecast.with_seasons([96]))
        """
        return dataclasses.replace(self, **changes)

    #: Alias for :meth:`replace` (attrs-style name).
    evolve = replace

    @property
    def history_units(self) -> int:
        """Number of history timeunits (everything except the detection unit)."""
        return self.window_units - 1


#: Valid values for :attr:`TiresiasConfig.split_rule`.
SPLIT_RULE_NAMES: frozenset[str] = frozenset(
    {"uniform", "last-time-unit", "long-term-history", "ewma"}
)

#: Valid values for :attr:`TiresiasConfig.out_of_order_policy`.
OUT_OF_ORDER_POLICIES: frozenset[str] = frozenset({"raise", "drop", "clamp"})
