"""Time-series based anomaly detection (Definition 4).

An anomalous event occurs at a heavy hitter ``n`` in the latest timeunit iff
both the relative and the absolute deviation of the actual value from the
forecast exceed their thresholds::

    T[n, 1] / F[n, 1] > RT   and   T[n, 1] - F[n, 1] > DT

Using both conditions suppresses false detections at daily peaks (where a
small relative error is a large absolute count) and at daily dips (where a
tiny absolute excess is a large ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro._types import CategoryPath, TimeunitIndex
from repro._vector import load_numpy
from repro.core.config import TiresiasConfig

_np = load_numpy()


@dataclass(frozen=True)
class Anomaly:
    """One detected anomalous event.

    Attributes
    ----------
    node_path:
        Path of the heavy hitter node where the anomaly was located.
    timeunit:
        Index of the detection timeunit.
    actual:
        Observed (modified) weight ``T[n, 1]``.
    forecast:
        Forecast ``F[n, 1]``.
    depth:
        Depth of the node in the hierarchy (0 = root), used by the evaluation
        to report where anomalies are localized (Table VI discussion).
    metadata:
        Free-form extra attributes (dataset name, wall-clock timestamp, ...).
    """

    node_path: CategoryPath
    timeunit: TimeunitIndex
    actual: float
    forecast: float
    depth: int = 0
    metadata: Mapping[str, Any] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Relative deviation ``T / F`` (``inf`` when the forecast is zero)."""
        if self.forecast <= 0:
            return float("inf") if self.actual > 0 else 0.0
        return self.actual / self.forecast

    @property
    def excess(self) -> float:
        """Absolute deviation ``T - F``."""
        return self.actual - self.forecast

    def to_dict(self) -> dict[str, Any]:
        return {
            "node_path": list(self.node_path),
            "timeunit": self.timeunit,
            "actual": self.actual,
            "forecast": self.forecast,
            "depth": self.depth,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Anomaly":
        """Inverse of :meth:`to_dict` (used by the JSONL store and checkpoints)."""
        return cls(
            node_path=tuple(data["node_path"]),
            timeunit=int(data["timeunit"]),
            actual=float(data["actual"]),
            forecast=float(data["forecast"]),
            depth=int(data.get("depth", len(data["node_path"]))),
            metadata=data.get("metadata", {}),
        )


class ThresholdDetector:
    """Applies the paper's dual-threshold rule to (actual, forecast) pairs.

    Parameters
    ----------
    config:
        Provides ``ratio_threshold`` (RT) and ``difference_threshold`` (DT).
    minimum_forecast:
        Floor applied to the forecast before taking the ratio, so that a node
        whose forecast is (near) zero does not alarm on a single stray record;
        the absolute threshold DT remains the binding condition there.
    """

    def __init__(self, config: TiresiasConfig, minimum_forecast: float = 0.5):
        self.config = config
        self.minimum_forecast = minimum_forecast

    def is_anomalous(self, actual: float, forecast: float) -> bool:
        """Check Definition 4 for a single (actual, forecast) pair."""
        floored = max(forecast, self.minimum_forecast)
        ratio_exceeded = actual / floored > self.config.ratio_threshold
        excess_exceeded = (actual - forecast) > self.config.difference_threshold
        return ratio_exceeded and excess_exceeded

    def check(
        self,
        node_path: CategoryPath,
        timeunit: TimeunitIndex,
        actual: float,
        forecast: float,
        depth: int = 0,
        **metadata: Any,
    ) -> Anomaly | None:
        """Return an :class:`Anomaly` when the pair violates the thresholds."""
        if not self.is_anomalous(actual, forecast):
            return None
        return Anomaly(
            node_path=tuple(node_path),
            timeunit=timeunit,
            actual=float(actual),
            forecast=float(forecast),
            depth=depth,
            metadata=metadata,
        )

    def check_many(
        self,
        node_paths: Sequence[CategoryPath],
        timeunit: TimeunitIndex,
        actuals: Sequence[float],
        forecasts: Sequence[float],
        **metadata: Any,
    ) -> list[Anomaly]:
        """Batch dual-threshold evaluation over parallel (actual, forecast) arrays.

        One vectorized comparison replaces the per-node :meth:`check` loop of
        the close path; anomalies come back in input order (callers pass the
        canonical sorted heavy-hitter order).  Each node's depth is its path
        length, as in the per-node calls of the online algorithms.  Results
        are bit-for-bit those of :meth:`check` — the same float64 expressions
        evaluated element-wise.
        """
        if _np is None or len(node_paths) < 2:
            anomalies = []
            for path, actual, forecast in zip(node_paths, actuals, forecasts):
                anomaly = self.check(
                    path, timeunit, actual, forecast, depth=len(path), **metadata
                )
                if anomaly is not None:
                    anomalies.append(anomaly)
            return anomalies
        actual_arr = _np.asarray(actuals, dtype=_np.float64)
        forecast_arr = _np.asarray(forecasts, dtype=_np.float64)
        floored = _np.maximum(forecast_arr, self.minimum_forecast)
        flagged = (actual_arr / floored > self.config.ratio_threshold) & (
            (actual_arr - forecast_arr) > self.config.difference_threshold
        )
        return [
            Anomaly(
                node_path=tuple(node_paths[i]),
                timeunit=timeunit,
                actual=float(actual_arr[i]),
                forecast=float(forecast_arr[i]),
                depth=len(node_paths[i]),
                metadata=dict(metadata),
            )
            for i in _np.flatnonzero(flagged).tolist()
        ]
