"""Fused close path: one pass over the cached heavy-hitter arrays.

On a *stable* timeunit (no adaptation planned) ADA's delta close already
reuses the cached lex-ordered ``(ids, rows, series_list)`` arrays from the
previous unit.  This module supplies the remaining pieces that let the whole
close — hierarchy weight aggregation, forecaster observe, window record,
split-statistics update, detection — run as array kernels with no per-node
Python loop on the hot path:

* :func:`build_record_pack` / :func:`record_fused` push the per-series
  ``(value, forecast)`` pairs of a close into every ring buffer with one
  compiled call (falling back to the per-series :meth:`NodeTimeSeries.record`
  loop whenever a series is not ring-backed or the windows are misaligned);
* :class:`CloseHistogram` tracks per-timeunit close latencies for
  ``--profile-close`` and the service's ``/metrics`` endpoint.

Everything here is an *execution strategy*, not an algorithm change: the
fused path is bit-identical to the staged path (golden traces + the
hypothesis churn suite enforce it), and setting ``REPRO_DISABLE_FUSED=1``
restores the staged path wholesale.

Record-pack invariant: a pack is rebuilt whenever the cached ``series_list``
object changes identity.  Structural series mutations (split/merge/replace)
only happen on planned units, which rebuild the heavy-hitter cache and hence
the list object — so within one stable epoch the pack's base-array
references stay valid.  Ring offsets are *not* cached: they are re-read from
the rings on every close and written back after the kernel.
"""

from __future__ import annotations

import os
from bisect import bisect_left

from repro._vector import load_numpy

_np = load_numpy()

#: Setting this to a non-empty value disables the fused close path (and the
#: dense columnar ingest that feeds it); ADA then runs the staged close.
FUSED_DISABLE_ENV = "REPRO_DISABLE_FUSED"


def fused_enabled() -> bool:
    """Whether the fused close path may be used (env gate, checked at init)."""
    return not os.environ.get(FUSED_DISABLE_ENV)


# ----------------------------------------------------------------------
# Close-time histogram (--profile-close / service metrics)
# ----------------------------------------------------------------------

#: Log-spaced bucket upper bounds in seconds; the last bucket is open-ended.
CLOSE_BUCKET_UPPERS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
)


class CloseHistogram:
    """Histogram of per-timeunit close wall times (cheap: one bisect each)."""

    __slots__ = ("counts", "count", "total_seconds", "max_seconds")

    def __init__(self) -> None:
        self.counts = [0] * (len(CLOSE_BUCKET_UPPERS) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(CLOSE_BUCKET_UPPERS, seconds)] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def to_dict(self) -> dict:
        return {
            "bucket_upper_seconds": list(CLOSE_BUCKET_UPPERS),
            "counts": list(self.counts),
            "count": self.count,
            "total_seconds": self.total_seconds,
            "max_seconds": self.max_seconds,
        }


# ----------------------------------------------------------------------
# Record pack: compiled ring-buffer append for a whole heavy-hitter set
# ----------------------------------------------------------------------


class RecordPack:
    """Per-epoch view of a cached ``series_list`` for the compiled recorder.

    ``ok`` is False when any series lacks fused ``(2, maxlen)`` base storage
    (pure-Python rings, foreign restores); callers then keep the per-series
    ``record`` loop.  See the module docstring for the rebuild invariant.
    """

    __slots__ = ("series_list", "bases", "rings", "maxlens", "ok")

    def __init__(self, series_list) -> None:
        self.series_list = series_list
        bases = []
        rings = []
        ok = _np is not None
        if ok:
            for series in series_list:
                base = series._base
                if base is None:
                    ok = False
                    break
                bases.append(base)
                rings.append((series.actual, series.forecast))
        self.ok = ok
        if ok:
            self.bases = bases
            self.rings = rings
            self.maxlens = _np.fromiter(
                (a.maxlen for a, _ in rings), dtype=_np.int64, count=len(rings)
            )
        else:
            self.bases = []
            self.rings = []
            self.maxlens = None


def build_record_pack(series_list) -> RecordPack:
    """A :class:`RecordPack` over the current cached heavy-hitter series."""
    return RecordPack(series_list)


def record_fused(pack: RecordPack, kernels, values_vec, forecasts_vec) -> bool:
    """Record one close's (value, forecast) pairs through the compiled kernel.

    Returns True when the kernel handled every series; False means the caller
    must run the per-series ``record`` loop (no kernels, non-ring series, or
    misaligned actual/forecast windows — the same guard ``record`` applies
    per series).  Offsets are read fresh from the rings and written back, so
    any out-of-band ring mutation is picked up rather than clobbered.
    """
    if kernels is None or not pack.ok:
        return False
    np_ = _np
    rings = pack.rings
    start_list = [a._start for a, _ in rings]
    size_list = [a._size for a, _ in rings]
    if start_list != [f._start for _, f in rings] or size_list != [
        f._size for _, f in rings
    ]:
        return False
    starts = np_.array(start_list, dtype=np_.int64)
    sizes = np_.array(size_list, dtype=np_.int64)
    kernels.fused_record(
        pack.bases, starts, sizes, pack.maxlens, values_vec, forecasts_vec
    )
    for (actual, forecast), start, size in zip(
        rings, starts.tolist(), sizes.tolist()
    ):
        actual._start = start
        actual._size = size
        forecast._start = start
        forecast._size = size
    return True


__all__ = [
    "CLOSE_BUCKET_UPPERS",
    "CloseHistogram",
    "FUSED_DISABLE_ENV",
    "RecordPack",
    "build_record_pack",
    "fused_enabled",
    "record_fused",
]
