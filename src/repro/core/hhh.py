"""Hierarchical heavy hitters: Definitions 1 and 2 of the paper.

Given per-leaf counts for one timeunit, this module computes

* the node weights ``A_n`` (each node's weight is the sum of its children's,
  leaves carry the raw counts),
* the plain hierarchical heavy hitter set ``HHH[θ] = {n : A_n >= θ}``
  (Definition 1), and
* the *succinct* hierarchical heavy hitter set and modified weights ``W_n``
  (Definition 2), where an interior node only counts the weight of children
  that are not themselves heavy hitters.

These functions are the offline reference implementation.  STA applies them to
every timeunit; ADA reproduces the same result incrementally and the property
tests in ``tests/core`` check both against this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro._types import CategoryPath, Weight
from repro.hierarchy.node import HierarchyNode
from repro.hierarchy.tree import HierarchyTree


@dataclass(frozen=True)
class HeavyHitterResult:
    """Result of a succinct heavy hitter computation for one timeunit.

    Attributes
    ----------
    raw_weights:
        ``A_n`` for every node with non-zero weight, keyed by node path.
    modified_weights:
        ``W_n`` (Definition 2) for every node with non-zero modified weight.
    shhh:
        Paths of the nodes in the succinct heavy hitter set.
    theta:
        The threshold the result was computed for.
    """

    raw_weights: dict[CategoryPath, Weight]
    modified_weights: dict[CategoryPath, Weight]
    shhh: frozenset[CategoryPath]
    theta: float

    def is_heavy(self, path: CategoryPath) -> bool:
        return tuple(path) in self.shhh


def accumulate_raw_weights(
    tree: HierarchyTree, leaf_counts: Mapping[CategoryPath, Weight]
) -> dict[CategoryPath, Weight]:
    """Compute ``A_n`` for every node of ``tree`` from per-leaf counts.

    Unknown leaf paths are ignored (they belong to records filtered out of the
    hierarchy, e.g. non-performance-related calls); counts attached to
    interior paths are treated as belonging to that aggregate directly, which
    supports datasets where some records are only classified to an interior
    category.
    """
    weights: dict[CategoryPath, Weight] = {}
    for path, count in leaf_counts.items():
        if count == 0:
            continue
        path = tuple(path)
        if path not in tree:
            continue
        node = tree.node(path)
        weights[node.path] = weights.get(node.path, 0.0) + float(count)
        for ancestor in node.ancestors():
            weights[ancestor.path] = weights.get(ancestor.path, 0.0) + float(count)
    return weights


def compute_hhh(
    tree: HierarchyTree, leaf_counts: Mapping[CategoryPath, Weight], theta: float
) -> set[CategoryPath]:
    """Definition 1: nodes whose aggregated weight ``A_n`` reaches ``theta``."""
    raw = accumulate_raw_weights(tree, leaf_counts)
    return {path for path, weight in raw.items() if weight >= theta}


def compute_shhh(
    tree: HierarchyTree,
    leaf_counts: Mapping[CategoryPath, Weight],
    theta: float,
    raw: dict[CategoryPath, Weight] | None = None,
) -> HeavyHitterResult:
    """Definition 2: succinct hierarchical heavy hitters and modified weights.

    ``raw`` may be passed when the caller has already aggregated the leaf
    counts with :func:`accumulate_raw_weights` (the online algorithms need the
    raw weights anyway), avoiding a second aggregation pass.

    A single bottom-up pass over the *active* nodes (those with non-zero
    aggregated weight) yields the unique fixed point: each node's modified
    weight sums only the modified weights of children that are not themselves
    succinct heavy hitters; a node joins the set when its modified weight
    reaches ``theta``.  Inactive nodes have zero weight, contribute nothing to
    their parents and can never be heavy, so they are skipped entirely --
    operational data is sparse (Fig. 1) and this keeps the per-timeunit cost
    proportional to the data, not to the hierarchy size.
    """
    if raw is None:
        raw = accumulate_raw_weights(tree, leaf_counts)
    modified: dict[CategoryPath, Weight] = {}
    shhh: set[CategoryPath] = set()

    children_of: dict[CategoryPath, list[CategoryPath]] = {}
    for path in raw:
        if path:
            children_of.setdefault(path[:-1], []).append(path)

    for path in sorted(raw, key=len, reverse=True):
        active_children = children_of.get(path, [])
        # Counts attached directly to an interior aggregate (rare but
        # supported) contribute to that aggregate's own weight.
        own = raw[path] - sum(raw[child] for child in active_children)
        weight = own + sum(
            modified[child] for child in active_children if child not in shhh
        )
        if weight > 0:
            modified[path] = weight
        else:
            modified[path] = 0.0
        if weight >= theta:
            shhh.add(path)

    # Drop zero entries to keep the result sparse (parity with raw_weights).
    modified = {path: weight for path, weight in modified.items() if weight > 0}
    return HeavyHitterResult(
        raw_weights=raw,
        modified_weights=modified,
        shhh=frozenset(shhh),
        theta=theta,
    )


def discounted_series(
    raw_series: Mapping[CategoryPath, list[float]],
    node: HierarchyNode,
    heavy_hitters: frozenset[CategoryPath],
    length: int,
) -> list[float]:
    """Definition 3: a node's time series after discounting heavy hitter children.

    ``raw_series`` maps node paths to their raw per-timeunit series ``A_n``;
    the returned series subtracts, per timeunit, the raw series of children of
    ``node`` that are themselves heavy hitters.
    """
    base = list(raw_series.get(node.path, [0.0] * length))
    if len(base) < length:
        base = [0.0] * (length - len(base)) + base
    for child in node.children.values():
        if child.path in heavy_hitters:
            child_series = raw_series.get(child.path)
            if not child_series:
                continue
            padded = list(child_series)
            if len(padded) < length:
                padded = [0.0] * (length - len(padded)) + padded
            base = [b - c for b, c in zip(base, padded)]
    return base
