"""The end-to-end Tiresias system (Fig. 3, Steps 1-6).

:class:`Tiresias` is the backward-compatible single-hierarchy facade over the
engine layer: it wraps exactly one
:class:`~repro.engine.session.DetectionSession` and re-exports its interface,
so existing call sites keep working while new code composes sessions inside a
:class:`~repro.engine.engine.DetectionEngine`.

The pipeline stages remain the paper's:

1. records are classified into timeunits (Step 1, :mod:`repro.streaming`);
2. heavy hitters are detected and their time series maintained (Step 2, the
   tracking algorithm resolved by name through :mod:`repro.core.registry` —
   ``"ada"`` or ``"sta"`` built in);
3. seasonality analysis parameterizes the forecasting model (Step 3,
   :func:`derive_seasonal_config`, run offline as in the paper);
4. Holt-Winters forecasts feed the dual-threshold detector (Step 4,
   Definition 4);
5. anomalies are appended to the report store and pushed to subscribed
   observers (Step 5, :class:`~repro.core.reporting.AnomalyReportStore`,
   :mod:`repro.engine.hooks`);
6. the pipeline keeps consuming new arrivals (Step 6).

Vectorized close path (Fig. 3 Steps 2-4, columnar)
--------------------------------------------------
With NumPy present, each per-timeunit close runs Steps 2-4 columnar rather
than per node, with bit-identical detections:

* **Step 2** — heavy hitter membership and modified weights come from the
  dense level-sweep kernels of :class:`~repro.hierarchy.index.HierarchyIndex`
  (exact, because per-timeunit weights are integer record counts), and the
  per-node series adapt through :class:`~repro.core.timeseries.FloatRing`
  window buffers (SPLIT scaling / MERGE addition as single array
  expressions);
* **Step 3/4 forecasting** — the level/trend/seasonal state of *every*
  tracked node lives in one
  :class:`~repro.forecasting.bank.ForecasterBank`, and the whole tracked set
  advances with one :meth:`~repro.forecasting.bank.ForecasterBank.observe_rows`
  call per timeunit instead of N scalar model updates;
* **Step 4 detection** — the dual-threshold rule evaluates all
  (actual, forecast) pairs at once through
  :meth:`~repro.core.detector.ThresholdDetector.check_many`.

Without NumPy (or with ``REPRO_DISABLE_NUMPY=1``) every stage falls back to
the scalar implementations; forecasts, anomalies and checkpoints are
identical either way, and checkpoints keep the canonical per-path format, so
bank-backed, scalar, serial and sharded sessions all cross-restore.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro._types import CategoryPath, TimeunitIndex, Weight
from repro.core.config import TiresiasConfig
from repro.core.detector import Anomaly
from repro.core.reporting import AnomalyReportStore
from repro.core.results import TimeunitResult
from repro.engine.hooks import EngineObserver
from repro.engine.session import DetectionSession
from repro.hierarchy.tree import HierarchyTree
from repro.seasonality.analyzer import SeasonalityAnalyzer
from repro.streaming.batch import RecordBatch
from repro.streaming.clock import SimulationClock
from repro.streaming.record import OperationalRecord

#: Historical alias kept for import compatibility; any registered algorithm
#: name (:func:`repro.core.registry.available_algorithms`) is accepted.
AlgorithmName = str


def derive_seasonal_config(
    series: Sequence[float],
    config: TiresiasConfig,
    max_seasons: int = 2,
) -> TiresiasConfig:
    """Step 3: set the forecasting seasons from an offline seasonality analysis.

    ``series`` is a per-timeunit count series (typically the root aggregate of
    a historical trace).  The FFT + wavelet analyzer picks the significant
    periods and their combination weights; the returned config carries them in
    its :class:`~repro.core.config.ForecastConfig`.
    """
    analyzer = SeasonalityAnalyzer(
        timeunit_seconds=config.delta_seconds, max_seasons=max_seasons
    )
    profile = analyzer.analyze(series)
    forecast = config.forecast.with_seasons(profile.periods_timeunits, profile.weights)
    return config.replace(forecast=forecast)


class Tiresias:
    """Online anomaly detector over one hierarchical domain (facade).

    Thin wrapper around a single :class:`~repro.engine.session.DetectionSession`
    kept for backward compatibility; the session is exposed as
    :attr:`session` for code migrating to the engine API.

    Parameters
    ----------
    tree:
        The hierarchical domain the record categories are drawn from.
    config:
        Detector configuration (θ, RT/DT, Δ, ℓ, split rule, ...).
    algorithm:
        Registry name of the tracking algorithm: ``"ada"`` (the paper's
        adaptive algorithm, default), ``"sta"`` (the strawman used as ground
        truth in the evaluation), or any name registered with
        :func:`repro.core.registry.register_algorithm`.
    clock:
        Simulation clock; defaults to one with Δ from the config and epoch 0.
    warmup_units:
        Number of initial timeunits during which anomalies are suppressed
        while the forecasting models accumulate history.  Defaults to the
        forecasting model's minimum history.
    """

    def __init__(
        self,
        tree: HierarchyTree,
        config: TiresiasConfig,
        algorithm: str = "ada",
        clock: SimulationClock | None = None,
        warmup_units: int | None = None,
    ):
        self.session = DetectionSession(
            tree,
            config,
            algorithm=algorithm,
            clock=clock,
            warmup_units=warmup_units,
            name="tiresias",
        )

    # ------------------------------------------------------------------
    # Online ingestion (delegated)
    # ------------------------------------------------------------------
    def process_stream(
        self, records: Iterable[OperationalRecord]
    ) -> list[TimeunitResult]:
        """Consume a time-ordered record stream; returns per-timeunit results."""
        return self.session.process_stream(records)

    def ingest_record(self, record: OperationalRecord) -> list[TimeunitResult]:
        """Add one record; returns results for any timeunits that closed."""
        return self.session.ingest_record(record)

    def ingest_batch(
        self, records: Iterable[OperationalRecord]
    ) -> list[TimeunitResult]:
        """Add a batch of records; returns results of timeunits that closed."""
        return self.session.ingest_batch(records)

    def ingest_record_batch(self, batch: RecordBatch) -> list[TimeunitResult]:
        """Add a columnar batch; returns results of timeunits that closed."""
        return self.session.ingest_record_batch(batch)

    def process_batches(self, batches: Iterable[RecordBatch]) -> list[TimeunitResult]:
        """Consume a stream of columnar batches, then flush."""
        return self.session.process_batches(batches)

    def process_stream_sharded(
        self,
        records: Iterable[OperationalRecord],
        num_workers: int = 2,
        subtree_shards: "int | None" = None,
        batch_size: int = 8192,
        start_method: "str | None" = None,
    ) -> list[TimeunitResult]:
        """Consume a stream across ``num_workers`` processes, then flush.

        The detector's hierarchy is partitioned into ``subtree_shards``
        disjoint depth-1 subtree groups (defaults to ``num_workers``;
        requires ``config.track_root=False`` and ``allow_root_heavy=False``
        when > 1), the current session
        state is split across worker processes, and the merged state is
        loaded back afterwards — results, reports and all subsequent
        detections are bit-identical to :meth:`process_stream`.  Observers
        subscribed to the session fire during the run with a
        :class:`~repro.engine.sharded.ShardedSessionHandle` as the session
        argument and remain subscribed afterwards.
        """
        from repro.engine.sharded import ShardedDetectionEngine
        from repro.streaming.batch import iter_record_batches

        shards = num_workers if subtree_shards is None else subtree_shards
        observers = list(self.session._observers)
        with ShardedDetectionEngine(
            num_workers=num_workers, start_method=start_method
        ) as engine:
            engine.attach_session_state(
                self.session.state_dict(), subtree_shards=shards
            )
            for observer in observers:
                engine.subscribe(observer)
            results = engine.process_batches(
                iter_record_batches(records, batch_size)
            )[self.session.name]
            merged_state = engine.merged_session_state(self.session.name)
        self.session = DetectionSession.from_state_dict(merged_state)
        for observer in observers:
            self.session.subscribe(observer)
        return results

    def flush(self) -> list[TimeunitResult]:
        """Close the currently accumulating timeunit (end of stream)."""
        return self.session.flush()

    def process_timeunit_counts(
        self, counts: dict[CategoryPath, Weight], timeunit: TimeunitIndex | None = None
    ) -> TimeunitResult:
        """Process one timeunit worth of per-leaf counts."""
        return self.session.process_timeunit_counts(counts, timeunit)

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def subscribe(self, observer: EngineObserver) -> EngineObserver:
        """Attach a lifecycle observer (see :mod:`repro.engine.hooks`)."""
        return self.session.subscribe(observer)

    def unsubscribe(self, observer: EngineObserver) -> None:
        self.session.unsubscribe(observer)

    # ------------------------------------------------------------------
    # Introspection (delegated)
    # ------------------------------------------------------------------
    @property
    def tree(self) -> HierarchyTree:
        return self.session.tree

    @property
    def config(self) -> TiresiasConfig:
        return self.session.config

    @property
    def clock(self) -> SimulationClock:
        return self.session.clock

    @property
    def algorithm(self) -> Any:
        """The underlying tracking-algorithm instance."""
        return self.session.algorithm

    @property
    def algorithm_name(self) -> str:
        return self.session.algorithm_name

    @property
    def warmup_units(self) -> int:
        return self.session.warmup_units

    @property
    def reports(self) -> AnomalyReportStore:
        return self.session.reports

    @property
    def results(self) -> list[TimeunitResult]:
        return self.session.results

    @property
    def reading_seconds(self) -> float:
        return self.session.reading_seconds

    @property
    def units_processed(self) -> int:
        return self.session.units_processed

    @property
    def anomalies(self) -> list[Anomaly]:
        """All anomalies reported so far (after warm-up)."""
        return self.session.anomalies

    def stage_seconds(self) -> dict[str, float]:
        """Per-stage running time, including trace reading (Table III stages)."""
        return self.session.stage_seconds()

    def memory_units(self) -> int:
        """The algorithm's memory cost proxy (Table IV)."""
        return self.session.memory_units()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def save_checkpoint(self, path: Any) -> None:
        """Persist the detector state as a JSON checkpoint file."""
        self.session.save_checkpoint(path)

    @classmethod
    def load_checkpoint(cls, path: Any) -> "Tiresias":
        """Restore a detector from a file written by :meth:`save_checkpoint`."""
        session = DetectionSession.load_checkpoint(path)
        facade = cls.__new__(cls)
        facade.session = session
        return facade

    @classmethod
    def from_session(cls, session: DetectionSession) -> "Tiresias":
        """Wrap an existing session in the facade interface."""
        facade = cls.__new__(cls)
        facade.session = session
        return facade

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Tiresias(algorithm={self.algorithm_name!r}, "
            f"units_processed={self.units_processed})"
        )

