"""The end-to-end Tiresias system (Fig. 3, Steps 1-6).

:class:`Tiresias` wires together the substrates:

1. records are classified into timeunits (Step 1, :mod:`repro.streaming`);
2. heavy hitters are detected and their time series maintained (Step 2,
   :class:`~repro.core.ada.ADAAlgorithm` or
   :class:`~repro.core.sta.STAAlgorithm`);
3. seasonality analysis parameterizes the forecasting model (Step 3,
   :func:`derive_seasonal_config`, run offline as in the paper);
4. Holt-Winters forecasts feed the dual-threshold detector (Step 4,
   Definition 4);
5. anomalies are appended to the report store (Step 5,
   :class:`~repro.core.reporting.AnomalyReportStore`);
6. the pipeline keeps consuming new arrivals (Step 6).
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Iterable, Literal, Sequence

from repro._types import CategoryPath, TimeunitIndex, Weight
from repro.core.ada import ADAAlgorithm
from repro.core.config import TiresiasConfig
from repro.core.reporting import AnomalyReportStore
from repro.core.results import TimeunitResult
from repro.core.sta import STAAlgorithm
from repro.exceptions import ConfigurationError
from repro.hierarchy.tree import HierarchyTree
from repro.seasonality.analyzer import SeasonalityAnalyzer
from repro.streaming.clock import SimulationClock
from repro.streaming.record import OperationalRecord

AlgorithmName = Literal["ada", "sta"]


def derive_seasonal_config(
    series: Sequence[float],
    config: TiresiasConfig,
    max_seasons: int = 2,
) -> TiresiasConfig:
    """Step 3: set the forecasting seasons from an offline seasonality analysis.

    ``series`` is a per-timeunit count series (typically the root aggregate of
    a historical trace).  The FFT + wavelet analyzer picks the significant
    periods and their combination weights; the returned config carries them in
    its :class:`~repro.core.config.ForecastConfig`.
    """
    analyzer = SeasonalityAnalyzer(
        timeunit_seconds=config.delta_seconds, max_seasons=max_seasons
    )
    profile = analyzer.analyze(series)
    forecast = config.forecast.with_seasons(profile.periods_timeunits, profile.weights)
    return TiresiasConfig(
        theta=config.theta,
        ratio_threshold=config.ratio_threshold,
        difference_threshold=config.difference_threshold,
        delta_seconds=config.delta_seconds,
        window_units=config.window_units,
        split_rule=config.split_rule,
        split_ewma_alpha=config.split_ewma_alpha,
        reference_levels=config.reference_levels,
        forecast=forecast,
        track_root=config.track_root,
    )


class Tiresias:
    """Online anomaly detector over hierarchical operational data.

    Parameters
    ----------
    tree:
        The hierarchical domain the record categories are drawn from.
    config:
        Detector configuration (θ, RT/DT, Δ, ℓ, split rule, ...).
    algorithm:
        ``"ada"`` (the paper's adaptive algorithm, default) or ``"sta"`` (the
        strawman used as ground truth in the evaluation).
    clock:
        Simulation clock; defaults to one with Δ from the config and epoch 0.
    warmup_units:
        Number of initial timeunits during which anomalies are suppressed
        while the forecasting models accumulate history.  Defaults to the
        forecasting model's minimum history.
    """

    def __init__(
        self,
        tree: HierarchyTree,
        config: TiresiasConfig,
        algorithm: AlgorithmName = "ada",
        clock: SimulationClock | None = None,
        warmup_units: int | None = None,
    ):
        self.tree = tree
        self.config = config
        self.clock = clock or SimulationClock(delta=config.delta_seconds)
        if abs(self.clock.delta - config.delta_seconds) > 1e-9:
            raise ConfigurationError(
                "the clock's timeunit width must match config.delta_seconds"
            )
        if algorithm == "ada":
            self.algorithm: ADAAlgorithm | STAAlgorithm = ADAAlgorithm(tree, config)
        elif algorithm == "sta":
            self.algorithm = STAAlgorithm(tree, config)
        else:
            raise ConfigurationError(f"unknown algorithm {algorithm!r}")
        self.algorithm_name = algorithm
        self.warmup_units = (
            config.forecast.min_history if warmup_units is None else warmup_units
        )
        if self.warmup_units < 0:
            raise ConfigurationError("warmup_units must be >= 0")
        self.reports = AnomalyReportStore()
        self.results: list[TimeunitResult] = []
        self._units_processed = 0
        self._pending: Counter = Counter()
        self._pending_unit: TimeunitIndex | None = None
        self.reading_seconds = 0.0

    # ------------------------------------------------------------------
    # Online ingestion
    # ------------------------------------------------------------------
    def process_stream(self, records: Iterable[OperationalRecord]) -> list[TimeunitResult]:
        """Consume a time-ordered record stream; returns per-timeunit results."""
        produced: list[TimeunitResult] = []
        start = time.perf_counter()
        for record in records:
            self.reading_seconds += time.perf_counter() - start
            produced.extend(self.ingest_record(record))
            start = time.perf_counter()
        self.reading_seconds += time.perf_counter() - start
        produced.extend(self.flush())
        return produced

    def ingest_record(self, record: OperationalRecord) -> list[TimeunitResult]:
        """Add one record; returns results for any timeunits that closed."""
        unit = self.clock.timeunit_of(record.timestamp)
        closed: list[TimeunitResult] = []
        if self._pending_unit is None:
            self._pending_unit = unit
        while unit > self._pending_unit:
            closed.append(self._close_pending())
        self._pending[record.category] += 1
        return closed

    def flush(self) -> list[TimeunitResult]:
        """Close the currently accumulating timeunit (end of stream)."""
        if self._pending_unit is None:
            return []
        return [self._close_pending(final=True)]

    def _close_pending(self, final: bool = False) -> TimeunitResult:
        assert self._pending_unit is not None
        counts = dict(self._pending)
        unit = self._pending_unit
        self._pending = Counter()
        self._pending_unit = None if final else unit + 1
        return self.process_timeunit_counts(counts, unit)

    # ------------------------------------------------------------------
    # Timeunit-level interface (used directly by benchmarks)
    # ------------------------------------------------------------------
    def process_timeunit_counts(
        self, counts: dict[CategoryPath, Weight], timeunit: TimeunitIndex | None = None
    ) -> TimeunitResult:
        """Process one timeunit worth of per-leaf counts."""
        result = self.algorithm.process_timeunit(counts, timeunit)
        self._units_processed += 1
        if self._units_processed <= self.warmup_units and result.anomalies:
            result = TimeunitResult(
                timeunit=result.timeunit,
                heavy_hitters=result.heavy_hitters,
                actuals=result.actuals,
                forecasts=result.forecasts,
                anomalies=(),
            )
        self.reports.add_many(result.anomalies)
        self.results.append(result)
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def units_processed(self) -> int:
        return self._units_processed

    @property
    def anomalies(self) -> list:
        """All anomalies reported so far (after warm-up)."""
        return self.reports.query()

    def stage_seconds(self) -> dict[str, float]:
        """Per-stage running time, including trace reading (Table III stages)."""
        stages = dict(self.algorithm.stage_seconds)
        stages["reading_traces"] = self.reading_seconds
        return stages

    def memory_units(self) -> int:
        """The algorithm's memory cost proxy (Table IV)."""
        return self.algorithm.memory_units()
