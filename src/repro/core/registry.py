"""Pluggable algorithm and forecaster registries.

The seed implementation hard-coded the ``"ada" | "sta"`` choice in an
``if/elif`` inside the pipeline and the single-vs-multi seasonal Holt-Winters
choice inside :class:`~repro.core.timeseries.SeriesForecaster`.  Scaling the
system to new tracking algorithms (sharded ADA, approximate sketches, ...) and
new forecasting models (ARIMA-style, learned, ...) requires both to resolve by
*name*:

* an **algorithm factory** is a callable ``factory(tree, config) -> algorithm``
  returning an object with the tracking-algorithm protocol
  (``process_timeunit``, ``stage_seconds``, ``memory_units``, ...);
* a **forecaster factory** is a callable ``factory(forecast_config) -> model``
  returning an object with the :class:`~repro.forecasting.base.Forecaster`
  protocol (``initialize``, ``forecast``, ``update``).

The built-in entries (``"ada"``, ``"sta"``; ``"holt-winters"``,
``"multi-seasonal-holt-winters"``) are registered lazily so that importing the
registry never creates an import cycle with the algorithm modules.

Registered names are resolved by :class:`~repro.engine.session.DetectionSession`
(and therefore by the :class:`~repro.core.pipeline.Tiresias` facade) for
algorithms, and by :class:`~repro.core.timeseries.SeriesForecaster` for
forecasting models whenever ``ForecastConfig.model`` names one explicitly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.config import ForecastConfig, TiresiasConfig
    from repro.hierarchy.tree import HierarchyTree

AlgorithmFactory = Callable[["HierarchyTree", "TiresiasConfig"], Any]
ForecasterFactory = Callable[["ForecastConfig"], Any]


# ----------------------------------------------------------------------
# Built-in factories (lazy imports: ada/sta import the timeseries module,
# which imports this registry for named forecasting models).
# ----------------------------------------------------------------------
def _ada_factory(tree: "HierarchyTree", config: "TiresiasConfig") -> Any:
    from repro.core.ada import ADAAlgorithm

    return ADAAlgorithm(tree, config)


def _sta_factory(tree: "HierarchyTree", config: "TiresiasConfig") -> Any:
    from repro.core.sta import STAAlgorithm

    return STAAlgorithm(tree, config)


def _holt_winters_factory(config: "ForecastConfig") -> Any:
    from repro.forecasting.holt_winters import HoltWintersForecaster

    return HoltWintersForecaster(
        alpha=config.alpha,
        beta=config.beta,
        gamma=config.gamma,
        season_length=config.season_lengths[0],
    )


def _multi_seasonal_factory(config: "ForecastConfig") -> Any:
    from repro.forecasting.holt_winters import MultiSeasonalHoltWinters

    return MultiSeasonalHoltWinters(
        alpha=config.alpha,
        beta=config.beta,
        gamma=config.gamma,
        season_lengths=config.season_lengths,
        season_weights=config.season_weights,
    )


_ALGORITHMS: dict[str, AlgorithmFactory] = {
    "ada": _ada_factory,
    "sta": _sta_factory,
}

_FORECASTERS: dict[str, ForecasterFactory] = {
    "holt-winters": _holt_winters_factory,
    "multi-seasonal-holt-winters": _multi_seasonal_factory,
}


def _holt_winters_loader(state: dict) -> Any:
    from repro.forecasting.holt_winters import HoltWintersForecaster

    return HoltWintersForecaster.from_state_dict(state)


def _multi_seasonal_loader(state: dict) -> Any:
    from repro.forecasting.holt_winters import MultiSeasonalHoltWinters

    return MultiSeasonalHoltWinters.from_state_dict(state)


#: Loaders for seasonal-model ``state_dict`` snapshots, keyed by the
#: snapshot's ``"kind"`` tag (checkpoint restore resolves through this).
_FORECASTER_STATE_LOADERS: dict[str, Callable[[dict], Any]] = {
    "holt-winters": _holt_winters_loader,
    "multi-seasonal-holt-winters": _multi_seasonal_loader,
}


# ----------------------------------------------------------------------
# Algorithm registry
# ----------------------------------------------------------------------
def register_algorithm(
    name: str, factory: AlgorithmFactory, *, overwrite: bool = False
) -> None:
    """Register a tracking-algorithm factory under ``name``.

    ``factory(tree, config)`` must return an object with the tracking
    algorithm protocol used by the engine (``process_timeunit``,
    ``stage_seconds``, ``memory_units``, ``current_timeunit``).  To support
    ``save_checkpoint`` / ``load_checkpoint`` the algorithm must additionally
    implement ``state_dict()`` / ``load_state_dict(state)`` (JSON-safe);
    without them, checkpointing a session that uses the algorithm raises
    :class:`~repro.exceptions.CheckpointError`.
    """
    if not name:
        raise ConfigurationError("algorithm name must be non-empty")
    if name in _ALGORITHMS and not overwrite:
        raise ConfigurationError(
            f"algorithm {name!r} is already registered; pass overwrite=True to replace it"
        )
    _ALGORITHMS[name] = factory


def unregister_algorithm(name: str) -> None:
    """Remove a registered algorithm (built-ins included; use with care)."""
    _ALGORITHMS.pop(name, None)


def algorithm_factory(name: str) -> AlgorithmFactory:
    """The factory registered under ``name``; raises with the known names."""
    try:
        return _ALGORITHMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; registered algorithms: "
            f"{sorted(_ALGORITHMS)}"
        ) from None


def create_algorithm(name: str, tree: "HierarchyTree", config: "TiresiasConfig") -> Any:
    """Instantiate the algorithm registered under ``name``."""
    return algorithm_factory(name)(tree, config)


def available_algorithms() -> tuple[str, ...]:
    """Names of all registered algorithms, sorted."""
    return tuple(sorted(_ALGORITHMS))


# ----------------------------------------------------------------------
# Forecaster registry
# ----------------------------------------------------------------------
def register_forecaster(
    name: str,
    factory: ForecasterFactory,
    *,
    state_loader: "Callable[[dict], Any] | None" = None,
    overwrite: bool = False,
) -> None:
    """Register a forecasting-model factory under ``name``.

    ``factory(forecast_config)`` must return an object with the
    :class:`~repro.forecasting.base.Forecaster` protocol.  Select it with
    ``ForecastConfig(model=name)``.

    For checkpoint support the model must additionally implement
    ``state_dict()`` returning a JSON-safe dict with a ``"kind"`` tag, and a
    matching ``state_loader(state) -> model`` must be registered — either
    here or via :func:`register_forecaster_state_loader`.  The loader is
    keyed by the ``"kind"`` the model emits (conventionally ``name``).
    Without a loader, sessions using the model save checkpoints that cannot
    be restored.
    """
    if not name:
        raise ConfigurationError("forecaster name must be non-empty")
    if name in _FORECASTERS and not overwrite:
        raise ConfigurationError(
            f"forecaster {name!r} is already registered; pass overwrite=True to replace it"
        )
    _FORECASTERS[name] = factory
    if state_loader is not None:
        register_forecaster_state_loader(name, state_loader, overwrite=overwrite)


def unregister_forecaster(name: str) -> None:
    """Remove a registered forecaster (built-ins included; use with care)."""
    _FORECASTERS.pop(name, None)
    _FORECASTER_STATE_LOADERS.pop(name, None)


def register_forecaster_state_loader(
    kind: str, loader: "Callable[[dict], Any]", *, overwrite: bool = False
) -> None:
    """Register a checkpoint loader for seasonal-model snapshots of ``kind``.

    ``loader(state)`` receives the dict a model's ``state_dict()`` produced
    (including its ``"kind"`` tag) and must return a restored model instance.
    """
    if not kind:
        raise ConfigurationError("state-loader kind must be non-empty")
    if kind in _FORECASTER_STATE_LOADERS and not overwrite:
        raise ConfigurationError(
            f"a state loader for kind {kind!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _FORECASTER_STATE_LOADERS[kind] = loader


def forecaster_state_loader(kind: str) -> "Callable[[dict], Any]":
    """The checkpoint loader registered for snapshot ``kind``."""
    try:
        return _FORECASTER_STATE_LOADERS[kind]
    except KeyError:
        from repro.exceptions import CheckpointError

        raise CheckpointError(
            f"cannot restore seasonal model of kind {kind!r}; known kinds: "
            f"{sorted(_FORECASTER_STATE_LOADERS)} (register one with "
            f"register_forecaster_state_loader)"
        ) from None


def forecaster_factory(name: str) -> ForecasterFactory:
    """The factory registered under ``name``; raises with the known names."""
    try:
        return _FORECASTERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown forecaster {name!r}; registered forecasters: "
            f"{sorted(_FORECASTERS)}"
        ) from None


def create_forecaster(name: str, config: "ForecastConfig") -> Any:
    """Instantiate the forecasting model registered under ``name``."""
    return forecaster_factory(name)(config)


def available_forecasters() -> tuple[str, ...]:
    """Names of all registered forecasting models, sorted."""
    return tuple(sorted(_FORECASTERS))


def ensure_forecaster_resolvable(name: str) -> None:
    """Raise unless ``name`` is ``"auto"`` or a registered forecaster.

    :class:`~repro.core.config.ForecastConfig` accepts any non-empty model
    name (the registry entry may be loaded later); online reconfiguration
    cannot afford that laxity — swapping a live session onto an unregistered
    model would only fail at the next seasonal activation, long after the
    reconfigure call reported success.  Used by
    :func:`repro.engine.reconfig.check_reconfigurable`.
    """
    if name != "auto":
        forecaster_factory(name)
