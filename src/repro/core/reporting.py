"""Anomaly report store and query interface (Steps 5-6 / Fig. 3(f)).

The paper reports anomalies to a text database queried from a small web front
end.  The reproduction provides the same capability as a programmatic store:
anomalies are appended as they are detected, can be persisted to / loaded from
JSON Lines, and can be queried by time range, hierarchy subtree, depth, and
magnitude -- the lookups a network administrator would issue.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro._types import CategoryPath, TimeunitIndex
from repro.core.detector import Anomaly


@dataclass(frozen=True)
class AnomalyQuery:
    """Filter describing which anomalies to retrieve.

    All criteria are optional and combined with logical AND.
    """

    start_timeunit: TimeunitIndex | None = None
    end_timeunit: TimeunitIndex | None = None
    subtree: CategoryPath | None = None
    min_depth: int | None = None
    max_depth: int | None = None
    min_excess: float | None = None
    min_ratio: float | None = None

    def matches(self, anomaly: Anomaly) -> bool:
        if self.start_timeunit is not None and anomaly.timeunit < self.start_timeunit:
            return False
        if self.end_timeunit is not None and anomaly.timeunit > self.end_timeunit:
            return False
        if self.subtree is not None:
            prefix = tuple(self.subtree)
            if anomaly.node_path[: len(prefix)] != prefix:
                return False
        if self.min_depth is not None and anomaly.depth < self.min_depth:
            return False
        if self.max_depth is not None and anomaly.depth > self.max_depth:
            return False
        if self.min_excess is not None and anomaly.excess < self.min_excess:
            return False
        if self.min_ratio is not None and anomaly.ratio < self.min_ratio:
            return False
        return True


class AnomalyReportStore:
    """Append-only store of detected anomalies with simple queries."""

    def __init__(self) -> None:
        self._anomalies: list[Anomaly] = []

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add(self, anomaly: Anomaly) -> None:
        self._anomalies.append(anomaly)

    def add_many(self, anomalies: Iterable[Anomaly]) -> None:
        self._anomalies.extend(anomalies)

    def __len__(self) -> int:
        return len(self._anomalies)

    def __iter__(self) -> Iterator[Anomaly]:
        return iter(self._anomalies)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query: AnomalyQuery | None = None) -> list[Anomaly]:
        """All anomalies matching ``query`` (all of them when query is None)."""
        if query is None:
            return list(self._anomalies)
        return [a for a in self._anomalies if query.matches(a)]

    def filter(self, predicate: Callable[[Anomaly], bool]) -> list[Anomaly]:
        return [a for a in self._anomalies if predicate(a)]

    def by_timeunit(self) -> dict[TimeunitIndex, list[Anomaly]]:
        grouped: dict[TimeunitIndex, list[Anomaly]] = {}
        for anomaly in self._anomalies:
            grouped.setdefault(anomaly.timeunit, []).append(anomaly)
        return grouped

    def by_depth(self) -> dict[int, list[Anomaly]]:
        grouped: dict[int, list[Anomaly]] = {}
        for anomaly in self._anomalies:
            grouped.setdefault(anomaly.depth, []).append(anomaly)
        return grouped

    def deduplicate_ancestors(self) -> list[Anomaly]:
        """Drop anomalies that are ancestors of another anomaly in the same timeunit.

        This is the "simple data aggregation" the paper applies to new
        anomalies before reporting at which level they were localized.
        """
        kept: list[Anomaly] = []
        grouped = self.by_timeunit()
        for anomalies in grouped.values():
            for candidate in anomalies:
                is_ancestor = any(
                    other is not candidate
                    and len(other.node_path) > len(candidate.node_path)
                    and other.node_path[: len(candidate.node_path)] == candidate.node_path
                    for other in anomalies
                )
                if not is_ancestor:
                    kept.append(candidate)
        kept.sort(key=lambda a: (a.timeunit, a.node_path))
        return kept

    def depth_distribution(self, deduplicated: bool = True) -> dict[int, float]:
        """Fraction of anomalies per hierarchy depth (Table VI discussion)."""
        anomalies = self.deduplicate_ancestors() if deduplicated else list(self._anomalies)
        if not anomalies:
            return {}
        counts: dict[int, int] = {}
        for anomaly in anomalies:
            counts[anomaly.depth] = counts.get(anomaly.depth, 0) + 1
        total = len(anomalies)
        return {depth: count / total for depth, count in sorted(counts.items())}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_jsonl(self, path: str | Path) -> None:
        """Persist the store as one JSON object per line."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for anomaly in self._anomalies:
                handle.write(json.dumps(anomaly.to_dict()) + "\n")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "AnomalyReportStore":
        store = cls()
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                store.add(Anomaly.from_dict(json.loads(line)))
        return store
