"""Result objects shared by the STA and ADA algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._types import CategoryPath, TimeunitIndex, Weight
from repro.core.detector import Anomaly


@dataclass(frozen=True)
class TimeunitResult:
    """Outcome of processing one detection timeunit.

    Attributes
    ----------
    timeunit:
        Index of the detection timeunit.
    heavy_hitters:
        The succinct hierarchical heavy hitter set for this timeunit.
    actuals:
        Modified weight ``T[n, 1]`` for every tracked heavy hitter.
    forecasts:
        Forecast ``F[n, 1]`` for every tracked heavy hitter.
    anomalies:
        Anomalies detected in this timeunit (Definition 4).
    """

    timeunit: TimeunitIndex
    heavy_hitters: frozenset[CategoryPath]
    actuals: dict[CategoryPath, Weight] = field(default_factory=dict)
    forecasts: dict[CategoryPath, Weight] = field(default_factory=dict)
    anomalies: tuple[Anomaly, ...] = ()

    @property
    def num_heavy_hitters(self) -> int:
        return len(self.heavy_hitters)

    @property
    def num_anomalies(self) -> int:
        return len(self.anomalies)

    def anomaly_paths(self) -> set[CategoryPath]:
        return {a.node_path for a in self.anomalies}
