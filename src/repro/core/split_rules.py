"""Split rules for ADA's SPLIT operation (§V-B4).

When a heavy hitter node hands its time series down to its children, the
series is decomposed linearly: child ``c`` receives the fraction
``F(c, Cn) = X_c / sum_{m in Cn} X_m`` of every element, where ``X`` is a
weight-related property of the node.  The paper evaluates four choices:

* **Uniform** -- ``X = 1``: every receiving child gets an equal share.
* **Last-Time-Unit** -- ``X`` is the node's weight in the previous timeunit.
* **Long-Term-History** -- ``X`` is the node's total weight over all previous
  timeunits.
* **EWMA** -- ``X`` is an exponentially smoothed weight (rate ``alpha``).

The statistics each rule needs are tracked per node by
:class:`NodeUsageStats`, which ADA updates every timeunit for every node of
the tree (a single cheap pass, since the raw weights are computed anyway).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.core.config import TiresiasConfig


@dataclass(slots=True)
class NodeUsageStats:
    """Per-node weight statistics consumed by the split rules.

    Slotted: the adaptation stage materializes one per receiving child on
    every split, so construction cost is on the hot path.
    """

    last_weight: float = 0.0
    cumulative_weight: float = 0.0
    ewma_weight: float = 0.0
    observations: int = field(default=0)

    def update(self, weight: float, ewma_alpha: float) -> None:
        """Record the node's raw weight for the timeunit that just closed."""
        weight = float(weight)
        self.last_weight = weight
        self.cumulative_weight += weight
        if self.observations == 0:
            self.ewma_weight = weight
        else:
            self.ewma_weight = ewma_alpha * weight + (1 - ewma_alpha) * self.ewma_weight
        self.observations += 1


class SplitRule(abc.ABC):
    """Strategy for computing the weight-related property ``X_n``."""

    name: str = "abstract"

    @abc.abstractmethod
    def score(self, stats: NodeUsageStats) -> float:
        """The (non-negative) value ``X_n`` for a node with ``stats``."""

    def ratios(self, stats_by_key: dict[object, NodeUsageStats]) -> dict[object, float]:
        """Normalized split ratios ``F(c, Cn)`` for the receiving children.

        If every score is zero (no history at all for any receiving child) the
        rule degrades to a uniform split, which is the only unbiased choice in
        the absence of information.
        """
        scores = {key: max(0.0, self.score(stats)) for key, stats in stats_by_key.items()}
        total = sum(scores.values())
        count = len(scores)
        if count == 0:
            return {}
        if total <= 0.0:
            return {key: 1.0 / count for key in scores}
        return {key: value / total for key, value in scores.items()}


class UniformSplitRule(SplitRule):
    """``X = 1``: split equally among the receiving children."""

    name = "uniform"

    def score(self, stats: NodeUsageStats) -> float:
        return 1.0


class LastTimeUnitSplitRule(SplitRule):
    """``X`` is the node's weight in the previous timeunit."""

    name = "last-time-unit"

    def score(self, stats: NodeUsageStats) -> float:
        return stats.last_weight


class LongTermHistorySplitRule(SplitRule):
    """``X`` is the node's total weight across all previous timeunits."""

    name = "long-term-history"

    def score(self, stats: NodeUsageStats) -> float:
        return stats.cumulative_weight


class EWMASplitRule(SplitRule):
    """``X`` is an exponentially smoothed weight with rate ``alpha``."""

    name = "ewma"

    def __init__(self, alpha: float = 0.4):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha

    def score(self, stats: NodeUsageStats) -> float:
        return stats.ewma_weight


def make_split_rule(config: TiresiasConfig) -> SplitRule:
    """Instantiate the split rule named in ``config``."""
    name = config.split_rule
    if name == "uniform":
        return UniformSplitRule()
    if name == "last-time-unit":
        return LastTimeUnitSplitRule()
    if name == "long-term-history":
        return LongTermHistorySplitRule()
    if name == "ewma":
        return EWMASplitRule(alpha=config.split_ewma_alpha)
    raise ConfigurationError(f"unknown split rule {name!r}")
