"""STA: the strawman per-timeunit reconstruction algorithm (§V-A, Fig. 4).

STA keeps the raw per-node weights of every timeunit in the sliding window
(conceptually the ℓ trees of Fig. 4).  At each time instance it

1. computes the succinct heavy hitter set of the newest timeunit with a
   bottom-up traversal (Definition 2), and
2. reconstructs, for every heavy hitter, the full time series of Definition 3
   by traversing all ℓ stored timeunits, then refits the forecasting model on
   the history portion to obtain the forecast for the detection unit.

This is accurate by construction -- the paper (and our evaluation) uses STA as
the ground truth for ADA's time-series and detection accuracy -- but the time
series reconstruction cost grows with ℓ, which is exactly the bottleneck
Table III exposes.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Mapping

from repro._types import CategoryPath, TimeunitIndex, Weight
from repro._vector import load_numpy
from repro.core.config import TiresiasConfig
from repro.core.detector import ThresholdDetector
from repro.core.hhh import accumulate_raw_weights, compute_shhh
from repro.core.results import TimeunitResult
from repro.forecasting.bank import ForecasterBank, VECTOR_MIN_ROWS
from repro.hierarchy.index import HierarchyIndex
from repro.hierarchy.tree import HierarchyTree

_np = load_numpy()


class STAAlgorithm:
    """Strawman heavy hitter tracking with full per-instance reconstruction."""

    name = "STA"

    def __init__(self, tree: HierarchyTree, config: TiresiasConfig):
        self.tree = tree
        self.config = config
        self.detector = ThresholdDetector(config)
        #: Raw node weights for each retained timeunit (oldest first); this is
        #: the Python equivalent of keeping ℓ weighted trees alive.
        self._unit_weights: Deque[dict[CategoryPath, Weight]] = deque(
            maxlen=config.window_units
        )
        #: Dense id view shared with ADA's adaptation engine: the succinct
        #: heavy hitter pass runs as level sweeps over node ids (bit-exact,
        #: see :mod:`repro.hierarchy.index`) instead of the per-path scalar
        #: recursion.  The per-timeunit weight tables stay path-keyed dicts —
        #: they are the checkpoint format.
        self._index: "HierarchyIndex | None" = (
            HierarchyIndex(tree) if _np is not None else None
        )
        self._timeunit: TimeunitIndex = -1
        self.stage_seconds: dict[str, float] = {
            "updating_hierarchies": 0.0,
            "creating_time_series": 0.0,
            "detecting_anomalies": 0.0,
        }
        self.last_result: TimeunitResult | None = None
        #: Raw root weight of the most recent timeunit.  Additive across
        #: disjoint subtree shards; the sharded engine sums it to replay the
        #: root's split-rule bookkeeping coordinator-side.
        self.last_root_raw = 0.0
        #: Frontier-band capture for depth-k sharding (see
        #: :meth:`capture_frontier`); off outside sharded workers.
        self._frontier_paths: "tuple[CategoryPath, ...] | None" = None
        self.last_frontier_raw: "tuple[float, ...] | None" = None
        #: Band exclusion for ``min_heavy_depth > 1``: nodes at depths
        #: 1..m-1 never qualify as heavy.
        m = config.min_heavy_depth
        self._band_excluded = (
            frozenset(
                node.path
                for depth in range(1, m)
                for node in tree.nodes_at_depth(depth)
            )
            if m > 1
            else frozenset()
        )
        self._shallow_ids = None
        if self._index is not None and m > 1:
            depths = self._index.depths
            self._shallow_ids = _np.flatnonzero((depths >= 1) & (depths < m))

    def capture_frontier(self, paths) -> None:
        """Record the raw weight of each of ``paths`` on every close.

        Same contract as :meth:`ADAAlgorithm.capture_frontier
        <repro.core.ada.ADAAlgorithm.capture_frontier>`: the depth-k sharded
        coordinator sums these per-shard tuples to validate the merged band
        weights.
        """
        self._frontier_paths = tuple(tuple(p) for p in paths)
        self.last_frontier_raw = None

    # ------------------------------------------------------------------
    # Online interface
    # ------------------------------------------------------------------
    def process_timeunit(
        self, leaf_counts: Mapping[CategoryPath, Weight], timeunit: TimeunitIndex | None = None
    ) -> TimeunitResult:
        """Ingest the counts of one new timeunit and run detection on it."""
        self._timeunit = self._timeunit + 1 if timeunit is None else timeunit

        start = time.perf_counter()
        raw = accumulate_raw_weights(self.tree, leaf_counts)
        self._unit_weights.append(raw)
        if self._index is not None:
            index = self._index
            raw_vec = _np.zeros(index.num_nodes)
            lookup = index.path_to_id
            for path, weight in raw.items():
                raw_vec[lookup[path]] = weight
            _modified, heavy_mask = index.succinct(raw_vec, self.config.theta)
            if self.config.track_root:
                heavy_mask[0] = True
            elif not self.config.allow_root_heavy:
                heavy_mask[0] = False
            if self._shallow_ids is not None:
                heavy_mask[self._shallow_ids] = False
            paths = index.paths
            heavy = {paths[i] for i in _np.flatnonzero(heavy_mask).tolist()}
        else:
            shhh_result = compute_shhh(
                self.tree, leaf_counts, self.config.theta, raw=raw
            )
            heavy = set(shhh_result.shhh)
            if self.config.track_root:
                heavy.add(self.tree.root.path)
            elif not self.config.allow_root_heavy:
                heavy.discard(self.tree.root.path)
        if self._band_excluded:
            heavy -= self._band_excluded
        self.last_root_raw = float(raw.get(self.tree.root.path, 0.0))
        if self._frontier_paths is not None:
            self.last_frontier_raw = tuple(
                float(raw.get(path, 0.0)) for path in self._frontier_paths
            )
        self.stage_seconds["updating_hierarchies"] += time.perf_counter() - start

        start = time.perf_counter()
        series = self._reconstruct_series(heavy)
        forecasts = self._forecast(series)
        self.stage_seconds["creating_time_series"] += time.perf_counter() - start

        start = time.perf_counter()
        result = self._detect(heavy, series, forecasts)
        self.stage_seconds["detecting_anomalies"] += time.perf_counter() - start
        self.last_result = result
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _reconstruct_series(
        self, heavy: set[CategoryPath]
    ) -> dict[CategoryPath, list[float]]:
        """Definition 3 time series for every heavy hitter over the window."""
        series: dict[CategoryPath, list[float]] = {}
        for path in sorted(heavy):
            node = self.tree.node(path)
            heavy_children = [c.path for c in node.children.values() if c.path in heavy]
            values: list[float] = []
            for unit_weights in self._unit_weights:
                value = unit_weights.get(path, 0.0)
                for child_path in heavy_children:
                    value -= unit_weights.get(child_path, 0.0)
                values.append(value)
            series[path] = values
        return series

    def _forecast(
        self, series: dict[CategoryPath, list[float]]
    ) -> dict[CategoryPath, Weight]:
        """Refit a forecasting model on each heavy hitter's history.

        STA has no persistent forecaster state: the models are rebuilt from
        the reconstructed histories at every time instance, which is exactly
        why "Creating Time Series" dominates its running time (Table III).
        The refit drives all heavy hitters through one throwaway
        :class:`~repro.forecasting.bank.ForecasterBank` in lockstep — every
        reconstructed history spans the same retained window, so each
        timeunit is one vectorized ``observe_rows`` call (bit-identical to
        the per-node scalar replay).
        """
        if not series:
            return {}
        paths = list(series)
        histories = [series[path][:-1] for path in paths]
        steps = len(histories[0])
        if steps == 0:
            return {path: 0.0 for path in paths}
        # Below the vector crossover the throwaway bank runs scalar rows:
        # identical forecasts, but per-row Python floats beat NumPy kernels
        # for small heavy-hitter sets.
        bank = ForecasterBank(
            self.config.forecast, force_scalar=len(paths) < VECTOR_MIN_ROWS
        )
        rows = [bank.new_row() for _ in paths]
        for step in range(steps):
            bank.observe_rows(rows, [history[step] for history in histories])
        return {path: bank.forecast(row) for path, row in zip(paths, rows)}

    def _detect(
        self,
        heavy: set[CategoryPath],
        series: dict[CategoryPath, list[float]],
        forecasts: dict[CategoryPath, Weight],
    ) -> TimeunitResult:
        # Canonical (sorted) order so the anomaly sequence is identical across
        # processes regardless of hash randomization.
        paths = sorted(heavy)
        actual_values = [
            series[path][-1] if series[path] else 0.0 for path in paths
        ]
        forecast_values = [forecasts.get(path, 0.0) for path in paths]
        actuals: dict[CategoryPath, Weight] = dict(zip(paths, actual_values))
        anomalies = self.detector.check_many(
            paths, self._timeunit, actual_values, forecast_values, algorithm=self.name
        )
        return TimeunitResult(
            timeunit=self._timeunit,
            heavy_hitters=frozenset(heavy),
            actuals=actuals,
            forecasts=forecasts,
            anomalies=tuple(anomalies),
        )

    # ------------------------------------------------------------------
    # Introspection used by the evaluation harness
    # ------------------------------------------------------------------
    def series_for(self, path: CategoryPath) -> list[float]:
        """Current Definition-3 series for ``path`` (ground truth for ADA)."""
        node = self.tree.node(tuple(path))
        heavy = self.last_result.heavy_hitters if self.last_result else frozenset()
        heavy_children = [c.path for c in node.children.values() if c.path in heavy]
        values: list[float] = []
        for unit_weights in self._unit_weights:
            value = unit_weights.get(node.path, 0.0)
            for child_path in heavy_children:
                value -= unit_weights.get(child_path, 0.0)
            values.append(value)
        return values

    def memory_units(self) -> int:
        """Number of stored scalar weights (the Table IV cost proxy)."""
        return sum(len(unit) for unit in self._unit_weights)

    @property
    def current_timeunit(self) -> TimeunitIndex:
        return self._timeunit

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot: the retained per-timeunit weight tables."""
        return {
            "timeunit": self._timeunit,
            "stage_seconds": dict(self.stage_seconds),
            "unit_weights": [
                [[list(path), weight] for path, weight in unit.items()]
                for unit in self._unit_weights
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict` (same tree/config)."""
        self._timeunit = int(state["timeunit"])
        self.stage_seconds = {k: float(v) for k, v in state["stage_seconds"].items()}
        self._unit_weights = deque(
            (
                {tuple(path): float(weight) for path, weight in unit}
                for unit in state["unit_weights"]
            ),
            maxlen=self.config.window_units,
        )
        self.last_result = None
