"""Per-heavy-hitter time series state (Definition 3, Fig. 5 lines 26-29,
and the multi-time-scale extension of Fig. 10).

Each heavy hitter carries two aligned series of length at most ℓ: the actual
(modified) weights ``n.actual`` and the one-step-ahead forecasts
``n.forecast``.  The forecast state must support the two operations ADA's
adaptation needs:

* **scale** by a ratio (used by SPLIT), and
* **add** another node's state (used by MERGE),

which the additive Holt-Winters model supports exactly thanks to its
linearity (Lemma 2).  Before a node has accumulated enough history for the
seasonal model, an EWMA fallback provides the forecast; the EWMA level is
linear as well, so scaling/merging remains exact throughout.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Sequence

from repro.exceptions import ConfigurationError
from repro.forecasting.holt_winters import HoltWintersForecaster, MultiSeasonalHoltWinters
from repro.core.config import ForecastConfig


class SeriesForecaster:
    """Linear, online forecaster attached to one heavy hitter's series.

    Wraps an EWMA level (always available) and an additive Holt-Winters model
    (activated once ``config.min_history`` observations have been seen).  All
    internal state is linear in the observed series, so :meth:`scaled` and
    :meth:`add_state` produce exactly the state that would have resulted from
    observing the scaled / summed series.
    """

    def __init__(self, config: ForecastConfig):
        self.config = config
        self._ewma_level: float | None = None
        self._seen = 0
        self._history: list[float] = []
        self._seasonal: HoltWintersForecaster | MultiSeasonalHoltWinters | None = None

    # ------------------------------------------------------------------
    # Construction of the seasonal model
    # ------------------------------------------------------------------
    def _build_seasonal(self):
        cfg = self.config
        if cfg.model != "auto":
            from repro.core.registry import create_forecaster

            return create_forecaster(cfg.model, cfg)
        if len(cfg.season_lengths) == 1:
            return HoltWintersForecaster(
                alpha=cfg.alpha,
                beta=cfg.beta,
                gamma=cfg.gamma,
                season_length=cfg.season_lengths[0],
            )
        return MultiSeasonalHoltWinters(
            alpha=cfg.alpha,
            beta=cfg.beta,
            gamma=cfg.gamma,
            season_lengths=cfg.season_lengths,
            season_weights=cfg.season_weights,
        )

    def _maybe_activate_seasonal(self) -> None:
        if self._seasonal is None and len(self._history) >= self.config.min_history:
            model = self._build_seasonal()
            model.initialize(self._history)
            self._seasonal = model
            # The raw history is no longer needed once the seasonal state
            # exists; keep memory bounded (the paper's "without requiring
            # storage of older data").
            self._history = []

    # ------------------------------------------------------------------
    # Forecaster protocol
    # ------------------------------------------------------------------
    @property
    def is_seasonal(self) -> bool:
        """Whether the Holt-Winters state is active (vs. the EWMA fallback)."""
        return self._seasonal is not None

    @property
    def observations(self) -> int:
        return self._seen

    def forecast(self) -> float:
        """One-step-ahead forecast for the next timeunit."""
        if self._seasonal is not None:
            return self._seasonal.forecast()
        if self._ewma_level is None:
            return 0.0
        return self._ewma_level

    def observe(self, value: float) -> float:
        """Fold in the next actual value; return the forecast made for it."""
        value = float(value)
        predicted = self.forecast()
        alpha = self.config.fallback_alpha
        if self._ewma_level is None:
            self._ewma_level = value
        else:
            self._ewma_level = alpha * value + (1 - alpha) * self._ewma_level
        if self._seasonal is not None:
            self._seasonal.update(value)
        else:
            self._history.append(value)
            self._maybe_activate_seasonal()
        self._seen += 1
        return predicted

    def seed_history(self, history: Sequence[float]) -> None:
        """Initialize from a full history series (oldest first)."""
        for value in history:
            self.observe(value)

    @classmethod
    def from_history_fast(
        cls, history: Sequence[float], config: ForecastConfig
    ) -> "SeriesForecaster":
        """Build a forecaster state from ``history`` without replaying it.

        The seasonal model is initialized directly from the last
        ``config.min_history`` values (its normal initialization path) and the
        EWMA fallback level from an exponential smoothing of the recent tail.
        This is what the reference-series correction uses after a split: it
        costs O(seasonal period) instead of O(window) Holt-Winters updates and
        yields the same forecasts going forward up to initialization
        transients.
        """
        forecaster = cls(config)
        values = [float(v) for v in history]
        forecaster._seen = len(values)
        if not values:
            return forecaster
        alpha = config.fallback_alpha
        level = values[0] if len(values) <= 1 else values[-min(len(values), 64)]
        for value in values[-min(len(values), 64):]:
            level = alpha * value + (1 - alpha) * level
        forecaster._ewma_level = level
        if len(values) >= config.min_history:
            model = forecaster._build_seasonal()
            model.initialize(values[-config.min_history:])
            forecaster._seasonal = model
        else:
            forecaster._history = values
        return forecaster

    # ------------------------------------------------------------------
    # Linearity operations used by SPLIT / MERGE
    # ------------------------------------------------------------------
    def scaled(self, ratio: float) -> "SeriesForecaster":
        """State of a forecaster that would have observed ``ratio * series``."""
        clone = SeriesForecaster(self.config)
        clone._seen = self._seen
        clone._ewma_level = None if self._ewma_level is None else self._ewma_level * ratio
        clone._history = [v * ratio for v in self._history]
        clone._seasonal = None if self._seasonal is None else self._seasonal.scaled(ratio)
        return clone

    def add_state(self, other: "SeriesForecaster") -> None:
        """Fold ``other``'s state into this forecaster (series addition)."""
        if other._ewma_level is not None:
            if self._ewma_level is None:
                self._ewma_level = other._ewma_level
            else:
                self._ewma_level += other._ewma_level
        self._seen = max(self._seen, other._seen)
        if other._seasonal is not None:
            if self._seasonal is None:
                self._seasonal = other._seasonal.scaled(1.0)
            else:
                self._seasonal.add_state(other._seasonal)  # type: ignore[arg-type]
        if other._history:
            if not self._history:
                self._history = list(other._history)
            else:
                length = max(len(self._history), len(other._history))
                mine = [0.0] * (length - len(self._history)) + self._history
                theirs = [0.0] * (length - len(other._history)) + list(other._history)
                self._history = [a + b for a, b in zip(mine, theirs)]
        self._maybe_activate_seasonal()

    def copy(self) -> "SeriesForecaster":
        return self.scaled(1.0)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot (the shared :class:`ForecastConfig` is stored
        once at the session level, not per forecaster)."""
        return {
            "ewma_level": self._ewma_level,
            "seen": self._seen,
            "history": list(self._history),
            "seasonal": None if self._seasonal is None else self._seasonal.state_dict(),
        }

    @classmethod
    def from_state_dict(
        cls, state: dict, config: ForecastConfig
    ) -> "SeriesForecaster":
        """Rebuild a forecaster from :meth:`state_dict` output."""
        forecaster = cls(config)
        level = state["ewma_level"]
        forecaster._ewma_level = None if level is None else float(level)
        forecaster._seen = int(state["seen"])
        forecaster._history = [float(v) for v in state["history"]]
        if state["seasonal"] is not None:
            forecaster._seasonal = load_seasonal_state(state["seasonal"])
        return forecaster


class NodeTimeSeries:
    """Aligned actual / forecast series for one heavy hitter node.

    Parameters
    ----------
    length:
        ℓ, the maximum number of timeunits retained.
    forecast_config:
        Parameters of the forecasting model attached to the series.
    """

    def __init__(self, length: int, forecast_config: ForecastConfig):
        if length < 1:
            raise ConfigurationError(f"series length must be >= 1, got {length}")
        self.length = length
        self.forecast_config = forecast_config
        self.actual: Deque[float] = deque(maxlen=length)
        self.forecast: Deque[float] = deque(maxlen=length)
        self.forecaster = SeriesForecaster(forecast_config)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_history(
        cls, history: Sequence[float], length: int, forecast_config: ForecastConfig
    ) -> "NodeTimeSeries":
        """Build a series by replaying ``history`` (oldest first)."""
        series = cls(length, forecast_config)
        series.extend(history)
        return series

    # ------------------------------------------------------------------
    # Online updates
    # ------------------------------------------------------------------
    def append(self, value: float) -> float:
        """Append the newest actual value; returns the forecast made for it."""
        predicted = self.forecaster.observe(value)
        self.actual.append(float(value))
        self.forecast.append(predicted)
        return predicted

    def extend(self, values: Sequence[float]) -> list[float]:
        """Append several timeunit values at once (oldest first).

        This is the series-level entry point of the batch ingestion path: a
        columnar batch reduces to one aggregated count per (node, timeunit),
        so a node series absorbs a whole batch with one call instead of one
        per record.  The forecaster update is inherently sequential (each
        forecast conditions on the previous observation), so the values are
        folded in order; returns the forecast made for each value.
        """
        return [self.append(value) for value in values]

    @property
    def latest_actual(self) -> float:
        if not self.actual:
            raise ConfigurationError("the series has no observations yet")
        return self.actual[-1]

    @property
    def latest_forecast(self) -> float:
        if not self.forecast:
            raise ConfigurationError("the series has no observations yet")
        return self.forecast[-1]

    def next_forecast(self) -> float:
        """Forecast for the not-yet-observed next timeunit."""
        return self.forecaster.forecast()

    def __len__(self) -> int:
        return len(self.actual)

    # ------------------------------------------------------------------
    # SPLIT / MERGE support
    # ------------------------------------------------------------------
    def scaled(self, ratio: float) -> "NodeTimeSeries":
        """A copy whose actual/forecast series and state are scaled by ``ratio``."""
        clone = NodeTimeSeries(self.length, self.forecast_config)
        clone.actual = deque((v * ratio for v in self.actual), maxlen=self.length)
        clone.forecast = deque((v * ratio for v in self.forecast), maxlen=self.length)
        clone.forecaster = self.forecaster.scaled(ratio)
        return clone

    def merge_from(self, other: "NodeTimeSeries") -> None:
        """Add ``other``'s series into this one element-wise (newest aligned)."""
        merged_actual = _aligned_sum(list(self.actual), list(other.actual))
        merged_forecast = _aligned_sum(list(self.forecast), list(other.forecast))
        self.actual = deque(merged_actual, maxlen=self.length)
        self.forecast = deque(merged_forecast, maxlen=self.length)
        self.forecaster.add_state(other.forecaster)

    def replace_actual(self, values: Sequence[float]) -> None:
        """Overwrite the actual series (used by the reference-series correction).

        The forecaster state is rebuilt from the corrected history (via the
        fast initialization path) so that future forecasts reflect the
        corrected series.  The historical forecast column is reset to the
        corrected actuals themselves -- only the forecast for the upcoming
        timeunits matters for detection, and past forecasts of a re-derived
        series are not well defined anyway.
        """
        trimmed = list(values)[-self.length:]
        self.actual = deque(trimmed, maxlen=self.length)
        self.forecaster = SeriesForecaster.from_history_fast(trimmed, self.forecast_config)
        self.forecast = deque(trimmed, maxlen=self.length)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of the series buffers and forecaster state."""
        return {
            "length": self.length,
            "actual": list(self.actual),
            "forecast": list(self.forecast),
            "forecaster": self.forecaster.state_dict(),
        }

    @classmethod
    def from_state_dict(
        cls, state: dict, forecast_config: ForecastConfig
    ) -> "NodeTimeSeries":
        """Rebuild a node series from :meth:`state_dict` output."""
        series = cls(int(state["length"]), forecast_config)
        series.actual = deque(
            (float(v) for v in state["actual"]), maxlen=series.length
        )
        series.forecast = deque(
            (float(v) for v in state["forecast"]), maxlen=series.length
        )
        series.forecaster = SeriesForecaster.from_state_dict(
            state["forecaster"], forecast_config
        )
        return series


def load_seasonal_state(state: dict):
    """Rebuild a seasonal forecasting model from its ``state_dict`` snapshot.

    The loader is resolved by the snapshot's ``"kind"`` tag through the
    forecaster-state-loader registry, so custom models registered with
    :func:`repro.core.registry.register_forecaster` (plus a ``state_loader``)
    restore from checkpoints just like the built-ins.
    """
    from repro.core.registry import forecaster_state_loader

    return forecaster_state_loader(str(state.get("kind")))(state)


def _aligned_sum(a: list[float], b: list[float]) -> list[float]:
    """Element-wise sum of two series aligned on their newest element."""
    length = max(len(a), len(b))
    a_padded = [0.0] * (length - len(a)) + a
    b_padded = [0.0] * (length - len(b)) + b
    return [x + y for x, y in zip(a_padded, b_padded)]


class MultiScaleTimeSeries:
    """Time series maintained at several geometric time scales (Fig. 10).

    The i-th scale aggregates ``lam**i`` base timeunits (0-indexed; the
    paper's scale ``i`` is ``lam**(i-1) * delta``).  Appending a value to the
    base scale cascades: whenever a scale has accumulated ``lam`` new values
    they are summed and appended to the next coarser scale.  Each scale keeps
    at most ``length`` values plus the ``lam - 1`` values awaiting promotion,
    matching the paper's bounded-memory claim, and carries an EWMA forecast
    series exactly as in the pseudocode.
    """

    def __init__(self, length: int, num_scales: int, lam: int, alpha: float = 0.3):
        if length < 1:
            raise ConfigurationError("length must be >= 1")
        if num_scales < 1:
            raise ConfigurationError("num_scales (eta) must be >= 1")
        if lam < 2:
            raise ConfigurationError("lam (lambda) must be >= 2")
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        self.length = length
        self.num_scales = num_scales
        self.lam = lam
        self.alpha = alpha
        self.actual: list[list[float]] = [[] for _ in range(num_scales)]
        self.forecast: list[list[float]] = [[] for _ in range(num_scales)]
        self._update_calls = 0

    @property
    def update_calls(self) -> int:
        """Total number of per-scale updates performed (for the Θ(1) amortized check)."""
        return self._update_calls

    def append(self, value: float) -> None:
        """Append one base-timeunit value, cascading to coarser scales."""
        self._update(float(value), 0)

    def _update(self, value: float, scale: int) -> None:
        self._update_calls += 1
        forecasts = self.forecast[scale]
        previous = forecasts[-1] if forecasts else value
        forecasts.append(self.alpha * value + (1 - self.alpha) * previous)
        actuals = self.actual[scale]
        actuals.append(value)
        size = len(actuals)
        if scale + 1 < self.num_scales and size % self.lam == 0:
            promoted = sum(actuals[-self.lam:])
            self._update(promoted, scale + 1)
        limit = self.length + self.lam
        if size >= limit:
            del actuals[: self.lam]
            del forecasts[: self.lam]

    def series_at_scale(self, scale: int) -> list[float]:
        """The retained actual series at ``scale`` (0 = base timeunits)."""
        if not 0 <= scale < self.num_scales:
            raise ConfigurationError(
                f"scale must be in [0, {self.num_scales}), got {scale}"
            )
        return list(self.actual[scale])

    def forecast_at_scale(self, scale: int) -> list[float]:
        if not 0 <= scale < self.num_scales:
            raise ConfigurationError(
                f"scale must be in [0, {self.num_scales}), got {scale}"
            )
        return list(self.forecast[scale])
