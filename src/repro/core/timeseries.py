"""Per-heavy-hitter time series state (Definition 3, Fig. 5 lines 26-29,
and the multi-time-scale extension of Fig. 10).

Each heavy hitter carries two aligned series of length at most ℓ: the actual
(modified) weights ``n.actual`` and the one-step-ahead forecasts
``n.forecast``.  The forecast state must support the two operations ADA's
adaptation needs:

* **scale** by a ratio (used by SPLIT), and
* **add** another node's state (used by MERGE),

which the additive Holt-Winters model supports exactly thanks to its
linearity (Lemma 2).  Before a node has accumulated enough history for the
seasonal model, an EWMA fallback provides the forecast; the EWMA level is
linear as well, so scaling/merging remains exact throughout.

Since the columnar refactor the classes here are *thin row views*:

* :class:`SeriesForecaster` is a (bank, row) handle into a
  :class:`~repro.forecasting.bank.ForecasterBank`, which holds the actual
  level/trend/seasonal state for all tracked nodes in parallel arrays.  A
  standalone ``SeriesForecaster(config)`` transparently owns a private
  single-row bank, so the historical scalar API keeps working.
* :class:`NodeTimeSeries` keeps its actual/forecast windows in
  :class:`FloatRing` buffers (NumPy-backed fixed-capacity rings with a
  pure-Python fallback), so SPLIT's scaling and MERGE's aligned addition are
  single array operations instead of per-element Python loops.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Sequence

from repro._vector import load_kernels, load_numpy
from repro.exceptions import ConfigurationError
from repro.forecasting.bank import ForecasterBank
from repro.forecasting.bank import load_seasonal_state  # noqa: F401  (re-export)
from repro.core.config import ForecastConfig

_np = load_numpy()


class FloatRing:
    """Fixed-capacity float ring buffer (a vectorizable ``deque(maxlen=n)``).

    Appending beyond ``maxlen`` evicts the oldest element, exactly like a
    bounded deque; iteration runs oldest → newest.  With NumPy the payload
    lives in one float64 array, so the whole-series operations of ADA's
    adaptation — scaling by a split ratio, newest-aligned addition for
    merges — are single vectorized expressions; without NumPy the ring
    degrades to a plain bounded deque (the historical representation).
    """

    __slots__ = ("maxlen", "_buf", "_start", "_size")

    def __init__(self, maxlen: int):
        if maxlen < 1:
            raise ConfigurationError(f"ring capacity must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._start = 0
        self._size = 0
        if _np is not None:
            self._buf = _np.zeros(maxlen)
        else:
            self._buf = deque(maxlen=maxlen)

    @classmethod
    def _reserve(cls, maxlen: int) -> "FloatRing":
        """An empty ring over uninitialized storage (internal fast ctor).

        Slots outside the live window are never read, so callers that fully
        overwrite the region they expose may skip the zero fill.  The one
        exception is :meth:`aligned_add`'s output ring, which relies on
        zeroed storage and uses the public constructor.
        """
        ring = cls.__new__(cls)
        ring.maxlen = maxlen
        ring._start = 0
        ring._size = 0
        ring._buf = _np.empty(maxlen) if _np is not None else deque(maxlen=maxlen)
        return ring

    @classmethod
    def _view(cls, row_buf, size: int, maxlen: int) -> "FloatRing":
        """A ring over an existing 1-D buffer row (internal, NumPy mode).

        Used by :class:`NodeTimeSeries` to keep the actual/forecast windows
        as two rows of one fused ``(2, maxlen)`` array so that SPLIT/MERGE
        window arithmetic runs as single two-row kernels.  The ring behaves
        exactly like an owned ring; ``size`` elements starting at offset 0
        are live.
        """
        ring = cls.__new__(cls)
        ring.maxlen = maxlen
        ring._start = 0
        ring._size = size
        ring._buf = row_buf
        return ring

    @classmethod
    def from_values(cls, values, maxlen: int) -> "FloatRing":
        """A ring holding the last ``maxlen`` elements of ``values``."""
        if _np is not None:
            ring = cls._reserve(maxlen)
            tail = _np.asarray(values, dtype=_np.float64)[-maxlen:]
            ring._size = tail.shape[0]
            ring._buf[: ring._size] = tail
        else:
            ring = cls(maxlen)
            ring._buf.extend(float(v) for v in values)
        return ring

    def append(self, value: float) -> None:
        if _np is None:
            self._buf.append(value)
            return
        end = self._start + self._size
        if end >= self.maxlen:
            end -= self.maxlen
        self._buf[end] = value
        if self._size == self.maxlen:
            self._start += 1
            if self._start == self.maxlen:
                self._start = 0
        else:
            self._size += 1

    def __len__(self) -> int:
        return self._size if _np is not None else len(self._buf)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __getitem__(self, index: int) -> float:
        if _np is None:
            return self._buf[index]
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError("ring index out of range")
        pos = self._start + index
        if pos >= self.maxlen:
            pos -= self.maxlen
        return float(self._buf[pos])

    def __iter__(self) -> Iterator[float]:
        if _np is None:
            return iter(self._buf)
        return iter(self.tolist())

    def ordered(self):
        """The contents oldest-first as a fresh array (or list without NumPy)."""
        if _np is not None:
            end = self._start + self._size
            if end <= self.maxlen:
                return self._buf[self._start : end].copy()
            return _np.concatenate(
                [self._buf[self._start :], self._buf[: end - self.maxlen]]
            )
        return list(self._buf)

    def _ordered_view(self):
        """Oldest-first contents for read-only internal use (NumPy mode).

        A zero-copy view when the live window is contiguous; a fresh array
        only when it wraps.  Callers must not mutate the result or this ring
        while holding it.
        """
        end = self._start + self._size
        if end <= self.maxlen:
            return self._buf[self._start : end]
        return _np.concatenate(
            [self._buf[self._start :], self._buf[: end - self.maxlen]]
        )

    def tolist(self) -> list[float]:
        ordered = self.ordered()
        return ordered.tolist() if _np is not None else ordered

    def scaled(self, ratio: float) -> "FloatRing":
        """A new ring whose every element is multiplied by ``ratio``."""
        if _np is not None:
            ring = FloatRing._reserve(self.maxlen)
            ring._size = self._size
            _np.multiply(self._ordered_view(), ratio, out=ring._buf[: self._size])
        else:
            ring = FloatRing(self.maxlen)
            ring._buf.extend(v * ratio for v in self._buf)
        return ring

    def fold_newest(self, other: "FloatRing") -> "FloatRing":
        """``self + other`` aligned on the newest element, in place when the
        other ring fits inside this one's live window.

        Returns the ring holding the sum: ``self`` (mutated) on the in-place
        path, or a fresh ring from :meth:`aligned_add` when ``other`` is
        longer than this ring's live window.  Element sums are identical
        either way.
        """
        m = len(other)
        if _np is None or m > self._size:
            return self.aligned_add(other)
        if m:
            theirs = other._ordered_view()
            start = self._start + (self._size - m)
            if start >= self.maxlen:
                start -= self.maxlen
            end = start + m
            if end <= self.maxlen:
                self._buf[start:end] += theirs
            else:
                overlap = self.maxlen - start
                self._buf[start:] += theirs[:overlap]
                self._buf[: end - self.maxlen] += theirs[overlap:]
        return self

    def iscale(self, ratio: float) -> None:
        """Scale every live element by ``ratio`` in place.

        Same values as replacing the ring with :meth:`scaled`, without the
        allocation.  Only the live window is touched (storage outside it may
        be uninitialized, see :meth:`_reserve`).
        """
        if _np is None:
            self._buf = deque((v * ratio for v in self._buf), maxlen=self.maxlen)
            return
        end = self._start + self._size
        if end <= self.maxlen:
            self._buf[self._start : end] *= ratio
        else:
            self._buf[self._start :] *= ratio
            self._buf[: end - self.maxlen] *= ratio

    def aligned_add(self, other: "FloatRing") -> "FloatRing":
        """Element-wise sum of two rings aligned on their newest element.

        Like the historical ``deque(_aligned_sum(...), maxlen)``, a sum
        longer than this ring's capacity keeps only the newest ``maxlen``
        elements.
        """
        if _np is not None:
            mine = self._ordered_view()
            theirs = other._ordered_view()
        else:
            mine = self.ordered()
            theirs = other.ordered()
        length = max(len(mine), len(theirs))
        ring = FloatRing(self.maxlen)
        if _np is not None:
            if length <= self.maxlen:
                merged = ring._buf[:length]
                ring._size = length
            else:
                merged = _np.zeros(length)
            if len(mine):
                merged[length - len(mine) :] += mine
            if len(theirs):
                merged[length - len(theirs) :] += theirs
            if length > self.maxlen:
                ring._size = self.maxlen
                ring._buf[:] = merged[length - self.maxlen :]
        else:
            padded_mine = [0.0] * (length - len(mine)) + mine
            padded_theirs = [0.0] * (length - len(theirs)) + theirs
            ring._buf.extend(
                a + b for a, b in zip(padded_mine, padded_theirs)
            )
        return ring


class SeriesForecaster:
    """Linear, online forecaster attached to one heavy hitter's series.

    A thin view over one :class:`~repro.forecasting.bank.ForecasterBank` row:
    an EWMA level (always available) and an additive Holt-Winters model
    (activated once ``config.min_history`` observations have been seen).  All
    state is linear in the observed series, so :meth:`scaled` and
    :meth:`add_state` produce exactly the state that would have resulted from
    observing the scaled / summed series.

    Without an explicit ``bank`` the view owns a private single-row bank, so
    standalone use keeps the historical scalar behaviour; algorithms pass a
    shared bank so that all their nodes update in one vectorized call.
    """

    __slots__ = ("config", "bank", "row")

    def __init__(
        self,
        config: ForecastConfig,
        bank: ForecasterBank | None = None,
        row: int | None = None,
    ):
        self.config = config
        self.bank = ForecasterBank(config) if bank is None else bank
        self.row = self.bank.new_row() if row is None else row

    # ------------------------------------------------------------------
    # Forecaster protocol
    # ------------------------------------------------------------------
    @property
    def is_seasonal(self) -> bool:
        """Whether the Holt-Winters state is active (vs. the EWMA fallback)."""
        return self.bank.is_seasonal(self.row)

    @property
    def observations(self) -> int:
        return self.bank.observations(self.row)

    @property
    def seasonal_model(self):
        """The active seasonal model, materialized from the bank row.

        ``None`` until activation.  This is a read-only introspection *copy*:
        the live state is columnar (or a private scalar row), so mutating the
        returned object never affects the forecaster.
        """
        state = self.bank.row_state_dict(self.row)["seasonal"]
        return None if state is None else load_seasonal_state(state)

    def forecast(self) -> float:
        """One-step-ahead forecast for the next timeunit."""
        return self.bank.forecast(self.row)

    def observe(self, value: float) -> float:
        """Fold in the next actual value; return the forecast made for it."""
        return self.bank.observe(self.row, value)

    def seed_history(self, history: Sequence[float]) -> None:
        """Initialize from a full history series (oldest first)."""
        self.bank.seed_history(self.row, history)

    @classmethod
    def from_history_fast(
        cls,
        history: Sequence[float],
        config: ForecastConfig,
        bank: ForecasterBank | None = None,
    ) -> "SeriesForecaster":
        """Build a forecaster state from ``history`` without replaying it.

        The seasonal model is initialized directly from the last
        ``config.min_history`` values (its normal initialization path) and the
        EWMA fallback level from an exponential smoothing of the recent tail.
        This is what the reference-series correction uses after a split: it
        costs O(seasonal period) instead of O(window) Holt-Winters updates and
        yields the same forecasts going forward up to initialization
        transients.
        """
        forecaster = cls(config, bank=bank)
        forecaster.bank.seed_fast(forecaster.row, history)
        return forecaster

    # ------------------------------------------------------------------
    # Linearity operations used by SPLIT / MERGE
    # ------------------------------------------------------------------
    def scaled(self, ratio: float) -> "SeriesForecaster":
        """State of a forecaster that would have observed ``ratio * series``.

        The clone lives in the same bank (a new row)."""
        return SeriesForecaster(
            self.config, self.bank, self.bank.clone_row(self.row, ratio)
        )

    def add_state(self, other: "SeriesForecaster") -> None:
        """Fold ``other``'s state into this forecaster (series addition)."""
        self.bank.add_state(self.row, other.bank, other.row)

    def copy(self) -> "SeriesForecaster":
        return self.scaled(1.0)

    def release(self) -> None:
        """Return the row to the bank; the view must not be used afterwards."""
        self.bank.free_row(self.row)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot (the shared :class:`ForecastConfig` is stored
        once at the session level, not per forecaster)."""
        return self.bank.row_state_dict(self.row)

    @classmethod
    def from_state_dict(
        cls,
        state: dict,
        config: ForecastConfig,
        bank: ForecasterBank | None = None,
    ) -> "SeriesForecaster":
        """Rebuild a forecaster from :meth:`state_dict` output."""
        forecaster = cls(config, bank=bank)
        forecaster.bank.load_row_state(forecaster.row, state)
        return forecaster


class NodeTimeSeries:
    """Aligned actual / forecast series for one heavy hitter node.

    Parameters
    ----------
    length:
        ℓ, the maximum number of timeunits retained.
    forecast_config:
        Parameters of the forecasting model attached to the series.
    bank:
        Shared :class:`~repro.forecasting.bank.ForecasterBank` the node's
        forecaster row should live in; omitted for standalone use.
    forecaster:
        Pre-built forecaster view to adopt instead of allocating a fresh row
        (used internally by :meth:`scaled`).
    """

    def __init__(
        self,
        length: int,
        forecast_config: ForecastConfig,
        bank: ForecasterBank | None = None,
        forecaster: SeriesForecaster | None = None,
    ):
        if length < 1:
            raise ConfigurationError(f"series length must be >= 1, got {length}")
        self.length = length
        self.forecast_config = forecast_config
        if _np is not None:
            #: Fused window storage: actual (row 0) and forecast (row 1) of
            #: one ``(2, length)`` array, so the adaptation's whole-window
            #: operations run as single two-row kernels.  ``None`` whenever
            #: the rings stopped sharing aligned storage (restores from
            #: ragged snapshots, legacy merges, pickling) — every fused fast
            #: path falls back to the per-ring operations then.
            self._base = _np.empty((2, length))
            self.actual = FloatRing._view(self._base[0], 0, length)
            self.forecast = FloatRing._view(self._base[1], 0, length)
        else:
            self._base = None
            self.actual = FloatRing(length)
            self.forecast = FloatRing(length)
        self.forecaster = (
            SeriesForecaster(forecast_config, bank=bank)
            if forecaster is None
            else forecaster
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_history(
        cls, history: Sequence[float], length: int, forecast_config: ForecastConfig
    ) -> "NodeTimeSeries":
        """Build a series by replaying ``history`` (oldest first)."""
        series = cls(length, forecast_config)
        series.extend(history)
        return series

    # ------------------------------------------------------------------
    # Online updates
    # ------------------------------------------------------------------
    def append(self, value: float) -> float:
        """Append the newest actual value; returns the forecast made for it."""
        predicted = self.forecaster.observe(value)
        self.actual.append(float(value))
        self.forecast.append(predicted)
        return predicted

    def record(self, value: float, predicted: float) -> None:
        """Push an (actual, forecast) pair whose forecaster update already ran.

        This is the batched-close entry point: the algorithm updates all
        forecaster rows with one :meth:`ForecasterBank.observe_rows` call and
        then records each node's value/forecast pair here, instead of
        triggering N scalar observes through :meth:`append`.
        """
        actual = self.actual
        forecast = self.forecast
        if (
            self._base is not None
            and actual._start == forecast._start
            and actual._size == forecast._size
        ):
            # Fused storage: one slot computation covers both windows.
            maxlen = actual.maxlen
            pos = actual._start + actual._size
            if pos >= maxlen:
                pos -= maxlen
            base = self._base
            base[0, pos] = value
            base[1, pos] = predicted
            if actual._size == maxlen:
                start = actual._start + 1
                if start == maxlen:
                    start = 0
                actual._start = start
                forecast._start = start
            else:
                actual._size += 1
                forecast._size = actual._size
            return
        actual.append(float(value))
        forecast.append(predicted)

    def extend(self, values: Sequence[float]) -> list[float]:
        """Append several timeunit values at once (oldest first).

        This is the series-level entry point of the batch ingestion path: a
        columnar batch reduces to one aggregated count per (node, timeunit),
        so a node series absorbs a whole batch with one call instead of one
        per record.  The forecaster update is inherently sequential (each
        forecast conditions on the previous observation), so the values are
        folded in order; returns the forecast made for each value.
        """
        return [self.append(value) for value in values]

    @property
    def latest_actual(self) -> float:
        if not self.actual:
            raise ConfigurationError("the series has no observations yet")
        return self.actual[-1]

    @property
    def latest_forecast(self) -> float:
        if not self.forecast:
            raise ConfigurationError("the series has no observations yet")
        return self.forecast[-1]

    def next_forecast(self) -> float:
        """Forecast for the not-yet-observed next timeunit."""
        return self.forecaster.forecast()

    def __len__(self) -> int:
        return len(self.actual)

    # ------------------------------------------------------------------
    # SPLIT / MERGE support
    # ------------------------------------------------------------------
    @classmethod
    def _assemble(
        cls,
        length: int,
        forecast_config: ForecastConfig,
        actual: FloatRing,
        forecast: FloatRing,
        forecaster: SeriesForecaster,
        base=None,
    ) -> "NodeTimeSeries":
        """Internal constructor from pre-built parts (skips ring allocation)."""
        series = cls.__new__(cls)
        series.length = length
        series.forecast_config = forecast_config
        series._base = base
        series.actual = actual
        series.forecast = forecast
        series.forecaster = forecaster
        return series

    # Pickling / deepcopy: ring buffers that are views of the fused base
    # serialize as independent arrays, so the base must be dropped — the
    # restored series is fully functional, it just takes the per-ring paths
    # until a fused rebuild (e.g. the next reference correction).
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_base"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def scaled(self, ratio: float) -> "NodeTimeSeries":
        """A copy whose actual/forecast series and state are scaled by ``ratio``."""
        return NodeTimeSeries._assemble(
            self.length,
            self.forecast_config,
            self.actual.scaled(ratio),
            self.forecast.scaled(ratio),
            self.forecaster.scaled(ratio),
        )

    def _fused_aligned(self) -> bool:
        """Whether the fused two-row window kernels may run on this series."""
        return (
            self._base is not None
            and self.actual._start == self.forecast._start
            and self.actual._size == self.forecast._size
        )

    def _split_windows(self, ratio: float):
        """Child ``(actual, forecast, base)`` windows holding the ``ratio``
        share; this series' windows keep ``1 - ratio`` in place."""
        rest = 1.0 - ratio
        if self._fused_aligned():
            actual = self.actual
            size = actual._size
            maxlen = actual.maxlen
            base = self._base
            child_base = _np.empty((2, maxlen))
            start = actual._start
            kernels = load_kernels()
            if kernels is not None:
                kernels.split_windows(
                    base, child_base, start, size, maxlen, ratio
                )
                return (
                    FloatRing._view(child_base[0], size, maxlen),
                    FloatRing._view(child_base[1], size, maxlen),
                    child_base,
                )
            end = start + size
            if end <= maxlen:
                live = base[:, start:end]
                _np.multiply(live, ratio, out=child_base[:, :size])
                live *= rest
            else:
                head = base[:, start:]
                tail = base[:, : end - maxlen]
                k = maxlen - start
                _np.multiply(head, ratio, out=child_base[:, :k])
                _np.multiply(tail, ratio, out=child_base[:, k:size])
                head *= rest
                tail *= rest
            return (
                FloatRing._view(child_base[0], size, maxlen),
                FloatRing._view(child_base[1], size, maxlen),
                child_base,
            )
        child_actual = self.actual.scaled(ratio)
        child_forecast = self.forecast.scaled(ratio)
        self.actual.iscale(rest)
        self.forecast.iscale(rest)
        return child_actual, child_forecast, None

    def split_inplace(self, ratio: float, child_row: "int | None" = None) -> "NodeTimeSeries":
        """SPLIT this series in place: a new series takes the ``ratio`` share,
        this one keeps ``1 - ratio``.

        Bit-identical to the historical ``scaled(ratio)`` /
        ``scaled(1 - ratio)`` / ``release()`` triple of the adaptation
        cascade, with this object (and its forecaster row) surviving in
        place — one row allocation instead of two plus a free.  Pass
        ``child_row`` when the forecaster-state split already ran through a
        batched :meth:`~repro.forecasting.bank.ForecasterBank.split_rows_many`
        call.
        """
        bank = self.forecaster.bank
        if child_row is None:
            child_row = bank.split_row(self.forecaster.row, ratio)
        child_actual, child_forecast, child_base = self._split_windows(ratio)
        return NodeTimeSeries._assemble(
            self.length,
            self.forecast_config,
            child_actual,
            child_forecast,
            SeriesForecaster(self.forecast_config, bank, child_row),
            base=child_base,
        )

    def merge_windows_from(self, other: "NodeTimeSeries") -> None:
        """Fold only the actual/forecast windows of ``other`` into this series.

        The forecaster-state fold is the caller's responsibility — ADA's
        batched apply path folds many forecaster rows with one
        :meth:`~repro.forecasting.bank.ForecasterBank.merge_rows_many` call
        and uses this to keep the window arithmetic in cascade order.
        """
        if self._fused_aligned() and other._fused_aligned():
            mine = self.actual
            theirs_ring = other.actual
            m = theirs_ring._size
            n = mine._size
            if m == 0:
                return
            ob = other._base
            o_start = theirs_ring._start
            if m <= n:
                kernels = load_kernels()
                if kernels is not None:
                    kernels.merge_windows(
                        self._base, mine._start, n, ob, o_start, m,
                        mine.maxlen, theirs_ring.maxlen,
                    )
                    return
            o_end = o_start + m
            if o_end <= theirs_ring.maxlen:
                theirs = ob[:, o_start:o_end]
            else:
                theirs = _np.concatenate(
                    [ob[:, o_start:], ob[:, : o_end - theirs_ring.maxlen]],
                    axis=1,
                )
            base = self._base
            maxlen = mine.maxlen
            if m <= n:
                # In place: add theirs into the newest-m slots (≤ 2 blocks).
                start = mine._start + (n - m)
                if start >= maxlen:
                    start -= maxlen
                end = start + m
                if end <= maxlen:
                    base[:, start:end] += theirs
                else:
                    k = maxlen - start
                    base[:, start:] += theirs[:, :k]
                    base[:, : end - maxlen] += theirs[:, k:]
            else:
                # Growth: the sum is m long — rebuild fused storage so the
                # series keeps its two-row layout (sums identical to the
                # newest-aligned ring addition).
                new_base = _np.empty((2, maxlen))
                new_base[:, :m] = theirs
                if n:
                    start = mine._start
                    end = start + n
                    off = m - n
                    if end <= maxlen:
                        new_base[:, off:m] += base[:, start:end]
                    else:
                        k = maxlen - start
                        new_base[:, off : off + k] += base[:, start:]
                        new_base[:, off + k : m] += base[:, : end - maxlen]
                self._base = new_base
                self.actual = FloatRing._view(new_base[0], m, maxlen)
                self.forecast = FloatRing._view(new_base[1], m, maxlen)
            return
        actual = self.actual.fold_newest(other.actual)
        forecast = self.forecast.fold_newest(other.forecast)
        if actual is not self.actual or forecast is not self.forecast:
            self._base = None
        self.actual = actual
        self.forecast = forecast

    def merge_from(self, other: "NodeTimeSeries") -> None:
        """Add ``other``'s series into this one element-wise (newest aligned)."""
        self.actual = self.actual.aligned_add(other.actual)
        self.forecast = self.forecast.aligned_add(other.forecast)
        self._base = None
        self.forecaster.add_state(other.forecaster)

    def replace_actual(self, values: Sequence[float]) -> None:
        """Overwrite the actual series (used by the reference-series correction).

        The forecaster state is rebuilt from the corrected history (via the
        fast initialization path) so that future forecasts reflect the
        corrected series.  The historical forecast column is reset to the
        corrected actuals themselves -- only the forecast for the upcoming
        timeunits matters for detection, and past forecasts of a re-derived
        series are not well defined anyway.
        """
        if _np is not None and isinstance(values, _np.ndarray):
            trimmed = values[-self.length :]
        else:
            trimmed = list(values)[-self.length :]
        if _np is not None:
            size = len(trimmed)
            base = _np.empty((2, self.length))
            base[0, :size] = trimmed
            base[1, :size] = base[0, :size]
            self._base = base
            self.actual = FloatRing._view(base[0], size, self.length)
            self.forecast = FloatRing._view(base[1], size, self.length)
        else:
            self._base = None
            self.actual = FloatRing.from_values(trimmed, self.length)
            self.forecast = FloatRing.from_values(trimmed, self.length)
        bank = self.forecaster.bank
        self.forecaster.release()
        self.forecaster = SeriesForecaster.from_history_fast(
            trimmed, self.forecast_config, bank=bank
        )

    def release(self) -> None:
        """Return the forecaster row to its bank when dropping the series."""
        self.forecaster.release()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of the series buffers and forecaster state."""
        return {
            "length": self.length,
            "actual": self.actual.tolist(),
            "forecast": self.forecast.tolist(),
            "forecaster": self.forecaster.state_dict(),
        }

    @classmethod
    def from_state_dict(
        cls,
        state: dict,
        forecast_config: ForecastConfig,
        bank: ForecasterBank | None = None,
    ) -> "NodeTimeSeries":
        """Rebuild a node series from :meth:`state_dict` output."""
        length = int(state["length"])
        forecaster = SeriesForecaster.from_state_dict(
            state["forecaster"], forecast_config, bank=bank
        )
        series = cls(length, forecast_config, forecaster=forecaster)
        actual = [float(v) for v in state["actual"]]
        forecast = [float(v) for v in state["forecast"]]
        if _np is not None and len(actual) == len(forecast):
            size = min(len(actual), length)
            base = _np.empty((2, length))
            base[0, :size] = actual[-size:] if size else []
            base[1, :size] = forecast[-size:] if size else []
            series._base = base
            series.actual = FloatRing._view(base[0], size, length)
            series.forecast = FloatRing._view(base[1], size, length)
        else:
            series._base = None
            series.actual = FloatRing.from_values(actual, length)
            series.forecast = FloatRing.from_values(forecast, length)
        return series


class MultiScaleTimeSeries:
    """Time series maintained at several geometric time scales (Fig. 10).

    The i-th scale aggregates ``lam**i`` base timeunits (0-indexed; the
    paper's scale ``i`` is ``lam**(i-1) * delta``).  Appending a value to the
    base scale cascades: whenever a scale has accumulated ``lam`` new values
    they are summed and appended to the next coarser scale.  Each scale keeps
    at most ``length`` values plus the ``lam - 1`` values awaiting promotion,
    matching the paper's bounded-memory claim, and carries an EWMA forecast
    series exactly as in the pseudocode.
    """

    def __init__(self, length: int, num_scales: int, lam: int, alpha: float = 0.3):
        if length < 1:
            raise ConfigurationError("length must be >= 1")
        if num_scales < 1:
            raise ConfigurationError("num_scales (eta) must be >= 1")
        if lam < 2:
            raise ConfigurationError("lam (lambda) must be >= 2")
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        self.length = length
        self.num_scales = num_scales
        self.lam = lam
        self.alpha = alpha
        self.actual: list[list[float]] = [[] for _ in range(num_scales)]
        self.forecast: list[list[float]] = [[] for _ in range(num_scales)]
        self._update_calls = 0

    @property
    def update_calls(self) -> int:
        """Total number of per-scale updates performed (for the Θ(1) amortized check)."""
        return self._update_calls

    def append(self, value: float) -> None:
        """Append one base-timeunit value, cascading to coarser scales."""
        self._update(float(value), 0)

    def _update(self, value: float, scale: int) -> None:
        self._update_calls += 1
        forecasts = self.forecast[scale]
        previous = forecasts[-1] if forecasts else value
        forecasts.append(self.alpha * value + (1 - self.alpha) * previous)
        actuals = self.actual[scale]
        actuals.append(value)
        size = len(actuals)
        if scale + 1 < self.num_scales and size % self.lam == 0:
            promoted = sum(actuals[-self.lam :])
            self._update(promoted, scale + 1)
        limit = self.length + self.lam
        if size >= limit:
            del actuals[: self.lam]
            del forecasts[: self.lam]

    def series_at_scale(self, scale: int) -> list[float]:
        """The retained actual series at ``scale`` (0 = base timeunits)."""
        if not 0 <= scale < self.num_scales:
            raise ConfigurationError(
                f"scale must be in [0, {self.num_scales}), got {scale}"
            )
        return list(self.actual[scale])

    def forecast_at_scale(self, scale: int) -> list[float]:
        if not 0 <= scale < self.num_scales:
            raise ConfigurationError(
                f"scale must be in [0, {self.num_scales}), got {scale}"
            )
        return list(self.forecast[scale])
