"""Synthetic operational-data generation.

The paper evaluates on proprietary AT&T customer-care call logs (CCD) and
set-top-box crash logs (SCD).  This package generates laptop-scale synthetic
equivalents with the published characteristics -- hierarchy shapes (Table II),
ticket-type mix (Table I), diurnal/weekly seasonality (Fig. 2, Fig. 11),
sparsity and volatility (Fig. 1) -- plus exact ground-truth anomaly
injections for the detection-accuracy experiments.
"""

from repro.datagen.anomalies import AnomalyInjector, InjectedAnomaly, random_injection_plan
from repro.datagen.arrival import (
    SeasonalRateModel,
    hour_of_peak,
    spread_uniformly,
    zipf_weights,
)
from repro.datagen.ccd import CCD_TICKET_MIX, CCDConfig, CCDDataset, make_ccd_dataset
from repro.datagen.generator import TraceGenerator, counts_per_timeunit
from repro.datagen.scd import SCDConfig, SCDDataset, make_scd_dataset

__all__ = [
    "SeasonalRateModel",
    "zipf_weights",
    "spread_uniformly",
    "hour_of_peak",
    "InjectedAnomaly",
    "AnomalyInjector",
    "random_injection_plan",
    "TraceGenerator",
    "counts_per_timeunit",
    "CCDConfig",
    "CCDDataset",
    "CCD_TICKET_MIX",
    "make_ccd_dataset",
    "SCDConfig",
    "SCDDataset",
    "make_scd_dataset",
]
