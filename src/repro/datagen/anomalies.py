"""Ground-truth anomaly injection for synthetic traces.

The paper validates Tiresias against a reference anomaly set produced by the
ISP's operations team.  The synthetic equivalent is exact ground truth: the
generator injects extra call/crash bursts at chosen hierarchy nodes and time
ranges, and records precisely where and when it did so.  The evaluation then
scores detections against these injections (Table VI style metrics).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro._types import CategoryPath, Timestamp
from repro.exceptions import DataGenerationError
from repro.hierarchy.node import HierarchyNode
from repro.hierarchy.tree import HierarchyTree
from repro.streaming.clock import SimulationClock
from repro.streaming.record import OperationalRecord


@dataclass(frozen=True)
class InjectedAnomaly:
    """Specification (and ground-truth record) of one injected anomaly.

    Attributes
    ----------
    node_path:
        Hierarchy node affected by the event (records are generated at leaves
        of this node's subtree).
    start:
        Event start timestamp.
    duration:
        Event duration in seconds (the paper observes spikes from <30 minutes
        to >5 hours).
    extra_rate:
        Additional events per second attributable to the anomaly while it is
        active.
    label:
        Free-form description (e.g. ``"vho-outage"``).
    """

    node_path: CategoryPath
    start: Timestamp
    duration: float
    extra_rate: float
    label: str = "injected"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise DataGenerationError("anomaly duration must be positive")
        if self.extra_rate <= 0:
            raise DataGenerationError("anomaly extra_rate must be positive")

    @property
    def end(self) -> Timestamp:
        return self.start + self.duration

    def active_at(self, timestamp: Timestamp) -> bool:
        return self.start <= timestamp < self.end

    def timeunits(self, clock: SimulationClock) -> range:
        """Indices of the timeunits the anomaly overlaps."""
        first = clock.timeunit_of(self.start)
        last = clock.timeunit_of(self.end - 1e-9)
        return range(first, last + 1)


@dataclass
class AnomalyInjector:
    """Generates the extra records for a set of injected anomalies.

    Parameters
    ----------
    tree:
        The hierarchy the anomalies live in; the affected node's leaves are
        sampled uniformly for each extra record.
    anomalies:
        The injection plan.
    seed:
        RNG seed for reproducible injections.
    """

    tree: HierarchyTree
    anomalies: list[InjectedAnomaly] = field(default_factory=list)
    seed: int = 7

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        for anomaly in self.anomalies:
            if tuple(anomaly.node_path) not in self.tree:
                raise DataGenerationError(
                    f"anomaly node {anomaly.node_path!r} is not in the hierarchy"
                )

    def reset_rng(self) -> None:
        """Rewind the injection RNG so the next trace replay is identical."""
        self._rng = random.Random(self.seed)

    def add(self, anomaly: InjectedAnomaly) -> None:
        if tuple(anomaly.node_path) not in self.tree:
            raise DataGenerationError(
                f"anomaly node {anomaly.node_path!r} is not in the hierarchy"
            )
        self.anomalies.append(anomaly)

    # ------------------------------------------------------------------
    def _leaves_under(self, path: CategoryPath) -> list[HierarchyNode]:
        node = self.tree.node(tuple(path))
        return list(node.iter_leaves())

    def records_for_unit(
        self, unit_start: Timestamp, clock: SimulationClock
    ) -> list[OperationalRecord]:
        """Extra records contributed by active anomalies in one timeunit."""
        unit_end = unit_start + clock.delta
        extra: list[OperationalRecord] = []
        for anomaly in self.anomalies:
            overlap_start = max(unit_start, anomaly.start)
            overlap_end = min(unit_end, anomaly.end)
            overlap = overlap_end - overlap_start
            if overlap <= 0:
                continue
            expected = anomaly.extra_rate * overlap
            count = int(expected)
            if self._rng.random() < expected - count:
                count += 1
            if count == 0:
                continue
            leaves = self._leaves_under(anomaly.node_path)
            if not leaves:
                continue
            for _ in range(count):
                leaf = self._rng.choice(leaves)
                timestamp = overlap_start + self._rng.random() * overlap
                extra.append(
                    OperationalRecord.create(
                        timestamp, leaf.path, injected=True, label=anomaly.label
                    )
                )
        return extra

    # ------------------------------------------------------------------
    def ground_truth(self, clock: SimulationClock) -> set[tuple[CategoryPath, int]]:
        """(node_path, timeunit) pairs that are anomalous by construction."""
        truth: set[tuple[CategoryPath, int]] = set()
        for anomaly in self.anomalies:
            for unit in anomaly.timeunits(clock):
                truth.add((tuple(anomaly.node_path), unit))
        return truth


def random_injection_plan(
    tree: HierarchyTree,
    clock: SimulationClock,
    trace_duration: float,
    count: int,
    min_depth: int = 1,
    max_depth: int | None = None,
    extra_rate_range: tuple[float, float] = (0.02, 0.2),
    duration_range: tuple[float, float] = (1800.0, 14400.0),
    seed: int = 11,
    warmup: float = 0.0,
) -> list[InjectedAnomaly]:
    """A reproducible random plan of ``count`` injected anomalies.

    Anomalies start after ``warmup`` seconds (so the detector's forecasting
    models have history) and are placed at random nodes with depth between
    ``min_depth`` and ``max_depth`` -- the paper's new anomalies concentrate
    below the first network level, so plans typically span several depths.
    """
    if count < 0:
        raise DataGenerationError("count must be >= 0")
    if trace_duration <= warmup:
        raise DataGenerationError("trace_duration must exceed the warmup period")
    rng = random.Random(seed)
    nodes = [
        node
        for node in tree.iter_nodes()
        if node.depth >= min_depth and (max_depth is None or node.depth <= max_depth)
    ]
    if not nodes:
        raise DataGenerationError("no hierarchy nodes match the requested depth range")
    plan: list[InjectedAnomaly] = []
    for i in range(count):
        node = rng.choice(nodes)
        duration = rng.uniform(*duration_range)
        latest_start = max(warmup, trace_duration - duration)
        start = rng.uniform(warmup, latest_start)
        extra_rate = rng.uniform(*extra_rate_range)
        plan.append(
            InjectedAnomaly(
                node_path=node.path,
                start=start,
                duration=duration,
                extra_rate=extra_rate,
                label=f"injected-{i}",
            )
        )
    plan.sort(key=lambda a: a.start)
    return plan
