"""Seasonal arrival-rate models for synthetic operational data (§II-B).

The paper's measurement study shows three properties the generators must
reproduce: a strong diurnal cycle (peak around 4 PM, trough around 4 AM), a
weekly cycle with quieter weekends (strong in CCD, weak in SCD), and high
volatility (the 90th percentile of the per-timeunit count is ~35x the 10th
percentile at the CCD root).  The rate model below multiplies a base rate by
diurnal, weekly and noise factors; per-timeunit counts are drawn from a
Poisson distribution with that rate.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro._types import Timestamp
from repro.exceptions import ConfigurationError
from repro.streaming.clock import DAY, HOUR, SimulationClock


@dataclass(frozen=True)
class SeasonalRateModel:
    """Time-varying arrival rate (events per second).

    Parameters
    ----------
    base_rate:
        Mean arrival rate in events/second averaged over a full week.
    diurnal_strength:
        Peak-to-mean amplitude of the daily cycle in [0, 1); 0 disables it.
    peak_hour:
        Local hour of the diurnal maximum (the paper observes ~16:00).
    weekly_strength:
        Relative reduction of the rate on weekends in [0, 1); 0 disables the
        weekly cycle.
    volatility:
        Standard deviation of multiplicative log-normal noise applied per
        timeunit, producing the paper's bursty, volatile counts.
    """

    base_rate: float
    diurnal_strength: float = 0.75
    peak_hour: float = 16.0
    weekly_strength: float = 0.35
    volatility: float = 0.25

    def __post_init__(self) -> None:
        if self.base_rate < 0:
            raise ConfigurationError("base_rate must be non-negative")
        if not 0.0 <= self.diurnal_strength < 1.0:
            raise ConfigurationError("diurnal_strength must be in [0, 1)")
        if not 0.0 <= self.weekly_strength < 1.0:
            raise ConfigurationError("weekly_strength must be in [0, 1)")
        if not 0.0 <= self.peak_hour < 24.0:
            raise ConfigurationError("peak_hour must be in [0, 24)")
        if self.volatility < 0:
            raise ConfigurationError("volatility must be non-negative")

    # ------------------------------------------------------------------
    def seasonal_factor(self, timestamp: Timestamp, clock: SimulationClock) -> float:
        """Deterministic diurnal × weekly modulation at ``timestamp``."""
        hour = clock.hour_of_day(timestamp)
        phase = 2.0 * math.pi * (hour - self.peak_hour) / 24.0
        diurnal = 1.0 + self.diurnal_strength * math.cos(phase)
        weekly = 1.0 - (self.weekly_strength if clock.is_weekend(timestamp) else 0.0)
        return diurnal * weekly

    def rate_at(self, timestamp: Timestamp, clock: SimulationClock) -> float:
        """Expected arrival rate (events/second) at ``timestamp``."""
        return self.base_rate * self.seasonal_factor(timestamp, clock)

    def expected_count(
        self, unit_start: Timestamp, clock: SimulationClock
    ) -> float:
        """Expected number of events in the timeunit starting at ``unit_start``."""
        midpoint = unit_start + clock.delta / 2.0
        return self.rate_at(midpoint, clock) * clock.delta

    def sample_count(
        self, unit_start: Timestamp, clock: SimulationClock, rng: random.Random
    ) -> int:
        """Sample a per-timeunit event count (Poisson with log-normal noise)."""
        mean = self.expected_count(unit_start, clock)
        if mean <= 0:
            return 0
        if self.volatility > 0:
            noise = math.exp(rng.gauss(-0.5 * self.volatility ** 2, self.volatility))
            mean *= noise
        return _poisson(mean, rng)


def _poisson(mean: float, rng: random.Random) -> int:
    """Poisson sample; uses a normal approximation for large means."""
    if mean <= 0:
        return 0
    if mean > 50.0:
        return max(0, int(round(rng.gauss(mean, math.sqrt(mean)))))
    # Knuth's algorithm for small means.
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def spread_uniformly(
    count: int, unit_start: Timestamp, delta: float, rng: random.Random
) -> list[Timestamp]:
    """Timestamps for ``count`` events spread uniformly over one timeunit."""
    return sorted(unit_start + rng.random() * delta for _ in range(count))


def zipf_weights(count: int, exponent: float = 1.1) -> list[float]:
    """Normalized Zipf popularity weights for ``count`` categories.

    The paper's Fig. 1 CCDFs show heavy-tailed per-node activity; sampling
    leaf categories with Zipf weights reproduces that sparsity (most leaves
    see almost no records, a few see many).
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    if exponent < 0:
        raise ConfigurationError("exponent must be non-negative")
    raw = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def hour_of_peak(series: list[float], units_per_day: int) -> float:
    """Average hour of day at which ``series`` peaks (diagnostic for Fig. 2)."""
    if units_per_day <= 0 or not series:
        raise ConfigurationError("need a non-empty series and positive units_per_day")
    sums = [0.0] * units_per_day
    counts = [0] * units_per_day
    for index, value in enumerate(series):
        slot = index % units_per_day
        sums[slot] += value
        counts[slot] += 1
    averages = [s / c if c else 0.0 for s, c in zip(sums, counts)]
    peak_slot = max(range(units_per_day), key=lambda i: averages[i])
    return peak_slot * 24.0 / units_per_day
