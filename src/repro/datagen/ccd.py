"""Synthetic Customer Care Call Dataset (CCD) generator.

Substitutes the paper's proprietary AT&T customer care call logs (§II-A) with
a generator that reproduces the published characteristics:

* the first-level trouble-category mix of Table I;
* a 5-level trouble-description hierarchy and a 5-level network-path hierarchy
  with the Table II typical degrees;
* strong diurnal seasonality (peak ≈ 4 PM, trough ≈ 4 AM) and a weekly cycle
  with quieter weekends (Fig. 2(a), Fig. 11(a));
* sparse, heavy-tailed per-node activity (Fig. 1(a)-(b)); and
* injected spike anomalies with exact ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.datagen.anomalies import InjectedAnomaly, random_injection_plan
from repro.datagen.arrival import SeasonalRateModel
from repro.datagen.generator import TraceGenerator
from repro.exceptions import ConfigurationError
from repro.hierarchy.builders import build_ccd_network_tree, build_ccd_trouble_tree
from repro.hierarchy.tree import HierarchyTree
from repro.streaming.clock import DAY, HOUR, SimulationClock

#: First-level ticket-type shares from the paper's Table I (percent).
CCD_TICKET_MIX: dict[str, float] = {
    "TV": 39.59,
    "All Products": 26.71,
    "Internet": 10.04,
    "Wireless": 9.26,
    "Phone": 8.46,
    "Email": 3.59,
    "Remote Control": 2.35,
}


@dataclass(frozen=True)
class CCDConfig:
    """Configuration of a synthetic CCD trace.

    Parameters
    ----------
    dimension:
        ``"trouble"`` for the trouble-description hierarchy or ``"network"``
        for the SHO/VHO/IO/CO/DSLAM network-path hierarchy.
    duration_days:
        Length of the generated trace.
    delta_seconds:
        Timeunit width Δ (the paper uses 15 minutes).
    base_rate_per_hour:
        Mean number of performance-related calls per hour (the real dataset
        sees >300,000 calls/day including non-performance calls; the default
        keeps laptop runs fast while staying well above the heavy hitter
        threshold regime).
    network_scale:
        Scale factor for the network hierarchy width (1.0 = paper size).
    num_anomalies:
        Number of injected ground-truth anomalies.
    anomaly_warmup_days:
        No anomalies are injected during the first this-many days, leaving a
        clean history for forecaster warm-up.
    seed:
        Master seed controlling the hierarchy, trace and injections.
    """

    dimension: str = "trouble"
    duration_days: float = 14.0
    delta_seconds: float = 900.0
    base_rate_per_hour: float = 240.0
    network_scale: float = 0.2
    num_anomalies: int = 6
    anomaly_warmup_days: float = 3.0
    seed: int = 42
    diurnal_strength: float = 0.75
    weekly_strength: float = 0.35
    volatility: float = 0.25
    zipf_exponent: float = 1.1

    def __post_init__(self) -> None:
        if self.dimension not in ("trouble", "network"):
            raise ConfigurationError("dimension must be 'trouble' or 'network'")
        if self.duration_days <= 0:
            raise ConfigurationError("duration_days must be positive")
        if self.base_rate_per_hour < 0:
            raise ConfigurationError("base_rate_per_hour must be non-negative")
        if self.num_anomalies < 0:
            raise ConfigurationError("num_anomalies must be >= 0")
        if self.anomaly_warmup_days < 0:
            raise ConfigurationError("anomaly_warmup_days must be >= 0")

    @property
    def duration_seconds(self) -> float:
        return self.duration_days * DAY


@dataclass
class CCDDataset:
    """A generated CCD trace together with its hierarchy and ground truth."""

    config: CCDConfig
    tree: HierarchyTree
    clock: SimulationClock
    generator: TraceGenerator
    anomalies: Sequence[InjectedAnomaly] = field(default_factory=tuple)

    def records(self):
        """Iterator over the trace's records in time order."""
        return self.generator.generate(self.config.duration_seconds)

    def record_list(self):
        return self.generator.generate_list(self.config.duration_seconds)

    def ground_truth(self):
        return self.generator.ground_truth()

    @property
    def num_timeunits(self) -> int:
        return int(self.config.duration_seconds // self.config.delta_seconds)


def make_ccd_dataset(config: CCDConfig | None = None) -> CCDDataset:
    """Build a synthetic CCD dataset from ``config`` (defaults are sensible)."""
    config = config or CCDConfig()
    if config.dimension == "trouble":
        tree = build_ccd_trouble_tree(seed=config.seed)
        top_weights = CCD_TICKET_MIX
    else:
        tree = build_ccd_network_tree(seed=config.seed, scale=config.network_scale)
        top_weights = None

    clock = SimulationClock(
        delta=config.delta_seconds,
        epoch=0.0,
        epoch_weekday=5,  # the paper's CCD window starts on a Saturday
        epoch_hour=0.0,
    )
    rate_model = SeasonalRateModel(
        base_rate=config.base_rate_per_hour / HOUR,
        diurnal_strength=config.diurnal_strength,
        peak_hour=16.0,
        weekly_strength=config.weekly_strength,
        volatility=config.volatility,
    )
    anomalies = (
        random_injection_plan(
            tree,
            clock,
            trace_duration=config.duration_seconds,
            count=config.num_anomalies,
            min_depth=1,
            seed=config.seed + 13,
            warmup=config.anomaly_warmup_days * DAY,
        )
        if config.num_anomalies
        else []
    )
    generator = TraceGenerator(
        tree=tree,
        rate_model=rate_model,
        clock=clock,
        top_level_weights=top_weights,
        zipf_exponent=config.zipf_exponent,
        seed=config.seed,
        anomalies=anomalies,
    )
    return CCDDataset(
        config=config,
        tree=tree,
        clock=clock,
        generator=generator,
        anomalies=tuple(anomalies),
    )
