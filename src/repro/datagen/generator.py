"""Generic hierarchical trace generator.

Produces a stream of :class:`~repro.streaming.record.OperationalRecord` items
over an arbitrary hierarchy: per timeunit, a seasonal Poisson model draws the
total record count, leaf categories are sampled from a heavy-tailed (Zipf)
popularity distribution optionally shaped by per-top-level-category weights
(Table I), and an :class:`~repro.datagen.anomalies.AnomalyInjector` adds the
ground-truth anomalous bursts.

The CCD and SCD dataset generators are thin configurations of this class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro._types import CategoryPath
from repro.datagen.anomalies import AnomalyInjector, InjectedAnomaly
from repro.datagen.arrival import SeasonalRateModel, spread_uniformly, zipf_weights
from repro.exceptions import DataGenerationError
from repro.hierarchy.tree import HierarchyTree
from repro.streaming.clock import SimulationClock
from repro.streaming.record import OperationalRecord


@dataclass
class TraceGenerator:
    """Synthetic operational-data trace over one hierarchical domain.

    Parameters
    ----------
    tree:
        The hierarchy whose leaves records are drawn from.
    rate_model:
        Seasonal arrival-rate model for the aggregate (root) volume.
    clock:
        Simulation clock (timeunit width, epoch weekday/hour).
    top_level_weights:
        Optional mapping from first-level label to its share of the records
        (the paper's Table I mix).  Labels absent from the mapping get zero
        probability.  When omitted, the first-level shares follow the Zipf
        popularity of their subtrees.
    zipf_exponent:
        Skew of the per-leaf popularity distribution inside each first-level
        subtree (higher = sparser lower levels, matching Fig. 1).
    seed:
        Seed for the sampling RNG.
    anomalies:
        Injection plan; ground truth is exposed via :meth:`ground_truth`.
    """

    tree: HierarchyTree
    rate_model: SeasonalRateModel
    clock: SimulationClock
    top_level_weights: Mapping[str, float] | None = None
    zipf_exponent: float = 1.1
    seed: int = 0
    anomalies: Sequence[InjectedAnomaly] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._leaves, self._weights = self._leaf_distribution()
        self._injector = AnomalyInjector(
            self.tree, list(self.anomalies), seed=self.seed + 1
        )
        # Every generate() call replays from this state, so repeated calls
        # yield the identical trace instead of continuing the RNG stream.
        self._generate_state = self._rng.getstate()

    # ------------------------------------------------------------------
    # Leaf popularity
    # ------------------------------------------------------------------
    def _leaf_distribution(self) -> tuple[list[CategoryPath], list[float]]:
        leaves = [leaf.path for leaf in self.tree.iter_leaves()]
        if not leaves:
            raise DataGenerationError("the hierarchy has no leaves to sample from")
        by_top: dict[str, list[CategoryPath]] = {}
        for path in leaves:
            by_top.setdefault(path[0], []).append(path)

        if self.top_level_weights is None:
            top_weights = {label: float(len(paths)) for label, paths in by_top.items()}
        else:
            top_weights = {
                label: float(self.top_level_weights.get(label, 0.0)) for label in by_top
            }
        total_top = sum(top_weights.values())
        if total_top <= 0:
            raise DataGenerationError(
                "top_level_weights assigns zero probability to every first-level "
                "category present in the hierarchy"
            )

        ordered_leaves: list[CategoryPath] = []
        weights: list[float] = []
        for label, paths in sorted(by_top.items()):
            share = top_weights[label] / total_top
            if share <= 0:
                continue
            # Shuffle deterministically so Zipf rank is not tied to label order.
            shuffled = sorted(paths)
            self._rng.shuffle(shuffled)
            leaf_weights = zipf_weights(len(shuffled), self.zipf_exponent)
            for path, weight in zip(shuffled, leaf_weights):
                ordered_leaves.append(path)
                weights.append(share * weight)
        return ordered_leaves, weights

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, duration: float) -> Iterator[OperationalRecord]:
        """Yield records in time order for ``duration`` seconds of trace.

        The trace is a pure function of the generator's construction
        parameters: every call replays the same seeded RNG stream, so calling
        ``generate`` (or :meth:`generate_list`) repeatedly yields bit-identical
        traces.
        """
        if duration <= 0:
            raise DataGenerationError("duration must be positive")
        delta = self.clock.delta
        num_units = int(duration // delta)
        if num_units < 1:
            raise DataGenerationError("duration must cover at least one timeunit")
        self._rng.setstate(self._generate_state)
        self._injector.reset_rng()
        for unit in range(num_units):
            unit_start = self.clock.epoch + unit * delta
            yield from self._generate_unit(unit_start)

    def generate_list(self, duration: float) -> list[OperationalRecord]:
        """Materialize :meth:`generate` into a list."""
        return list(self.generate(duration))

    def _generate_unit(self, unit_start: float) -> Iterator[OperationalRecord]:
        count = self.rate_model.sample_count(unit_start, self.clock, self._rng)
        timestamps = spread_uniformly(count, unit_start, self.clock.delta, self._rng)
        categories = (
            self._rng.choices(self._leaves, weights=self._weights, k=count)
            if count
            else []
        )
        background = [
            OperationalRecord.create(ts, category)
            for ts, category in zip(timestamps, categories)
        ]
        injected = self._injector.records_for_unit(unit_start, self.clock)
        yield from sorted(background + injected)

    # ------------------------------------------------------------------
    # Ground truth / diagnostics
    # ------------------------------------------------------------------
    def ground_truth(self) -> set[tuple[CategoryPath, int]]:
        """(node_path, timeunit) pairs anomalous by construction."""
        return self._injector.ground_truth(self.clock)

    def injected_anomalies(self) -> list[InjectedAnomaly]:
        return list(self._injector.anomalies)

    def expected_unit_count(self, unit_start: float) -> float:
        """Expected background record count for the unit starting at ``unit_start``."""
        return self.rate_model.expected_count(unit_start, self.clock)

    def leaf_popularity(self) -> dict[CategoryPath, float]:
        """Sampling probability of each leaf (diagnostic for the Fig. 1 CCDFs)."""
        return dict(zip(self._leaves, self._weights))


def counts_per_timeunit(
    records: Sequence[OperationalRecord], clock: SimulationClock, num_units: int
) -> list[dict[CategoryPath, int]]:
    """Group a record list into per-timeunit leaf count dictionaries.

    Convenience used by benchmarks that drive the STA/ADA algorithms directly
    with per-timeunit counts instead of a record stream.
    """
    units: list[dict[CategoryPath, int]] = [dict() for _ in range(num_units)]
    for record in records:
        index = clock.timeunit_of(record.timestamp)
        if 0 <= index < num_units:
            bucket = units[index]
            bucket[record.category] = bucket.get(record.category, 0) + 1
    return units
