"""Synthetic Set-Top Box Crash Dataset (SCD) generator.

Substitutes the paper's STB crash logs (§II-A) with a generator reproducing
their published characteristics: a 4-level network hierarchy with the Table II
degrees (2,000 / 30 / 6, scaled down by default), a diurnal pattern with only
a weak weekly component (Fig. 2(b), Fig. 11(b)), lower volatility than CCD
(which is why ADA's split operations are rarer and its accuracy higher,
§VII-A "Results for SCD"), and injected spike anomalies with ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.datagen.anomalies import InjectedAnomaly, random_injection_plan
from repro.datagen.arrival import SeasonalRateModel
from repro.datagen.generator import TraceGenerator
from repro.exceptions import ConfigurationError
from repro.hierarchy.builders import build_scd_network_tree
from repro.hierarchy.tree import HierarchyTree
from repro.streaming.clock import DAY, HOUR, SimulationClock


@dataclass(frozen=True)
class SCDConfig:
    """Configuration of a synthetic SCD trace (see :class:`CCDConfig` for the
    common field meanings)."""

    duration_days: float = 10.0
    delta_seconds: float = 900.0
    base_rate_per_hour: float = 400.0
    network_scale: float = 0.05
    num_anomalies: int = 4
    anomaly_warmup_days: float = 3.0
    seed: int = 77
    diurnal_strength: float = 0.5
    weekly_strength: float = 0.08
    volatility: float = 0.15
    zipf_exponent: float = 0.9
    #: Skew of the load distribution across first-level (CO) nodes.  0 keeps
    #: every CO equally popular; positive values give a heavy-tailed per-CO
    #: load, matching the Fig. 1(c) observation that a few locations carry
    #: most of the crash reports.
    top_level_zipf_exponent: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ConfigurationError("duration_days must be positive")
        if self.base_rate_per_hour < 0:
            raise ConfigurationError("base_rate_per_hour must be non-negative")
        if self.num_anomalies < 0:
            raise ConfigurationError("num_anomalies must be >= 0")
        if self.anomaly_warmup_days < 0:
            raise ConfigurationError("anomaly_warmup_days must be >= 0")

    @property
    def duration_seconds(self) -> float:
        return self.duration_days * DAY


@dataclass
class SCDDataset:
    """A generated SCD trace together with its hierarchy and ground truth."""

    config: SCDConfig
    tree: HierarchyTree
    clock: SimulationClock
    generator: TraceGenerator
    anomalies: Sequence[InjectedAnomaly] = field(default_factory=tuple)

    def records(self):
        return self.generator.generate(self.config.duration_seconds)

    def record_list(self):
        return self.generator.generate_list(self.config.duration_seconds)

    def ground_truth(self):
        return self.generator.ground_truth()

    @property
    def num_timeunits(self) -> int:
        return int(self.config.duration_seconds // self.config.delta_seconds)


def _top_level_weights(tree: HierarchyTree, exponent: float) -> dict[str, float] | None:
    """Heavy-tailed load weights across first-level nodes (None = uniform)."""
    if exponent <= 0:
        return None
    from repro.datagen.arrival import zipf_weights

    labels = sorted(node.label for node in tree.nodes_at_depth(1))
    weights = zipf_weights(len(labels), exponent)
    return dict(zip(labels, weights))


def make_scd_dataset(config: SCDConfig | None = None) -> SCDDataset:
    """Build a synthetic SCD dataset from ``config``."""
    config = config or SCDConfig()
    tree = build_scd_network_tree(seed=config.seed, scale=config.network_scale)
    clock = SimulationClock(
        delta=config.delta_seconds,
        epoch=0.0,
        epoch_weekday=3,  # the paper's SCD window starts on a Thursday
        epoch_hour=0.0,
    )
    rate_model = SeasonalRateModel(
        base_rate=config.base_rate_per_hour / HOUR,
        diurnal_strength=config.diurnal_strength,
        peak_hour=20.0,
        weekly_strength=config.weekly_strength,
        volatility=config.volatility,
    )
    anomalies = (
        random_injection_plan(
            tree,
            clock,
            trace_duration=config.duration_seconds,
            count=config.num_anomalies,
            min_depth=1,
            seed=config.seed + 13,
            warmup=config.anomaly_warmup_days * DAY,
        )
        if config.num_anomalies
        else []
    )
    generator = TraceGenerator(
        tree=tree,
        rate_model=rate_model,
        clock=clock,
        top_level_weights=_top_level_weights(tree, config.top_level_zipf_exponent),
        zipf_exponent=config.zipf_exponent,
        seed=config.seed,
        anomalies=anomalies,
    )
    return SCDDataset(
        config=config,
        tree=tree,
        clock=clock,
        generator=generator,
        anomalies=tuple(anomalies),
    )
