"""Composable detection engine: sessions, routing, lifecycle hooks.

This package is the public API layer introduced on top of the core
algorithms:

* :class:`~repro.engine.session.DetectionSession` — one (tree, config,
  algorithm) triple run online, with observer hooks and checkpointable state;
* :class:`~repro.engine.engine.DetectionEngine` — N named sessions fed from
  one merged record stream via a stream-key selector;
* :mod:`~repro.engine.hooks` — the observer protocol
  (``on_timeunit_closed`` / ``on_anomaly`` / ``on_warmup_complete``);
* :class:`~repro.engine.sharded.ShardedDetectionEngine` — the same engine
  semantics scaled across N worker processes (sessions and, optionally,
  disjoint hierarchy subtrees), with bit-identical detections.

The legacy single-tree :class:`~repro.core.pipeline.Tiresias` class is a thin
facade over one :class:`DetectionSession`.
"""

from repro.engine.engine import (
    UNKNOWN_STREAM_POLICIES,
    DetectionEngine,
    attribute_stream_key,
)
from repro.engine.hooks import CallbackObserver, EngineObserver
from repro.engine.session import DetectionSession
from repro.engine.sharded import (
    ShardedDetectionEngine,
    ShardedSessionHandle,
    plan_subtree_groups,
)

__all__ = [
    "DetectionEngine",
    "ShardedDetectionEngine",
    "ShardedSessionHandle",
    "DetectionSession",
    "EngineObserver",
    "CallbackObserver",
    "attribute_stream_key",
    "plan_subtree_groups",
    "UNKNOWN_STREAM_POLICIES",
]
