"""Composable detection engine: sessions, routing, lifecycle hooks.

This package is the public API layer introduced on top of the core
algorithms:

* :class:`~repro.engine.session.DetectionSession` — one (tree, config,
  algorithm) triple run online, with observer hooks and checkpointable state;
* :class:`~repro.engine.engine.DetectionEngine` — N named sessions fed from
  one merged record stream via a stream-key selector;
* :mod:`~repro.engine.hooks` — the observer protocol
  (``on_timeunit_closed`` / ``on_anomaly`` / ``on_warmup_complete``).

The legacy single-tree :class:`~repro.core.pipeline.Tiresias` class is a thin
facade over one :class:`DetectionSession`.
"""

from repro.engine.engine import (
    UNKNOWN_STREAM_POLICIES,
    DetectionEngine,
    attribute_stream_key,
)
from repro.engine.hooks import CallbackObserver, EngineObserver
from repro.engine.session import DetectionSession

__all__ = [
    "DetectionEngine",
    "DetectionSession",
    "EngineObserver",
    "CallbackObserver",
    "attribute_stream_key",
    "UNKNOWN_STREAM_POLICIES",
]
