"""The detection engine: many sessions, one process, one merged stream.

The paper's evaluation monitors three hierarchies at once — CCD over the
trouble-description dimension, CCD over the network-path dimension, and SCD —
each with its own tree, configuration and detector state.  The seed supported
exactly one tree per process; :class:`DetectionEngine` owns N named
:class:`~repro.engine.session.DetectionSession` objects and routes a merged
record stream to them by a *stream key* selector.

Routing
-------
``stream_key(record)`` maps each record to a session name.  The default
selector reads ``record.attributes["stream"]``; when the engine has exactly
one session, unkeyed records fall through to it, so single-hierarchy streams
need no tagging.  Records whose key matches no session follow the
``unknown_stream`` policy (``"raise"`` or ``"drop"``).

Ingestion
---------
Per-record (:meth:`ingest_record`), batched (:meth:`ingest_batch`), columnar
(:meth:`ingest_record_batch` / :meth:`process_batches`) and whole-stream
(:meth:`process_stream`) ingestion are supported; all but the per-record form
return the closed timeunit results grouped by session name.  The columnar
form partitions each :class:`~repro.streaming.batch.RecordBatch` by stream
key in a single pass and produces detections identical to per-record routing.

Checkpointing
-------------
:meth:`save_checkpoint` / :meth:`load_checkpoint` persist and restore every
session's algorithm, forecaster, clock and report state through
:mod:`repro.io.checkpoint`, so a restarted process resumes mid-stream with
identical subsequent detections.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.core.config import TiresiasConfig
from repro.core.detector import Anomaly
from repro.core.results import TimeunitResult
from repro.engine.hooks import EngineObserver
from repro.engine.session import DetectionSession
from repro.exceptions import ConfigurationError, StreamError
from repro.hierarchy.tree import HierarchyTree
from repro.streaming.batch import RecordBatch
from repro.streaming.clock import SimulationClock
from repro.streaming.record import OperationalRecord

StreamKey = Callable[[OperationalRecord], "str | None"]

#: Valid values for ``DetectionEngine(unknown_stream=...)``.
UNKNOWN_STREAM_POLICIES: frozenset[str] = frozenset({"raise", "drop"})


def attribute_stream_key(record: OperationalRecord) -> str | None:
    """Default stream selector: the record's ``"stream"`` attribute."""
    return record.attributes.get("stream")


class DetectionEngine:
    """Routes one merged record stream to N named detection sessions.

    Parameters
    ----------
    stream_key:
        Callable mapping a record to the name of the session that should
        ingest it (``None`` = no explicit key).  Defaults to
        :func:`attribute_stream_key`.
    unknown_stream:
        Policy for records whose key names no session: ``"raise"`` (default)
        or ``"drop"``.
    """

    def __init__(
        self,
        stream_key: StreamKey | None = None,
        unknown_stream: str = "raise",
    ):
        if unknown_stream not in UNKNOWN_STREAM_POLICIES:
            raise ConfigurationError(
                f"unknown_stream must be one of {sorted(UNKNOWN_STREAM_POLICIES)}, "
                f"got {unknown_stream!r}"
            )
        self.stream_key = stream_key or attribute_stream_key
        self.unknown_stream = unknown_stream
        self._sessions: dict[str, DetectionSession] = {}
        self._observers: list[EngineObserver] = []

    # ------------------------------------------------------------------
    # Session management
    # ------------------------------------------------------------------
    def add_session(
        self,
        name: str,
        tree: HierarchyTree,
        config: TiresiasConfig,
        algorithm: str = "ada",
        clock: SimulationClock | None = None,
        warmup_units: int | None = None,
        max_results: int | None = None,
    ) -> DetectionSession:
        """Create and register a new named session; returns it."""
        session = DetectionSession(
            tree,
            config,
            algorithm=algorithm,
            clock=clock,
            warmup_units=warmup_units,
            name=name,
            max_results=max_results,
        )
        return self.attach_session(session)

    def attach_session(self, session: DetectionSession) -> DetectionSession:
        """Register an existing session (e.g. one restored from a checkpoint)."""
        if session.name in self._sessions:
            raise ConfigurationError(
                f"a session named {session.name!r} is already registered"
            )
        for observer in self._observers:
            session.subscribe(observer)
        self._sessions[session.name] = session
        return session

    def remove_session(self, name: str) -> DetectionSession:
        """Unregister and return the named session.

        Engine-level observers are detached from it (session-level
        subscriptions made directly on the session are left alone).
        """
        try:
            session = self._sessions.pop(name)
        except KeyError:
            raise ConfigurationError(f"no session named {name!r}") from None
        for observer in self._observers:
            session.unsubscribe(observer)
        return session

    def session(self, name: str) -> DetectionSession:
        """The session registered under ``name``."""
        try:
            return self._sessions[name]
        except KeyError:
            raise ConfigurationError(
                f"no session named {name!r}; registered sessions: "
                f"{sorted(self._sessions)}"
            ) from None

    @property
    def sessions(self) -> dict[str, DetectionSession]:
        """Registered sessions by name (a copy; mutate via add/remove)."""
        return dict(self._sessions)

    @property
    def session_names(self) -> tuple[str, ...]:
        return tuple(self._sessions)

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def subscribe(self, observer: EngineObserver) -> EngineObserver:
        """Attach an observer to every current and future session."""
        self._observers.append(observer)
        for session in self._sessions.values():
            session.subscribe(observer)
        return observer

    def unsubscribe(self, observer: EngineObserver) -> None:
        """Detach an engine-level observer from all sessions."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass
        for session in self._sessions.values():
            session.unsubscribe(observer)

    # ------------------------------------------------------------------
    # Online reconfiguration and shadow experiments
    # ------------------------------------------------------------------
    def reconfigure_session(
        self, name: str, new_config: TiresiasConfig
    ) -> DetectionSession:
        """Hot-swap one session's config
        (:meth:`DetectionSession.reconfigure`)."""
        return self.session(name).reconfigure(new_config)

    def start_shadow(
        self,
        name: str,
        candidate_config: TiresiasConfig,
        shadow_name: "str | None" = None,
    ) -> DetectionSession:
        """Start a shadow experiment on one session.  Fan-out is free at the
        engine level: every routed partition of a shared
        :class:`RecordBatch` reaches the session's shadow zero-copy through
        :meth:`DetectionSession.ingest_record_batch`."""
        return self.session(name).start_shadow(candidate_config, name=shadow_name)

    def stop_shadow(self, name: str) -> dict[str, Any]:
        return self.session(name).stop_shadow()

    def promote_shadow(self, name: str) -> dict[str, Any]:
        return self.session(name).promote_shadow()

    def shadow_report(self, name: str) -> dict[str, Any]:
        return self.session(name).shadow_report()

    def shadow_reports(self) -> dict[str, dict[str, Any]]:
        """Reports of every running shadow experiment, keyed by session."""
        return {
            name: session.shadow_report()
            for name, session in self._sessions.items()
            if session.has_shadow
        }

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def route(self, record: OperationalRecord) -> DetectionSession | None:
        """The session that should ingest ``record`` (None = drop)."""
        return self._session_for_key(self.stream_key(record), record.timestamp)

    def _session_for_key(
        self, key: "str | None", timestamp: float
    ) -> DetectionSession | None:
        if key is None and len(self._sessions) == 1:
            return next(iter(self._sessions.values()))
        session = self._sessions.get(key) if key is not None else None
        if session is None:
            if self.unknown_stream == "drop":
                return None
            raise StreamError(
                f"record at t={timestamp} routed to unknown session "
                f"{key!r}; registered sessions: {sorted(self._sessions)}"
            )
        return session

    def ingest_record(self, record: OperationalRecord) -> list[TimeunitResult]:
        """Route one record; returns results of timeunits it closed."""
        session = self.route(record)
        if session is None:
            return []
        return session.ingest_record(record)

    def ingest_batch(
        self, records: Iterable[OperationalRecord]
    ) -> dict[str, list[TimeunitResult]]:
        """Route a batch of records; closed results grouped by session name."""
        closed: dict[str, list[TimeunitResult]] = {
            name: [] for name in self._sessions
        }
        for record in records:
            session = self.route(record)
            if session is None:
                continue
            closed[session.name].extend(session.ingest_record(record))
        return closed

    def ingest_record_batch(
        self, batch: RecordBatch
    ) -> dict[str, list[TimeunitResult]]:
        """Route a columnar batch; closed results grouped by session name.

        The batch is partitioned by stream key in one pass
        (:meth:`RecordBatch.partition_by_key`) and each partition is ingested
        through the session's grouped-aggregation path.  Partitions preserve
        the per-session record order of the merged stream, so every session
        sees exactly the sub-stream the per-record router would have fed it
        and produces identical detections.  With the default attribute
        selector an untagged single-session batch is forwarded whole, without
        touching a single row.

        Error semantics differ from per-record routing in one way: every
        partition's key is resolved *before* any record is ingested, so an
        unknown key under the ``"raise"`` policy rejects the whole batch with
        no side effects (per-record routing would have ingested — and fired
        observer hooks for — the records preceding the offender).
        """
        closed: dict[str, list[TimeunitResult]] = {
            name: [] for name in self._sessions
        }
        # The default selector is reimplemented columnarly inside the batch;
        # custom selectors are applied row by row.
        selector = None if self.stream_key is attribute_stream_key else self.stream_key
        routed: list[tuple[DetectionSession, RecordBatch]] = []
        for key, part in batch.partition_by_key(selector):
            session = self._session_for_key(
                key, float(part.timestamps[0]) if len(part) else 0.0
            )
            if session is not None:
                routed.append((session, part))
        for session, part in routed:
            closed[session.name].extend(session.ingest_record_batch(part))
        return closed

    def process_stream(
        self, records: Iterable[OperationalRecord]
    ) -> dict[str, list[TimeunitResult]]:
        """Consume a whole merged stream, then flush every session."""
        closed = self.ingest_batch(records)
        for name, results in self.flush().items():
            closed[name].extend(results)
        return closed

    def process_batches(
        self, batches: Iterable[RecordBatch]
    ) -> dict[str, list[TimeunitResult]]:
        """Consume a stream of columnar batches, then flush every session."""
        closed: dict[str, list[TimeunitResult]] = {
            name: [] for name in self._sessions
        }
        for batch in batches:
            for name, results in self.ingest_record_batch(batch).items():
                closed[name].extend(results)
        for name, results in self.flush().items():
            closed[name].extend(results)
        return closed

    def flush(self) -> dict[str, list[TimeunitResult]]:
        """Close the accumulating timeunit of every session."""
        return {name: session.flush() for name, session in self._sessions.items()}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def anomalies(self) -> dict[str, list[Anomaly]]:
        """All reported anomalies, grouped by session name."""
        return {name: session.anomalies for name, session in self._sessions.items()}

    def units_processed(self) -> dict[str, int]:
        return {
            name: session.units_processed for name, session in self._sessions.items()
        }

    def memory_units(self) -> int:
        """Total memory cost proxy across all sessions."""
        return sum(session.memory_units() for session in self._sessions.values())

    def adaptation_stats(self) -> dict[str, dict[str, Any]]:
        """Per-session delta-adaptation counters, keyed by session name.

        Mirrors :meth:`ShardedDetectionEngine.adaptation_stats
        <repro.engine.sharded.ShardedDetectionEngine.adaptation_stats>` so
        metrics consumers (the service layer's ``/metrics`` endpoint) read
        both engines identically.
        """
        return {
            name: session.adaptation_stats()
            for name, session in self._sessions.items()
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot of the engine (policy + every session's state)."""
        from repro.io.checkpoint import engine_state_dict

        return engine_state_dict(self)

    @classmethod
    def from_state_dict(
        cls, state: Mapping[str, Any], stream_key: StreamKey | None = None
    ) -> "DetectionEngine":
        """Rebuild an engine from a snapshot (selectors are not serializable,
        so pass ``stream_key`` again when a custom one was used)."""
        from repro.io.checkpoint import engine_from_state_dict

        return engine_from_state_dict(state, stream_key=stream_key)

    def save_checkpoint(self, path: Any) -> None:
        """Persist the engine state as a JSON checkpoint file."""
        from repro.io.checkpoint import save_checkpoint

        save_checkpoint(self, path)

    @classmethod
    def load_checkpoint(
        cls, path: Any, stream_key: StreamKey | None = None
    ) -> "DetectionEngine":
        """Restore an engine from a file written by :meth:`save_checkpoint`."""
        from repro.io.checkpoint import load_checkpoint

        return load_checkpoint(path, stream_key=stream_key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DetectionEngine(sessions={sorted(self._sessions)})"
