"""Lifecycle hooks for detection sessions.

The seed exposed anomalies only by polling ``detector.anomalies`` after the
stream ended — unusable for an always-on monitoring process.  Sessions now
dispatch events to subscribed observers as they happen:

* ``on_timeunit_closed(session, result)`` — a timeunit finished processing
  (fired for every timeunit, warm-up included);
* ``on_anomaly(session, anomaly)`` — an anomaly was reported (never fired for
  anomalies suppressed during warm-up);
* ``on_warmup_complete(session, timeunit)`` — the warm-up period ended; fired
  once, after the last suppressed timeunit closes (immediately after the
  first timeunit when ``warmup_units`` is 0);
* ``on_shadow_divergence(primary, shadow, timeunit, only_in_primary,
  only_in_shadow)`` — a running shadow experiment
  (:meth:`~repro.engine.session.DetectionSession.start_shadow`) closed a
  timeunit whose anomaly set differs from the primary's; the two tuples hold
  the anomalies reported by only one side.

Observers subclass :class:`EngineObserver` and override what they need, or
wrap plain callables with :class:`CallbackObserver`.  Subscribing at the
engine level (:meth:`~repro.engine.engine.DetectionEngine.subscribe`) attaches
the observer to every current and future session; the ``session`` argument
identifies the source (``session.name``).

Observer exceptions propagate to the caller: an alerting backend that cannot
deliver should fail loudly rather than silently lose detections.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro._types import TimeunitIndex
    from repro.core.detector import Anomaly
    from repro.core.results import TimeunitResult
    from repro.engine.session import DetectionSession


class EngineObserver:
    """Base class for lifecycle observers; every hook is a no-op by default."""

    def on_timeunit_closed(
        self, session: "DetectionSession", result: "TimeunitResult"
    ) -> None:
        """A timeunit was processed by ``session``."""

    def on_anomaly(self, session: "DetectionSession", anomaly: "Anomaly") -> None:
        """``session`` reported ``anomaly`` (post warm-up only)."""

    def on_warmup_complete(
        self, session: "DetectionSession", timeunit: "TimeunitIndex"
    ) -> None:
        """``session`` finished its warm-up period at ``timeunit``."""

    def on_shadow_divergence(
        self,
        primary: "DetectionSession",
        shadow: "DetectionSession",
        timeunit: "TimeunitIndex",
        only_in_primary: "tuple[Anomaly, ...]",
        only_in_shadow: "tuple[Anomaly, ...]",
    ) -> None:
        """``primary`` and its ``shadow`` disagree on ``timeunit``'s anomalies."""


class CallbackObserver(EngineObserver):
    """Adapter wrapping plain callables into the observer protocol.

    >>> session.subscribe(CallbackObserver(
    ...     on_anomaly=lambda session, anomaly: alerts.append(anomaly)))
    """

    def __init__(
        self,
        on_anomaly: Optional[Callable[["DetectionSession", "Anomaly"], None]] = None,
        on_timeunit_closed: Optional[
            Callable[["DetectionSession", "TimeunitResult"], None]
        ] = None,
        on_warmup_complete: Optional[
            Callable[["DetectionSession", "TimeunitIndex"], None]
        ] = None,
        on_shadow_divergence: Optional[Callable[..., None]] = None,
    ):
        self._on_anomaly = on_anomaly
        self._on_timeunit_closed = on_timeunit_closed
        self._on_warmup_complete = on_warmup_complete
        self._on_shadow_divergence = on_shadow_divergence

    def on_timeunit_closed(
        self, session: "DetectionSession", result: "TimeunitResult"
    ) -> None:
        if self._on_timeunit_closed is not None:
            self._on_timeunit_closed(session, result)

    def on_anomaly(self, session: "DetectionSession", anomaly: "Anomaly") -> None:
        if self._on_anomaly is not None:
            self._on_anomaly(session, anomaly)

    def on_warmup_complete(
        self, session: "DetectionSession", timeunit: "TimeunitIndex"
    ) -> None:
        if self._on_warmup_complete is not None:
            self._on_warmup_complete(session, timeunit)

    def on_shadow_divergence(
        self,
        primary: "DetectionSession",
        shadow: "DetectionSession",
        timeunit: "TimeunitIndex",
        only_in_primary: "tuple[Anomaly, ...]",
        only_in_shadow: "tuple[Anomaly, ...]",
    ) -> None:
        if self._on_shadow_divergence is not None:
            self._on_shadow_divergence(
                primary, shadow, timeunit, only_in_primary, only_in_shadow
            )
