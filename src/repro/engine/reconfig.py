"""Online reconfiguration: hot-swap a session's config at a timeunit boundary.

The paper tunes the detector through parameters (θ, RT/DT, the split rule,
the forecasting model) whose sensitivity it studies offline (Section VII).
A production monitor cannot afford the offline loop — re-warming a detector
after every parameter change discards weeks of sliding-window state.  This
module applies a compatible :meth:`TiresiasConfig.replace` delta to a *live*
session state instead:

* **Hot-swappable** fields take effect at the next timeunit close: ``theta``,
  ``ratio_threshold``, ``difference_threshold``, ``split_rule``,
  ``split_ewma_alpha``, ``out_of_order_policy`` and every forecasting
  parameter (``forecast.*``).
* **Frozen** fields change the meaning of the accumulated state itself and
  are rejected with :class:`~repro.exceptions.ConfigurationError`:
  ``delta_seconds`` and ``window_units`` (the timeunit grid and ring sizes),
  ``reference_levels`` / ``track_root`` / ``allow_root_heavy`` (which nodes
  carry state).  The hierarchy is likewise fixed — it is part of the session,
  not the config.

When the forecasting configuration changes, every tracked node's forecaster
is **re-seeded from its live actual-value window**
(:meth:`SeriesForecaster.from_history_fast
<repro.core.timeseries.SeriesForecaster.from_history_fast>`, the same O(season)
primitive the reference-series correction uses) instead of re-warming from
scratch — the new model starts with the history the old model accumulated.

Everything operates on the JSON-safe session state of
:mod:`repro.io.checkpoint`, so a reconfigured state is by construction a
valid checkpoint: reconfigure → save → load round-trips exactly.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Any, Mapping

from repro.core.config import ForecastConfig, TiresiasConfig
from repro.core.registry import ensure_forecaster_resolvable
from repro.exceptions import ConfigurationError

#: Config fields that cannot change on a live session: they define the
#: timeunit grid and the node set the accumulated state was built over.
FROZEN_FIELDS: tuple[str, ...] = (
    "delta_seconds",
    "window_units",
    "reference_levels",
    "track_root",
    "allow_root_heavy",
    "min_heavy_depth",
)


def check_reconfigurable(old: TiresiasConfig, new: TiresiasConfig) -> None:
    """Raise unless ``new`` is a hot-swappable delta of ``old``.

    Frozen-field changes (timeunit grid, window length, tracked-node policy)
    require a fresh session; everything else may change online.
    """
    frozen = [
        name for name in FROZEN_FIELDS if getattr(old, name) != getattr(new, name)
    ]
    if frozen:
        raise ConfigurationError(
            f"cannot reconfigure a live session: field(s) {frozen} are frozen "
            f"(they define the timeunit grid and the tracked-state layout); "
            f"start a fresh session to change them"
        )
    ensure_forecaster_resolvable(new.forecast.model)


def config_with_updates(
    config: TiresiasConfig, delta: Mapping[str, Any]
) -> TiresiasConfig:
    """Apply a JSON config delta (e.g. an HTTP request body) to ``config``.

    Top-level keys map to :class:`TiresiasConfig` fields; the ``"forecast"``
    key is itself a partial delta merged into the current
    :class:`ForecastConfig`.  Unknown keys raise
    :class:`~repro.exceptions.ConfigurationError` (a typo must not silently
    keep the old value), and the resulting configs re-validate themselves.
    """
    if not isinstance(delta, Mapping):
        raise ConfigurationError(
            f"config delta must be a JSON object, got {type(delta).__name__}"
        )
    changes = dict(delta)
    forecast_delta = changes.pop("forecast", None)
    field_names = {f.name for f in dataclasses.fields(TiresiasConfig)} - {"forecast"}
    unknown = sorted(set(changes) - field_names)
    if unknown:
        raise ConfigurationError(
            f"unknown config field(s) {unknown}; valid fields: "
            f"{sorted(field_names | {'forecast'})}"
        )
    if "window_units" in changes:
        changes["window_units"] = int(changes["window_units"])
    if forecast_delta is not None:
        if not isinstance(forecast_delta, Mapping):
            raise ConfigurationError("'forecast' delta must be a JSON object")
        fchanges = dict(forecast_delta)
        fc_names = {f.name for f in dataclasses.fields(ForecastConfig)}
        unknown = sorted(set(fchanges) - fc_names)
        if unknown:
            raise ConfigurationError(
                f"unknown forecast field(s) {unknown}; valid fields: "
                f"{sorted(fc_names)}"
            )
        if "season_lengths" in fchanges:
            fchanges["season_lengths"] = tuple(
                int(p) for p in fchanges["season_lengths"]
            )
        if fchanges.get("season_weights") is not None:
            fchanges["season_weights"] = tuple(
                float(w) for w in fchanges["season_weights"]
            )
        changes["forecast"] = config.forecast.replace(**fchanges)
    try:
        return config.replace(**changes)
    except TypeError as exc:
        raise ConfigurationError(f"invalid config delta: {exc}") from exc


def reconfigured_state(
    state: Mapping[str, Any],
    new_config: TiresiasConfig,
    name: "str | None" = None,
) -> dict[str, Any]:
    """A copy of a checkpointed session ``state`` under ``new_config``.

    The compatibility check of :func:`check_reconfigurable` runs against the
    state's stored config.  When the forecasting configuration changed, each
    tracked series' forecaster state is rebuilt from that series' live
    actual-value window — the restored session's models carry the observed
    history forward instead of re-warming.  Clock, pending counts, warm-up
    bookkeeping and reports pass through untouched, so the result loads with
    :func:`~repro.io.checkpoint.session_from_state_dict` and continues at
    exactly the stream position the input state was taken at.
    """
    from repro.core.timeseries import SeriesForecaster
    from repro.io.checkpoint import config_from_dict, config_to_dict

    if "shadow" in state:
        raise ConfigurationError(
            "cannot reconfigure a state that carries a shadow session; "
            "stop or promote the shadow first"
        )
    old_config = config_from_dict(state["config"])
    check_reconfigurable(old_config, new_config)
    new_state = copy.deepcopy(dict(state))
    new_state["config"] = config_to_dict(new_config)
    if name is not None:
        new_state["name"] = str(name)
    forecast_changed = (
        new_state["config"]["forecast"] != dict(state["config"])["forecast"]
    )
    algo_state = new_state.get("algorithm_state")
    if forecast_changed and isinstance(algo_state, Mapping) and "series" in algo_state:
        for _path, ts_state in algo_state["series"]:
            history = [float(value) for value in ts_state["actual"]]
            fresh = SeriesForecaster.from_history_fast(history, new_config.forecast)
            ts_state["forecaster"] = fresh.state_dict()
    return new_state
