"""One detection session: a (hierarchy, config, algorithm) triple run online.

A :class:`DetectionSession` owns everything the seed's monolithic ``Tiresias``
class owned — the tracking algorithm, the simulation clock, the pending
timeunit accumulator, the warm-up suppression, the report store — but is built
for composition:

* the tracking algorithm resolves by name through the registry
  (:mod:`repro.core.registry`), so new algorithms plug in without touching
  this module;
* lifecycle observers (:mod:`repro.engine.hooks`) are notified of closed
  timeunits, reported anomalies, and warm-up completion as they happen;
* the out-of-order policy of the config decides what happens to records whose
  timeunit already closed (the seed silently counted them into the *current*
  timeunit);
* the full mutable state serializes to / restores from a JSON-safe dict
  (:meth:`state_dict` / :meth:`from_state_dict`), the substrate of
  :mod:`repro.io.checkpoint`.

Several sessions run concurrently inside one
:class:`~repro.engine.engine.DetectionEngine`; a single session is what the
backward-compatible :class:`~repro.core.pipeline.Tiresias` facade wraps.
"""

from __future__ import annotations

import dataclasses
import time
from collections import Counter
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro._types import CategoryPath, TimeunitIndex, Weight
from repro._vector import load_numpy
from repro.core.config import TiresiasConfig
from repro.core.detector import Anomaly
from repro.core.registry import create_algorithm
from repro.core.reporting import AnomalyReportStore
from repro.core.results import TimeunitResult
from repro.engine.hooks import EngineObserver
from repro.exceptions import ConfigurationError, OutOfOrderRecordError
from repro.hierarchy.tree import HierarchyTree
from repro.streaming.batch import RecordBatch
from repro.streaming.clock import SimulationClock
from repro.streaming.record import OperationalRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.shadow import ShadowTracker

_np = load_numpy()


class DetectionSession:
    """Online anomaly detection over one hierarchical domain.

    Parameters
    ----------
    tree:
        The hierarchical domain the record categories are drawn from.
    config:
        Detector configuration (θ, RT/DT, Δ, ℓ, split rule, out-of-order
        policy, ...).
    algorithm:
        Registry name of the tracking algorithm (``"ada"`` or ``"sta"``
        built in; see :func:`repro.core.registry.register_algorithm`).
    clock:
        Simulation clock; defaults to one with Δ from the config and epoch 0.
    warmup_units:
        Number of initial timeunits during which anomalies are suppressed
        while the forecasting models accumulate history.  Defaults to the
        forecasting model's minimum history.
    name:
        Session name, used by the engine for routing and by observers to
        identify the source.
    max_results:
        Maximum number of :class:`TimeunitResult` objects retained in
        :attr:`results` (oldest dropped first).  ``None`` (default) keeps
        everything, which suits finite replays and the evaluation harness;
        always-on deployments should bound it and consume results through
        the ``on_timeunit_closed`` hook instead.
    """

    def __init__(
        self,
        tree: HierarchyTree,
        config: TiresiasConfig,
        algorithm: str = "ada",
        clock: SimulationClock | None = None,
        warmup_units: int | None = None,
        name: str = "default",
        max_results: int | None = None,
    ):
        self.name = name
        self.tree = tree
        self.config = config
        self.clock = clock or SimulationClock(delta=config.delta_seconds)
        if abs(self.clock.delta - config.delta_seconds) > 1e-9:
            raise ConfigurationError(
                "the clock's timeunit width must match config.delta_seconds"
            )
        self.algorithm = create_algorithm(algorithm, tree, config)
        self.algorithm_name = algorithm
        self.warmup_units = (
            config.forecast.min_history if warmup_units is None else warmup_units
        )
        if self.warmup_units < 0:
            raise ConfigurationError("warmup_units must be >= 0")
        if max_results is not None and max_results < 0:
            raise ConfigurationError("max_results must be >= 0 or None")
        self.max_results = max_results
        #: When False, anomalies skip the local report store (observers and
        #: returned results still carry them).  The sharded engine clears it
        #: on subtree-shard sessions, whose reports live merged on the
        #: coordinator — retaining them worker-side would only grow memory.
        self.retain_reports = True
        self.reports = AnomalyReportStore()
        self.results: list[TimeunitResult] = []
        self._units_processed = 0
        self._pending: Counter = Counter()
        self._pending_unit: TimeunitIndex | None = None
        self._warmup_announced = False
        self._observers: list[EngineObserver] = []
        self.reading_seconds = 0.0
        #: Dense columnar ingest: resolved lazily on the first coded batch
        #: (None = undecided); caches the last batch dictionary's node-id map
        #: and decoded paths (columnar readers share one dictionary per file).
        self._dense_ready: bool | None = None
        self._dense_dict: tuple | None = None
        #: Shadow experiment: a cloned session running a candidate config
        #: against the identical stream (see :meth:`start_shadow`), plus the
        #: detection-diff tracker.  Both checkpoint with the session.
        self._shadow: "DetectionSession | None" = None
        self._shadow_tracker: "ShadowTracker | None" = None

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def subscribe(self, observer: EngineObserver) -> EngineObserver:
        """Attach a lifecycle observer; returns it for chaining."""
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: EngineObserver) -> None:
        """Detach a previously subscribed observer (no-op if absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Online ingestion
    # ------------------------------------------------------------------
    def process_stream(
        self, records: Iterable[OperationalRecord]
    ) -> list[TimeunitResult]:
        """Consume a time-ordered record stream; returns per-timeunit results."""
        produced: list[TimeunitResult] = []
        start = time.perf_counter()
        for record in records:
            self.reading_seconds += time.perf_counter() - start
            produced.extend(self.ingest_record(record))
            start = time.perf_counter()
        self.reading_seconds += time.perf_counter() - start
        produced.extend(self.flush())
        return produced

    def ingest_record(self, record: OperationalRecord) -> list[TimeunitResult]:
        """Add one record; returns results for any timeunits that closed."""
        closed = self._ingest_record_primary(record)
        if self._shadow is not None:
            self._mirror(closed, lambda shadow: shadow.ingest_record(record))
        return closed

    def _ingest_record_primary(
        self, record: OperationalRecord
    ) -> list[TimeunitResult]:
        unit = self.clock.timeunit_of(record.timestamp)
        if self._pending_unit is None:
            self._pending_unit = unit
        if unit < self._pending_unit:
            policy = self.config.out_of_order_policy
            if policy == "drop":
                return []
            if policy == "raise":
                raise OutOfOrderRecordError(
                    record.timestamp, self.clock.timeunit_start(self._pending_unit)
                )
            unit = self._pending_unit  # "clamp": count into the open timeunit
        closed: list[TimeunitResult] = []
        while unit > self._pending_unit:
            closed.append(self._close_pending())
        self._pending[record.category] += 1
        return closed

    def ingest_batch(
        self, records: Iterable[OperationalRecord]
    ) -> list[TimeunitResult]:
        """Add a batch of records; returns results of all timeunits that closed."""
        closed: list[TimeunitResult] = []
        for record in records:
            closed.extend(self.ingest_record(record))
        return closed

    def ingest_record_batch(self, batch: RecordBatch) -> list[TimeunitResult]:
        """Add a columnar batch; returns results of all timeunits that closed.

        The batch is reduced to per-timeunit count dictionaries by one grouped
        aggregation (:meth:`RecordBatch.group_runs_by_timeunit`) and those
        dictionaries are folded into the pending timeunit wholesale, instead
        of incrementing per record.  Because the aggregation groups *runs* in
        arrival order, the out-of-order policy fires for exactly the records
        it would fire for under :meth:`ingest_record` — a batch spanning an
        already-closed timeunit splits, and only the late run is dropped /
        clamped / raised on.  Detections are bit-for-bit identical to the
        per-record path.

        A running shadow session (:meth:`start_shadow`) ingests the *same*
        :class:`RecordBatch` object right after the primary — zero-copy
        fan-out, the batch columns are never duplicated.
        """
        closed = self._ingest_record_batch_primary(batch)
        if self._shadow is not None:
            self._mirror(closed, lambda shadow: shadow.ingest_record_batch(batch))
        return closed

    def _ingest_record_batch_primary(
        self, batch: RecordBatch
    ) -> list[TimeunitResult]:
        if batch.category_codes is not None and self._dense_ingest_ready():
            closed = self._ingest_batch_dense(batch)
            if closed is not None:
                return closed
        closed = []
        for unit, start, counts in batch.group_runs_by_timeunit(self.clock):
            if self._pending_unit is None:
                self._pending_unit = unit
            if unit < self._pending_unit:
                policy = self.config.out_of_order_policy
                if policy == "drop":
                    continue
                if policy == "raise":
                    raise OutOfOrderRecordError(
                        float(batch.timestamps[start]),
                        self.clock.timeunit_start(self._pending_unit),
                    )
                unit = self._pending_unit  # "clamp": count into the open timeunit
            while unit > self._pending_unit:
                closed.append(self._close_pending())
            self._pending.update(counts)
        return closed

    def _dense_ingest_ready(self) -> bool:
        """Whether the code-column dense ingest path may serve coded batches."""
        ready = self._dense_ready
        if ready is None:
            ready = self._dense_ready = bool(
                _np is not None
                and getattr(self.algorithm, "supports_dense_close", False)
            )
        return ready

    def _dense_mapping(self, dictionary):
        """``(node_id_per_code, path_per_code)`` for a batch dictionary.

        Cached by dictionary object identity — a columnar file yields one
        shared dictionary for every batch, so the map is built once per file.
        """
        cached = self._dense_dict
        if cached is not None and cached[0] is dictionary:
            return cached[1], cached[2]
        id_map = self.algorithm.dictionary_node_ids(dictionary)
        paths = [tuple(path) for path in dictionary]
        self._dense_dict = (dictionary, id_map, paths)
        return id_map, paths

    def _ingest_batch_dense(self, batch: RecordBatch) -> "list[TimeunitResult] | None":
        """Code-column ingest: one ``bincount`` per run instead of a Counter.

        Counts of a timeunit that fully closes *within this call* accumulate
        in dictionary-code space and reach the algorithm as a dense node
        vector (:meth:`~repro.core.ada.ADAAlgorithm.process_timeunit_dense`);
        such counts can never appear in a checkpoint, so the insertion-order
        contract of ``_pending`` is untouched.  Runs of the still-open
        trailing timeunit decode into the ``_pending`` Counter in arrival
        order, exactly like the classic path.  Returns None to delegate the
        whole batch to the classic path when a late run could raise
        mid-batch (out_of_order_policy == "raise") — the cold path keeps the
        exception-time session state authoritative.
        """
        runs = batch.timeunit_runs(self.clock)
        if not runs:
            return []
        policy = self.config.out_of_order_policy
        # Pre-pass: effective unit per run under the policy, no state touched.
        simulated = self._pending_unit
        effective: list[TimeunitIndex | None] = []
        for unit, _, _ in runs:
            if simulated is None:
                simulated = unit
            if unit < simulated:
                if policy == "raise":
                    return None
                if policy == "drop":
                    effective.append(None)
                    continue
                unit = simulated  # clamp
            elif unit > simulated:
                simulated = unit
            effective.append(unit)
        if simulated is None:  # pragma: no cover - every run dropped
            return []
        last_unit = simulated
        codes = batch.category_codes
        id_map, paths = self._dense_mapping(batch.code_dictionary)
        num_codes = len(paths)
        np_ = _np
        closed: list[TimeunitResult] = []
        code_counts = None  # open unit's accumulator, dictionary-code space
        pending = self._pending
        for (unit, start, stop), eff in zip(runs, effective):
            if eff is None:
                continue
            if self._pending_unit is None:
                self._pending_unit = eff
            while eff > self._pending_unit:
                if code_counts is not None:
                    closed.append(self._close_pending_dense(code_counts, id_map))
                    code_counts = None
                    pending = self._pending
                else:
                    closed.append(self._close_pending())
                    pending = self._pending
            if eff < last_unit:
                # This timeunit closes before the call returns: aggregate in
                # code space (int64 counts — exact in float64 later).
                segment = np_.bincount(codes[start:stop], minlength=num_codes)
                if code_counts is None:
                    code_counts = segment
                else:
                    code_counts += segment
            else:
                # Trailing (still-open) unit: arrival-order Counter, the
                # checkpointable representation.
                for code in codes[start:stop].tolist():
                    pending[paths[code]] += 1
        return closed

    def _close_pending_dense(self, code_counts, id_map) -> TimeunitResult:
        """Close the pending unit from a code-space count accumulator."""
        assert self._pending_unit is not None
        counts = dict(self._pending)
        unit = self._pending_unit
        self._pending = Counter()
        self._pending_unit = unit + 1
        np_ = _np
        base_vec = self.algorithm.dense_count_template()
        nonzero = np_.flatnonzero(code_counts)
        ids = id_map[nonzero]
        known = ids >= 0
        base_vec[ids[known]] = code_counts[nonzero][known]
        result = self.algorithm.process_timeunit_dense(base_vec, unit, counts)
        return self._finish_result(result)

    def process_batches(self, batches: Iterable[RecordBatch]) -> list[TimeunitResult]:
        """Consume a stream of columnar batches, then flush (batch analogue of
        :meth:`process_stream`)."""
        produced: list[TimeunitResult] = []
        start = time.perf_counter()
        for batch in batches:
            self.reading_seconds += time.perf_counter() - start
            produced.extend(self.ingest_record_batch(batch))
            start = time.perf_counter()
        self.reading_seconds += time.perf_counter() - start
        produced.extend(self.flush())
        return produced

    def advance_to(self, unit: TimeunitIndex) -> list[TimeunitResult]:
        """Advance the open timeunit to ``unit``, closing everything before it.

        A session that has not ingested anything yet is *anchored* at ``unit``
        (no timeunits close); otherwise every pending timeunit strictly before
        ``unit`` closes in order, producing its result.  Timeunits at or after
        ``unit`` are untouched, so advancing to the current pending unit is a
        no-op.  This is the clock-synchronization primitive of the sharded
        engine: subtree shards that received no records while the merged
        stream moved on must still close their (empty) timeunits exactly as
        the serial session would have.
        """
        unit = int(unit)
        closed = self._advance_to_primary(unit)
        if self._shadow is not None:
            self._mirror(closed, lambda shadow: shadow.advance_to(unit))
        return closed

    def _advance_to_primary(self, unit: int) -> list[TimeunitResult]:
        if self._pending_unit is None:
            self._pending_unit = unit
            return []
        closed: list[TimeunitResult] = []
        while self._pending_unit < unit:
            closed.append(self._close_pending())
        return closed

    def flush(self) -> list[TimeunitResult]:
        """Close the currently accumulating timeunit (end of stream)."""
        closed = self._flush_primary()
        if self._shadow is not None:
            self._mirror(closed, lambda shadow: shadow.flush())
        return closed

    def _flush_primary(self) -> list[TimeunitResult]:
        if self._pending_unit is None:
            return []
        return [self._close_pending(final=True)]

    def _close_pending(self, final: bool = False) -> TimeunitResult:
        assert self._pending_unit is not None
        counts = dict(self._pending)
        unit = self._pending_unit
        self._pending = Counter()
        self._pending_unit = None if final else unit + 1
        return self.process_timeunit_counts(counts, unit)

    # ------------------------------------------------------------------
    # Timeunit-level interface (used directly by benchmarks)
    # ------------------------------------------------------------------
    def process_timeunit_counts(
        self, counts: dict[CategoryPath, Weight], timeunit: TimeunitIndex | None = None
    ) -> TimeunitResult:
        """Process one timeunit worth of per-leaf counts."""
        return self._finish_result(self.algorithm.process_timeunit(counts, timeunit))

    def _finish_result(self, result: TimeunitResult) -> TimeunitResult:
        """Shared post-close bookkeeping: warm-up, reports, observers."""
        self._units_processed += 1
        if self._units_processed <= self.warmup_units and result.anomalies:
            result = dataclasses.replace(result, anomalies=())
        if self.retain_reports:
            self.reports.add_many(result.anomalies)
        self.results.append(result)
        if self.max_results is not None and len(self.results) > self.max_results:
            del self.results[: len(self.results) - self.max_results]
        for observer in self._observers:
            observer.on_timeunit_closed(self, result)
        for anomaly in result.anomalies:
            for observer in self._observers:
                observer.on_anomaly(self, anomaly)
        if not self._warmup_announced and self._units_processed >= self.warmup_units:
            self._warmup_announced = True
            for observer in self._observers:
                observer.on_warmup_complete(self, result.timeunit)
        return result

    # ------------------------------------------------------------------
    # Online reconfiguration
    # ------------------------------------------------------------------
    def reconfigure(self, new_config: TiresiasConfig) -> "DetectionSession":
        """Hot-swap this session's configuration at the timeunit boundary.

        ``new_config`` must be a compatible delta of the current config
        (:func:`repro.engine.reconfig.check_reconfigurable`): thresholds,
        split rule and forecasting parameters may change; the timeunit grid
        (``delta_seconds``/``window_units``) and the tracked-node policy are
        frozen.  When the forecasting configuration changes, every tracked
        node's model is re-seeded from its live actual-value window instead
        of re-warming.  Takes effect at the next timeunit close; clock
        position, pending counts, warm-up bookkeeping, reports and observers
        are untouched, and a running shadow experiment keeps running.
        Returns ``self``.
        """
        from repro.engine.reconfig import reconfigured_state
        from repro.io.checkpoint import session_from_state_dict, session_state_dict

        state = session_state_dict(self, include_shadow=False)
        rebuilt = session_from_state_dict(reconfigured_state(state, new_config))
        self._adopt(rebuilt, full=False)
        return self

    # ------------------------------------------------------------------
    # Shadow experiments
    # ------------------------------------------------------------------
    @property
    def has_shadow(self) -> bool:
        return self._shadow is not None

    @property
    def shadow(self) -> "DetectionSession | None":
        """The running shadow session (None when no experiment is active)."""
        return self._shadow

    def start_shadow(
        self, candidate_config: TiresiasConfig, name: "str | None" = None
    ) -> "DetectionSession":
        """Start a shadow experiment with ``candidate_config``.

        The shadow is a full clone of this session's live state (clock,
        pending counts, forecaster history, reports) placed under the
        candidate config through the checkpoint machinery — exactly the
        state a standalone session restored from this session's checkpoint
        and reconfigured would have.  From now on every ingest call fans out
        to the shadow (same records, zero-copy for columnar batches) and
        detections are diffed per timeunit (:meth:`shadow_report`,
        ``on_shadow_divergence``).  Shadow-side errors are contained and
        counted; they never disturb the primary.  Returns the shadow session.
        """
        from repro.engine.reconfig import reconfigured_state
        from repro.engine.shadow import ShadowStateError, ShadowTracker
        from repro.io.checkpoint import session_from_state_dict, session_state_dict

        if self._shadow is not None:
            raise ShadowStateError(
                f"session {self.name!r} already runs a shadow experiment "
                f"({self._shadow.name!r}); stop or promote it first"
            )
        state = session_state_dict(self, include_shadow=False)
        shadow_state = reconfigured_state(
            state, candidate_config, name=name or f"{self.name}::shadow"
        )
        self._shadow = session_from_state_dict(shadow_state)
        self._shadow_tracker = ShadowTracker()
        return self._shadow

    def stop_shadow(self) -> dict[str, Any]:
        """Abandon the shadow experiment; returns the final report."""
        report = self.shadow_report()
        self._shadow = None
        self._shadow_tracker = None
        return report

    def promote_shadow(self) -> dict[str, Any]:
        """Swap the shadow in as primary; returns the final report.

        The shadow has ingested the identical stream, so its clock, pending
        counts and warm-up state are in lockstep — promotion adopts its
        config, algorithm state, reports and results wholesale.  The
        session's name, observers and report-retention policy stay; the
        experiment ends.
        """
        shadow = self._shadow
        report = self.shadow_report()
        self._shadow = None
        self._shadow_tracker = None
        self._adopt(shadow, full=True)
        return report

    def shadow_report(self) -> dict[str, Any]:
        """Agreement document of the running experiment (see
        :meth:`ShadowTracker.report <repro.engine.shadow.ShadowTracker.report>`).
        """
        from repro.engine.shadow import ShadowStateError
        from repro.io.checkpoint import config_to_dict

        if self._shadow is None or self._shadow_tracker is None:
            raise ShadowStateError(
                f"session {self.name!r} has no running shadow experiment"
            )
        report: dict[str, Any] = {
            "primary": self.name,
            "shadow": self._shadow.name,
            "primary_config": config_to_dict(self.config),
            "shadow_config": config_to_dict(self._shadow.config),
        }
        report.update(self._shadow_tracker.report())
        return report

    def _mirror(self, primary_closed: list[TimeunitResult], op) -> None:
        """Run one ingest operation on the shadow and diff the closed units.

        Shadow failures are contained: recorded in the tracker (visible in
        ``shadow_report()``), never raised into the primary's ingest path.
        """
        shadow, tracker = self._shadow, self._shadow_tracker
        assert shadow is not None and tracker is not None
        try:
            shadow_closed = op(shadow)
        except Exception as exc:  # noqa: BLE001 - the experiment must not
            tracker.note_error(exc)  # take down live detection
            return
        tracker.observe(self, shadow, primary_closed, shadow_closed, self._observers)

    def _adopt(self, other: "DetectionSession", full: bool) -> None:
        """Take over ``other``'s detection state (reconfigure / promote).

        ``full=False`` adopts only what a config swap rebuilt — config, tree
        and algorithm (clock, pending counts and reports are this session's
        own objects and were passed through the state surgery unchanged).
        ``full=True`` additionally adopts the stream-position and report
        state, which is what promotion needs.  The dense-ingest caches are
        reset either way — they are keyed to the old algorithm instance.
        """
        self.config = other.config
        self.tree = other.tree
        self.algorithm = other.algorithm
        self.algorithm_name = other.algorithm_name
        self._dense_ready = None
        self._dense_dict = None
        if full:
            self.clock = other.clock
            self.warmup_units = other.warmup_units
            self.max_results = other.max_results
            self._units_processed = other._units_processed
            self._warmup_announced = other._warmup_announced
            self._pending = other._pending
            self._pending_unit = other._pending_unit
            self.reading_seconds = other.reading_seconds
            self.reports = other.reports
            self.results = other.results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def units_processed(self) -> int:
        return self._units_processed

    @property
    def anomalies(self) -> list[Anomaly]:
        """All anomalies reported so far (after warm-up)."""
        return self.reports.query()

    def stage_seconds(self) -> dict[str, float]:
        """Per-stage running time, including trace reading (Table III stages)."""
        stages = dict(self.algorithm.stage_seconds)
        stages["reading_traces"] = self.reading_seconds
        return stages

    def adaptation_stats(self) -> dict[str, Any]:
        """The tracking algorithm's delta-adaptation counters.

        For ADA: mode (delta/legacy), stable-fast-path and planned timeunit
        counts, split/merge operation totals and the time spent in adaptation
        proper (see :meth:`repro.core.ada.ADAAlgorithm.adaptation_stats`).
        Algorithms without an adaptation engine report ``{}``.
        """
        getter = getattr(self.algorithm, "adaptation_stats", None)
        return getter() if getter is not None else {}

    def close_profile(self) -> dict[str, Any]:
        """The algorithm's close-path profile (fused/staged counts, latency
        histogram); ``{}`` for algorithms without one."""
        getter = getattr(self.algorithm, "close_profile", None)
        return getter() if getter is not None else {}

    def memory_units(self) -> int:
        """The algorithm's memory cost proxy (Table IV)."""
        return self.algorithm.memory_units()

    # ------------------------------------------------------------------
    # Pickling (process transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        """Pickle every field except the observer list.

        Observers are process-local callbacks (often closures over sockets,
        files or UI state); shipping a session to a worker process must not
        drag them along.  Re-subscribe after unpickling where needed — the
        sharded engine keeps observers on the coordinator side and never
        relies on them crossing a process boundary.
        """
        state = dict(self.__dict__)
        state["_observers"] = []
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot of the full session state.

        Restoring it with :meth:`from_state_dict` yields a session whose
        subsequent detections are identical to an uninterrupted run (the
        ``results`` list is *not* part of the snapshot; past results live in
        ``reports``).
        """
        from repro.io.checkpoint import session_state_dict

        return session_state_dict(self)

    @classmethod
    def from_state_dict(cls, state: Mapping[str, Any]) -> "DetectionSession":
        """Rebuild a session (tree, config, algorithm state) from a snapshot."""
        from repro.io.checkpoint import session_from_state_dict

        return session_from_state_dict(state)

    def save_checkpoint(self, path: Any) -> None:
        """Persist :meth:`state_dict` as a JSON checkpoint file."""
        from repro.io.checkpoint import save_session_checkpoint

        save_session_checkpoint(self, path)

    @classmethod
    def load_checkpoint(cls, path: Any) -> "DetectionSession":
        """Restore a session from a file written by :meth:`save_checkpoint`."""
        from repro.io.checkpoint import load_session_checkpoint

        return load_session_checkpoint(path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DetectionSession(name={self.name!r}, algorithm={self.algorithm_name!r}, "
            f"units_processed={self._units_processed})"
        )
