"""Shadow sessions: A/B a candidate configuration against the live stream.

The paper's parameter studies (split rule, θ, forecasting model — Section
VII) are offline replays; a production monitor wants the same comparison
*online* and at zero extra ingest cost.  A shadow session is a clone of a
live session's full state (through the checkpoint machinery) running a
candidate config against the identical record stream: the primary session
fans every ingest call out to its shadow, and this module's
:class:`ShadowTracker` diffs the two detection streams timeunit by timeunit.

Divergences surface three ways:

* the ``on_shadow_divergence`` observer hook
  (:class:`~repro.engine.hooks.EngineObserver`) fires on every timeunit whose
  anomaly sets differ;
* :meth:`ShadowTracker.report` aggregates per-timeunit agreement and the
  anomalies seen only by one side (the substrate of ``shadow_report()`` and
  the service's ``GET /shadow``);
* shadow ingest errors are contained — recorded in the tracker, never
  propagated into the primary's ingest path.

The tracker state is JSON-safe and checkpoints with the owning session, so a
crash-resumed daemon continues its experiment bit-identically.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.core.detector import Anomaly
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import TimeunitResult
    from repro.engine.hooks import EngineObserver
    from repro.engine.session import DetectionSession

#: Cap on retained per-timeunit divergence detail entries (counters are
#: exact regardless; oldest detail entries are dropped first).
MAX_DIVERGENCE_DETAILS = 256


class ShadowStateError(ConfigurationError):
    """A shadow operation conflicts with the session's shadow state
    (starting a second shadow, stopping/promoting a non-existent one).
    Maps to HTTP 409 in the service layer."""


def _anomaly_key(data: Mapping[str, Any]) -> str:
    return json.dumps(data, sort_keys=True)


class ShadowTracker:
    """Per-timeunit detection diff between a primary session and its shadow.

    Closed results of both sides are buffered by timeunit index and compared
    as soon as a timeunit has closed on both (in lockstep operation that is
    within the same ingest call).  Comparison is by the anomalies' full
    JSON form, the same canonical content the checkpoints persist.
    """

    def __init__(self) -> None:
        self.units_compared = 0
        self.units_agreeing = 0
        self.units_divergent = 0
        self.anomalies_only_in_primary = 0
        self.anomalies_only_in_shadow = 0
        self.shadow_errors = 0
        self.last_error: "str | None" = None
        #: Bounded detail log: ``{"timeunit", "only_in_primary",
        #: "only_in_shadow"}`` with anomaly dicts, newest last.
        self.divergences: list[dict[str, Any]] = []
        # Timeunits closed on one side but not yet on the other
        # (anomaly dicts, JSON-safe so a checkpoint can land in between).
        self._primary_pending: dict[int, list[dict[str, Any]]] = {}
        self._shadow_pending: dict[int, list[dict[str, Any]]] = {}

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def note_error(self, exc: BaseException) -> None:
        """Record a contained shadow-side ingest failure."""
        self.shadow_errors += 1
        self.last_error = repr(exc)

    def observe(
        self,
        primary: "DetectionSession",
        shadow: "DetectionSession",
        primary_results: Sequence["TimeunitResult"],
        shadow_results: Sequence["TimeunitResult"],
        observers: Iterable["EngineObserver"] = (),
    ) -> None:
        """Fold one ingest call's closed results from both sides and compare.

        Fires ``on_shadow_divergence(primary, shadow, timeunit,
        only_in_primary, only_in_shadow)`` on every timeunit whose anomaly
        sets differ (anomalies as :class:`~repro.core.detector.Anomaly`).
        """
        for result in primary_results:
            self._primary_pending[int(result.timeunit)] = [
                anomaly.to_dict() for anomaly in result.anomalies
            ]
        for result in shadow_results:
            self._shadow_pending[int(result.timeunit)] = [
                anomaly.to_dict() for anomaly in result.anomalies
            ]
        ready = sorted(self._primary_pending.keys() & self._shadow_pending.keys())
        for unit in ready:
            primary_anomalies = self._primary_pending.pop(unit)
            shadow_anomalies = self._shadow_pending.pop(unit)
            primary_keys = {_anomaly_key(a): a for a in primary_anomalies}
            shadow_keys = {_anomaly_key(a): a for a in shadow_anomalies}
            only_primary = [
                data for key, data in primary_keys.items() if key not in shadow_keys
            ]
            only_shadow = [
                data for key, data in shadow_keys.items() if key not in primary_keys
            ]
            self.units_compared += 1
            if not only_primary and not only_shadow:
                self.units_agreeing += 1
                continue
            self.units_divergent += 1
            self.anomalies_only_in_primary += len(only_primary)
            self.anomalies_only_in_shadow += len(only_shadow)
            self.divergences.append(
                {
                    "timeunit": unit,
                    "only_in_primary": only_primary,
                    "only_in_shadow": only_shadow,
                }
            )
            if len(self.divergences) > MAX_DIVERGENCE_DETAILS:
                del self.divergences[: len(self.divergences) - MAX_DIVERGENCE_DETAILS]
            for observer in observers:
                observer.on_shadow_divergence(
                    primary,
                    shadow,
                    unit,
                    tuple(Anomaly.from_dict(data) for data in only_primary),
                    tuple(Anomaly.from_dict(data) for data in only_shadow),
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> dict[str, Any]:
        """Aggregate agreement document (the body of ``shadow_report()``)."""
        return {
            "units_compared": self.units_compared,
            "units_agreeing": self.units_agreeing,
            "units_divergent": self.units_divergent,
            "agreement": (
                self.units_agreeing / self.units_compared
                if self.units_compared
                else None
            ),
            "anomalies_only_in_primary": self.anomalies_only_in_primary,
            "anomalies_only_in_shadow": self.anomalies_only_in_shadow,
            "shadow_errors": self.shadow_errors,
            "last_error": self.last_error,
            "divergences": [dict(entry) for entry in self.divergences],
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot (pending buffers included, for exact resume)."""
        return {
            "units_compared": self.units_compared,
            "units_agreeing": self.units_agreeing,
            "units_divergent": self.units_divergent,
            "anomalies_only_in_primary": self.anomalies_only_in_primary,
            "anomalies_only_in_shadow": self.anomalies_only_in_shadow,
            "shadow_errors": self.shadow_errors,
            "last_error": self.last_error,
            "divergences": [dict(entry) for entry in self.divergences],
            "primary_pending": [
                [unit, rows] for unit, rows in sorted(self._primary_pending.items())
            ],
            "shadow_pending": [
                [unit, rows] for unit, rows in sorted(self._shadow_pending.items())
            ],
        }

    @classmethod
    def from_state_dict(cls, state: Mapping[str, Any]) -> "ShadowTracker":
        tracker = cls()
        tracker.units_compared = int(state["units_compared"])
        tracker.units_agreeing = int(state["units_agreeing"])
        tracker.units_divergent = int(state["units_divergent"])
        tracker.anomalies_only_in_primary = int(state["anomalies_only_in_primary"])
        tracker.anomalies_only_in_shadow = int(state["anomalies_only_in_shadow"])
        tracker.shadow_errors = int(state["shadow_errors"])
        last_error = state.get("last_error")
        tracker.last_error = None if last_error is None else str(last_error)
        tracker.divergences = [dict(entry) for entry in state["divergences"]]
        tracker._primary_pending = {
            int(unit): [dict(row) for row in rows]
            for unit, rows in state.get("primary_pending", [])
        }
        tracker._shadow_pending = {
            int(unit): [dict(row) for row in rows]
            for unit, rows in state.get("shadow_pending", [])
        }
        return tracker
