"""Worker-side execution units shared by every shard transport.

A worker process (or remote worker) holds a dictionary of
:class:`WorkerUnit` objects — whole sessions and subtree-shard sessions —
and executes coordinator verbs against them.  The transport layer
(:mod:`repro.engine.transport`) only moves bytes; the verb semantics live
here so the pipe, shared-memory and TCP transports are guaranteed to run
the exact same code against the exact same state.

Verbs
-----
``add``
    ``[(key, session_state, capture_depth), ...]`` — build sessions from
    serial-format state dicts.  ``capture_depth == 0`` hosts a whole
    session; ``capture_depth >= 1`` hosts a depth-k subtree shard: report
    retention is disabled (the coordinator owns the merged store) and the
    shard's frontier band — root plus ancestors above the cut — is captured
    per closed timeunit for coordinator-side replay.
``remove``
    ``[key, ...]`` — drop units (used by churn-driven rebalancing).
``ingest``
    ``[(key, kind, payload), ...]`` — feed batches (``"whole"``) or
    watermark segments (``"sub"``).
``flush`` / ``state`` / ``query``
    Close pending units, export serial-format states, read introspection
    attributes.
"""

from __future__ import annotations

import pickle
import traceback
from typing import Any

from repro.core.results import TimeunitResult
from repro.engine.hooks import EngineObserver
from repro.engine.session import DetectionSession
from repro.exceptions import ShardingError
from repro.io.checkpoint import (
    frontier_band_paths,
    session_from_state_dict,
    session_state_dict,
)


class FrontierCapture(EngineObserver):
    """Records (timeunit, frontier raw weights) per closed timeunit.

    Band raw weights are additive across disjoint subtree shards; the
    coordinator sums the per-shard tuples to replay the shared band's
    split-rule bookkeeping and reference series (see
    ``repro.engine.sharded._FrontierReplica``).
    """

    def __init__(self) -> None:
        self.weights: list[tuple[int, tuple[float, ...]]] = []

    def on_timeunit_closed(
        self, session: DetectionSession, result: TimeunitResult
    ) -> None:
        values = getattr(session.algorithm, "last_frontier_raw", None)
        if values is None:
            values = (float(getattr(session.algorithm, "last_root_raw", 0.0)),)
        self.weights.append((int(result.timeunit), tuple(values)))

    def drain(self) -> list[tuple[int, tuple[float, ...]]]:
        drained, self.weights = self.weights, []
        return drained


class WorkerUnit:
    """One shard unit (a whole session or one subtree group) in a worker."""

    def __init__(self, session: DetectionSession, capture_depth: int):
        self.session = session
        self.capture: "FrontierCapture | None" = None
        if capture_depth >= 1:
            # Subtree shard: the coordinator owns the merged report store, so
            # retaining reports here would only grow worker memory forever.
            session.retain_reports = False
            band = frontier_band_paths(session.tree.leaf_paths(), capture_depth)
            capture_frontier = getattr(session.algorithm, "capture_frontier", None)
            if capture_frontier is not None:
                capture_frontier(band)
            self.capture = FrontierCapture()
            session.subscribe(self.capture)

    def drain(self) -> "list[tuple[int, tuple[float, ...]]] | None":
        return self.capture.drain() if self.capture is not None else None


def worker_handle(units: dict, verb: str, ops: Any) -> Any:
    """Execute one coordinator verb against the worker's unit table."""
    if verb == "add":
        for key, state, capture_depth in ops:
            units[key] = WorkerUnit(
                session_from_state_dict(state), int(capture_depth)
            )
        return None
    if verb == "remove":
        for key in ops:
            units.pop(key, None)
        return None
    if verb == "ingest":
        out = []
        for key, kind, payload in ops:
            unit = units[key]
            closed: list[TimeunitResult] = []
            if kind == "whole":
                closed.extend(unit.session.ingest_record_batch(payload))
            else:  # subtree segments: [(watermark, batch-or-None), ...]
                for watermark, columns in payload:
                    closed.extend(unit.session.advance_to(watermark))
                    if columns is not None and len(columns):
                        closed.extend(unit.session.ingest_record_batch(columns))
            out.append((key, closed, unit.drain()))
        return out
    if verb == "flush":
        return [(key, units[key].session.flush(), units[key].drain()) for key in ops]
    if verb == "state":
        return [(key, session_state_dict(units[key].session)) for key in ops]
    if verb == "query":
        what, keys = ops
        if what == "anomalies":
            return [(key, units[key].session.anomalies) for key in keys]
        if what == "units_processed":
            return [(key, units[key].session.units_processed) for key in keys]
        if what == "memory_units":
            return [(key, units[key].session.memory_units()) for key in keys]
        if what == "adaptation_stats":
            return [(key, units[key].session.adaptation_stats()) for key in keys]
        if what == "stage_seconds":
            return [(key, units[key].session.stage_seconds()) for key in keys]
        if what == "close_profile":
            return [(key, units[key].session.close_profile()) for key in keys]
        raise ShardingError(f"unknown worker query {what!r}")
    raise ShardingError(f"unknown worker verb {verb!r}")


def _maybe_worker_fault(worker_id: "int | None", verb: str) -> None:
    """Apply any armed ``worker_exit`` fault for this message.

    The fault plan reaches worker processes through the ``REPRO_FAULT_PLAN``
    environment variable (see :mod:`repro.testing.faults`); a hit hard-exits
    the process *before* replying, simulating a worker that dies
    mid-command.  The lazy import keeps the zero-plan hot path free of any
    testing-module dependency.
    """
    from repro.testing.faults import worker_message_fault

    spec = worker_message_fault(worker_id, verb)
    if spec is not None:  # pragma: no cover - exits the worker process
        import os

        os._exit(23)


def handle_message(
    units: dict, verb: str, ops: Any, worker_id: "int | None" = None
) -> tuple:
    """Run one verb and wrap the outcome as an ``("ok"|"error", ...)`` reply."""
    try:
        _maybe_worker_fault(worker_id, verb)
        return ("ok", worker_handle(units, verb, ops))
    except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
        return (
            "error",
            (
                transportable(exc),
                type(exc).__name__,
                str(exc),
                traceback.format_exc(),
            ),
        )


def transportable(exc: BaseException) -> "BaseException | None":
    """``exc`` itself when it survives a pickle round trip, else None.

    Library exceptions define ``__reduce__`` where needed, so a worker-side
    ``OutOfOrderRecordError`` reaches the coordinator with its documented
    attributes (timestamp, window_start) intact.
    """
    try:
        clone = pickle.loads(pickle.dumps(exc))
    except Exception:
        return None
    return exc if type(clone) is type(exc) else None


def revive_exception(
    exc: "BaseException | None", name: str, message: str, trace: str
) -> BaseException:
    """Rebuild a worker-side exception coordinator-side.

    Pickle-transportable exceptions arrive whole (attributes included) and
    are re-raised as-is; the rest surface as :class:`ShardingError` with the
    worker traceback attached.
    """
    if exc is not None:
        return exc
    return ShardingError(f"worker failure: {name}: {message}\n{trace}")
