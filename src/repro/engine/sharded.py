"""Sharded detection engine: sessions and hierarchy subtrees across processes.

The detection pipeline is embarrassingly parallel along two axes: distinct
sessions never share state, and — because succinct-heavy-hitter weights,
series adaptation and detection are all computed bottom-up — disjoint
depth-1 subtrees of one hierarchy interact only through the root.
:class:`ShardedDetectionEngine` exploits both: it partitions its sessions
(and, on request, each session's depth-1 subtrees) across N worker processes
and merges their outputs deterministically, producing detections, timeunit
results, reports and checkpoints **bit-for-bit identical** to the serial
:class:`~repro.engine.engine.DetectionEngine` regardless of worker count or
scheduling.

How equivalence is preserved
----------------------------
*Session shards.*  A whole session lives on exactly one worker and sees, in
order, exactly the sub-stream the serial router would have fed it (batches
are partitioned by stream key coordinator-side with the existing one-pass
partitioner).  Same code, same inputs, same floats.

*Subtree shards.*  One session may be split into ``subtree_shards`` shard
sessions, each owning a disjoint group of depth-1 subtrees.  Three
mechanisms make the union of their outputs equal the serial session:

1. **Watermark segmentation.**  Serially, all subtrees share one pending
   timeunit, advanced by every record of the session.  The coordinator
   therefore computes, per record, the running maximum timeunit of the whole
   session stream (one vectorized prefix-max per batch) and prefixes each
   shard's sub-batch with ``advance_to(watermark)`` segments, so every shard
   closes (possibly empty) timeunits at exactly the serial boundaries and
   applies the ``out_of_order_policy`` against exactly the serial pending
   unit.
2. **Deterministic merge.**  Shard results are buffered per timeunit and
   merged once every group has closed that unit: heavy hitter sets union,
   per-path actuals/forecasts are taken from the owning shard in sorted-path
   order (the serial iteration order), anomalies sort by node path.
3. **Root exclusion.**  Only the root couples subtrees: when its residual
   modified weight reaches θ it gains a time series whose split/merge
   adaptation spans every depth-1 subtree.  Subtree sharding therefore
   requires ``track_root=False`` and ``allow_root_heavy=False`` — a config
   choice the serial engine honours identically, so equivalence holds on
   *any* workload, not just root-quiet ones.  (The root's raw weight is
   still additive across shards; the coordinator replays its split-rule
   bookkeeping so merged checkpoints stay byte-faithful.)

Checkpoints are format-identical to serial ones: :meth:`state_dict` merges
shard states back into canonical serial session states (see
:func:`repro.io.checkpoint.merge_session_states`), so a sharded engine can
resume an unsharded checkpoint and vice versa, at any worker count.

The ``out_of_order_policy="raise"`` caveat of the columnar path applies here
too, compounded by parallelism: the offending record still raises
:class:`~repro.exceptions.OutOfOrderRecordError`, but records dispatched to
other shards in the same round may already have been ingested.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from typing import Any, Iterable, Mapping, Sequence

from repro.core.config import TiresiasConfig
from repro.core.detector import Anomaly
from repro.core.reporting import AnomalyReportStore
from repro.core.results import TimeunitResult
from repro.core.split_rules import NodeUsageStats
from repro.engine.engine import UNKNOWN_STREAM_POLICIES, StreamKey, attribute_stream_key
from repro.engine.hooks import EngineObserver
from repro.engine.session import DetectionSession
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    ShardingError,
    StreamError,
)
from repro.hierarchy.tree import HierarchyTree
from repro.io.checkpoint import (
    _read_json,
    _write_json,
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    _check_header,
    clock_from_dict,
    merge_session_states,
    session_from_state_dict,
    session_state_dict,
    split_session_state,
)
from repro.streaming.batch import RecordBatch, iter_record_batches
from repro.streaming.clock import SimulationClock
from repro.streaming.record import OperationalRecord

try:  # pragma: no cover - exercised implicitly by the whole suite
    import numpy as _np
except ImportError:  # pragma: no cover - minimal installs
    _np = None


# ----------------------------------------------------------------------
# Subtree shard planning
# ----------------------------------------------------------------------
def plan_subtree_groups(
    leaves: Sequence[Sequence[str]], shards: int
) -> list[list[str]]:
    """Deterministically assign depth-1 labels to ``shards`` balanced groups.

    Labels are ordered by descending leaf count (ties alphabetical) and
    greedily placed on the lightest group (ties on the lowest group id) —
    a classic LPT schedule.  At most ``len(depth-1 labels)`` groups are
    produced; labels inside a group are returned sorted.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    counts: dict[str, int] = {}
    for path in leaves:
        counts[path[0]] = counts.get(path[0], 0) + 1
    k = min(shards, len(counts))
    groups: list[list[str]] = [[] for _ in range(k)]
    loads = [0] * k
    for label in sorted(counts, key=lambda lab: (-counts[lab], lab)):
        gid = min(range(k), key=lambda g: (loads[g], g))
        groups[gid].append(label)
        loads[gid] += counts[label]
    return [sorted(group) for group in groups]


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
class _RootCapture(EngineObserver):
    """Records (timeunit, local root raw weight) per closed timeunit.

    Root raw weights are additive across disjoint subtree shards; the
    coordinator sums them to replay the root's split-rule bookkeeping for
    checkpoint fidelity (see :class:`_RootSplitStats`).
    """

    def __init__(self) -> None:
        self.weights: list[tuple[int, float]] = []

    def on_timeunit_closed(self, session: DetectionSession, result: TimeunitResult) -> None:
        self.weights.append(
            (
                int(result.timeunit),
                float(getattr(session.algorithm, "last_root_raw", 0.0)),
            )
        )

    def drain(self) -> list[tuple[int, float]]:
        drained, self.weights = self.weights, []
        return drained


class _WorkerUnit:
    """One shard unit (a whole session or one subtree group) in a worker."""

    def __init__(self, session: DetectionSession, capture_root: bool):
        self.session = session
        self.capture: "_RootCapture | None" = None
        if capture_root:
            # Subtree shard: the coordinator owns the merged report store, so
            # retaining reports here would only grow worker memory forever.
            session.retain_reports = False
            self.capture = _RootCapture()
            session.subscribe(self.capture)

    def drain(self) -> "list[tuple[int, float, float]] | None":
        return self.capture.drain() if self.capture is not None else None


def _worker_handle(units: dict, verb: str, ops: Any) -> Any:
    if verb == "add":
        for key, state, capture_root in ops:
            units[key] = _WorkerUnit(session_from_state_dict(state), capture_root)
        return None
    if verb == "ingest":
        out = []
        for key, kind, payload in ops:
            unit = units[key]
            closed: list[TimeunitResult] = []
            if kind == "whole":
                closed.extend(unit.session.ingest_record_batch(payload))
            else:  # subtree segments: [(watermark, batch-or-None), ...]
                for watermark, columns in payload:
                    closed.extend(unit.session.advance_to(watermark))
                    if columns is not None and len(columns):
                        closed.extend(unit.session.ingest_record_batch(columns))
            out.append((key, closed, unit.drain()))
        return out
    if verb == "flush":
        return [(key, units[key].session.flush(), units[key].drain()) for key in ops]
    if verb == "state":
        return [(key, session_state_dict(units[key].session)) for key in ops]
    if verb == "query":
        what, keys = ops
        if what == "anomalies":
            return [(key, units[key].session.anomalies) for key in keys]
        if what == "units_processed":
            return [(key, units[key].session.units_processed) for key in keys]
        if what == "memory_units":
            return [(key, units[key].session.memory_units()) for key in keys]
        if what == "adaptation_stats":
            return [(key, units[key].session.adaptation_stats()) for key in keys]
        raise ShardingError(f"unknown worker query {what!r}")
    raise ShardingError(f"unknown worker verb {verb!r}")


def _worker_main(conn, worker_id: int) -> None:  # pragma: no cover - subprocess
    """Worker loop: executes coordinator commands until told to stop."""
    units: dict[Any, _WorkerUnit] = {}
    while True:
        try:
            verb, ops = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if verb == "stop":
            try:
                conn.send(("ok", None))
            except (BrokenPipeError, OSError):
                pass
            return
        try:
            conn.send(("ok", _worker_handle(units, verb, ops)))
        except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
            try:
                conn.send(
                    (
                        "error",
                        (
                            _transportable(exc),
                            type(exc).__name__,
                            str(exc),
                            traceback.format_exc(),
                        ),
                    )
                )
            except (BrokenPipeError, OSError):
                return


def _transportable(exc: BaseException) -> "BaseException | None":
    """``exc`` itself when it survives a pickle round trip, else None.

    Library exceptions define ``__reduce__`` where needed, so a worker-side
    ``OutOfOrderRecordError`` reaches the coordinator with its documented
    attributes (timestamp, window_start) intact.
    """
    try:
        clone = pickle.loads(pickle.dumps(exc))
    except Exception:
        return None
    return exc if type(clone) is type(exc) else None


def _revive_exception(
    exc: "BaseException | None", name: str, message: str, trace: str
) -> BaseException:
    """Rebuild a worker-side exception coordinator-side.

    Pickle-transportable exceptions arrive whole (attributes included) and
    are re-raised as-is; the rest surface as :class:`ShardingError` with the
    worker traceback attached.
    """
    if exc is not None:
        return exc
    return ShardingError(f"worker failure: {name}: {message}\n{trace}")


# ----------------------------------------------------------------------
# Coordinator-side state
# ----------------------------------------------------------------------
class ShardedSessionHandle:
    """Stand-in passed to engine-level observers instead of a live session.

    Worker sessions never cross the process boundary, so observer hooks fire
    on the coordinator with this handle as the ``session`` argument.  It
    carries the attributes observers typically read (:attr:`name`,
    :attr:`config`, :attr:`warmup_units`, :attr:`units_processed`).
    """

    def __init__(self, name: str, config: TiresiasConfig, warmup_units: int):
        self.name = name
        self.config = config
        self.warmup_units = warmup_units
        self.units_processed = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardedSessionHandle(name={self.name!r})"


class _RootSplitStats:
    """Coordinator replica of ADA's root-node split-rule statistics.

    The root is the one node no subtree shard owns; its raw weight is the sum
    of the shards' local root weights, and this class replays exactly the
    arithmetic of ``ADAAlgorithm._update_stats`` on that sum so merged
    checkpoints carry the same root statistics a serial run would have.
    (The root is never a split receiver, so these values cannot influence
    detections — they exist for checkpoint fidelity.)
    """

    def __init__(
        self,
        alpha: float,
        stats: "Mapping[str, Any] | None" = None,
        last_unit: "int | None" = None,
    ):
        self.alpha = alpha
        self.stats: "NodeUsageStats | None" = None
        if stats is not None:
            self.stats = NodeUsageStats(
                last_weight=float(stats["last_weight"]),
                cumulative_weight=float(stats["cumulative_weight"]),
                ewma_weight=float(stats["ewma_weight"]),
                observations=int(stats["observations"]),
            )
        self.last_unit = None if last_unit is None else int(last_unit)

    def observe(self, timeunit: int, weight: float) -> None:
        if self.stats is None:
            self.stats = NodeUsageStats()
        if self.last_unit is not None and timeunit - self.last_unit > 1:
            gap = timeunit - self.last_unit - 1
            self.stats.ewma_weight *= (1 - self.alpha) ** gap
            self.stats.last_weight = 0.0
        self.stats.update(weight, self.alpha)
        self.last_unit = timeunit

    def export(self) -> dict[str, Any]:
        withheld: dict[str, Any] = {}
        if self.stats is not None:
            withheld["stats"] = {
                "last_weight": self.stats.last_weight,
                "cumulative_weight": self.stats.cumulative_weight,
                "ewma_weight": self.stats.ewma_weight,
                "observations": self.stats.observations,
            }
        if self.last_unit is not None:
            withheld["stats_last_unit"] = self.last_unit
        return withheld


class _WholeUnit:
    """Coordinator record of a session sharded at session granularity."""

    kind = "whole"

    def __init__(self, name: str, worker: int, state: dict[str, Any]):
        self.name = name
        self.worker = worker
        self.key = ("w", name)
        self.state: "dict[str, Any] | None" = state  # dropped once shipped
        self.handle = ShardedSessionHandle(
            name, _config_of(state), int(state["warmup_units"])
        )
        self.handle.units_processed = int(state["units_processed"])
        self.warmup_announced = bool(state["warmup_announced"])


class _SubtreeUnit:
    """Coordinator record and merge state of a subtree-sharded session."""

    kind = "sub"

    def __init__(
        self,
        name: str,
        base_state: dict[str, Any],
        groups: Sequence[Sequence[str]],
        sub_states: Sequence[dict[str, Any]],
        workers: Sequence[int],
        withheld: Mapping[str, Any],
    ):
        self.name = name
        # Only the identity fields and pre-split counter baselines that
        # merge_session_states reads are retained; pinning the full pre-split
        # state (every node series) would double the session's footprint.
        base_algo = base_state["algorithm_state"]
        self.base_state: dict[str, Any] = {
            "name": base_state["name"],
            "algorithm": base_state["algorithm"],
            "tree": base_state["tree"],
            "config": base_state["config"],
            "clock": base_state["clock"],
            "max_results": base_state.get("max_results"),
            "reading_seconds": base_state["reading_seconds"],
            "algorithm_state": {
                key: base_algo[key]
                for key in ("stage_seconds", "split_operations", "merge_operations")
                if key in base_algo
            },
        }
        self.groups = [list(group) for group in groups]
        self.workers = list(workers)
        self.keys = [("s", name, gid) for gid in range(len(groups))]
        self.sub_states: "list[dict[str, Any]] | None" = list(sub_states)
        self.label_to_gid = {
            label: gid for gid, group in enumerate(groups) for label in group
        }
        self.clock: SimulationClock = clock_from_dict(base_state["clock"])
        self.handle = ShardedSessionHandle(
            name, _config_of(base_state), int(base_state["warmup_units"])
        )
        self.handle.units_processed = int(base_state["units_processed"])
        self.warmup_announced = bool(base_state["warmup_announced"])
        self.reports = AnomalyReportStore()
        self.reports.add_many(
            Anomaly.from_dict(data) for data in base_state["reports"]
        )
        #: Serial pending timeunit of the session (None = not anchored yet).
        self.carried: "int | None" = (
            None
            if base_state["pending_unit"] is None
            else int(base_state["pending_unit"])
        )
        self.root_stats: "_RootSplitStats | None" = None
        if str(base_state["algorithm"]) == "ada":
            self.root_stats = _RootSplitStats(
                float(base_state["config"]["split_ewma_alpha"]),
                stats=withheld.get("stats"),
                last_unit=withheld.get("stats_last_unit"),
            )
        #: timeunit -> {gid: (result, local root raw weight)}
        self.buffer: dict[int, dict[int, tuple[TimeunitResult, float]]] = {}

    @property
    def num_groups(self) -> int:
        return len(self.groups)


def _config_of(state: Mapping[str, Any]) -> TiresiasConfig:
    from repro.io.checkpoint import config_from_dict

    return config_from_dict(state["config"])


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ShardedDetectionEngine:
    """Multi-process detection engine with serial-equivalent semantics.

    Parameters
    ----------
    num_workers:
        Number of worker processes.  Defaults to ``os.cpu_count()``.  Shard
        units (whole sessions and subtree groups) are assigned round-robin in
        registration order, so the layout is deterministic.
    stream_key / unknown_stream:
        Routing exactly as in :class:`~repro.engine.engine.DetectionEngine`;
        both are applied coordinator-side, so custom selectors never need to
        be picklable.
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or ``None`` for the platform default.  Sessions are
        shipped to workers as JSON ``state_dict`` snapshots, so every start
        method works.

    Workers start lazily on first use; call :meth:`close` (or use the engine
    as a context manager) to terminate them.  Ingestion is batch-oriented:
    :meth:`ingest_record_batch` / :meth:`process_batches` are the native
    paths, with record-based entry points provided for API parity.
    """

    def __init__(
        self,
        num_workers: "int | None" = None,
        stream_key: "StreamKey | None" = None,
        unknown_stream: str = "raise",
        start_method: "str | None" = None,
    ):
        if unknown_stream not in UNKNOWN_STREAM_POLICIES:
            raise ConfigurationError(
                f"unknown_stream must be one of {sorted(UNKNOWN_STREAM_POLICIES)}, "
                f"got {unknown_stream!r}"
            )
        if num_workers is None:
            num_workers = multiprocessing.cpu_count()
        if num_workers < 1:
            raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self.stream_key = stream_key or attribute_stream_key
        self.unknown_stream = unknown_stream
        self.start_method = start_method
        self._units: dict[str, "_WholeUnit | _SubtreeUnit"] = {}
        self._observers: list[EngineObserver] = []
        self._workers: "list[Any] | None" = None
        self._conns: "list[Any] | None" = None
        self._next_worker = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Session management
    # ------------------------------------------------------------------
    def add_session(
        self,
        name: str,
        tree: HierarchyTree,
        config: TiresiasConfig,
        algorithm: str = "ada",
        clock: "SimulationClock | None" = None,
        warmup_units: "int | None" = None,
        max_results: "int | None" = None,
        subtree_shards: int = 1,
    ) -> None:
        """Create and register a named session (mirrors the serial engine).

        ``subtree_shards > 1`` additionally partitions the session's depth-1
        subtrees into that many shard groups (capped at the number of
        subtrees), which requires ``config.track_root=False`` with
        ``allow_root_heavy=False`` and a shardable algorithm (``"ada"`` or
        ``"sta"``).
        """
        session = DetectionSession(
            tree,
            config,
            algorithm=algorithm,
            clock=clock,
            warmup_units=warmup_units,
            name=name,
            max_results=max_results,
        )
        self.attach_session(session, subtree_shards=subtree_shards)

    def attach_session(self, session: DetectionSession, subtree_shards: int = 1) -> None:
        """Register an existing session from its state snapshot.

        The engine takes a snapshot at attach time; later mutations of the
        passed session object are not seen by the workers.
        """
        self.attach_session_state(session.state_dict(), subtree_shards=subtree_shards)

    def attach_session_state(
        self, state: Mapping[str, Any], subtree_shards: int = 1
    ) -> None:
        """Register a session from a serial-format ``state_dict`` snapshot."""
        self._check_open()
        name = str(state["name"])
        if name in self._units:
            raise ConfigurationError(f"a session named {name!r} is already registered")
        state = dict(state)
        subtree_shards = int(subtree_shards)
        if subtree_shards < 1:
            raise ConfigurationError(
                f"subtree_shards must be >= 1, got {subtree_shards}"
            )
        unit: "_WholeUnit | _SubtreeUnit"
        groups = (
            plan_subtree_groups(state["tree"]["leaves"], subtree_shards)
            if subtree_shards > 1
            else []
        )
        if len(groups) > 1:
            try:
                sub_states, withheld = split_session_state(state, groups)
            except CheckpointError as exc:
                raise ConfigurationError(str(exc)) from exc
            workers = [self._assign_worker() for _ in groups]
            unit = _SubtreeUnit(name, state, groups, sub_states, workers, withheld)
        else:
            unit = _WholeUnit(name, self._assign_worker(), state)
        self._units[name] = unit
        if self._workers is not None:
            self._ship_unit(unit)

    def _assign_worker(self) -> int:
        worker = self._next_worker % self.num_workers
        self._next_worker += 1
        return worker

    @property
    def session_names(self) -> tuple[str, ...]:
        return tuple(self._units)

    def __contains__(self, name: str) -> bool:
        return name in self._units

    def __len__(self) -> int:
        return len(self._units)

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def subscribe(self, observer: EngineObserver) -> EngineObserver:
        """Attach an observer; hooks fire coordinator-side on merged results
        with a :class:`ShardedSessionHandle` as the session argument."""
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: EngineObserver) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ShardingError("this sharded engine has been closed")

    def _ensure_started(self) -> None:
        self._check_open()
        if self._workers is not None:
            return
        ctx = multiprocessing.get_context(self.start_method)
        self._workers, self._conns = [], []
        for worker_id in range(self.num_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, worker_id),
                name=f"repro-shard-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(process)
            self._conns.append(parent_conn)
        for unit in self._units.values():
            self._ship_unit(unit)

    def _ship_unit(self, unit: "_WholeUnit | _SubtreeUnit") -> None:
        if unit.kind == "whole":
            assert unit.state is not None
            self._roundtrip({unit.worker: [(unit.key, unit.state, False)]}, "add")
            unit.state = None  # the worker owns the live state from here on
        else:
            assert unit.sub_states is not None
            ops: dict[int, list] = {}
            for gid, worker in enumerate(unit.workers):
                ops.setdefault(worker, []).append(
                    (unit.keys[gid], unit.sub_states[gid], True)
                )
            self._roundtrip(ops, "add")
            unit.sub_states = None

    def _roundtrip(self, ops_by_worker: Mapping[int, Any], verb: str) -> dict[int, Any]:
        """Send one message per involved worker; collect replies determinately."""
        assert self._conns is not None
        for worker_id in sorted(ops_by_worker):
            self._conns[worker_id].send((verb, ops_by_worker[worker_id]))
        replies: dict[int, Any] = {}
        failure: "tuple[BaseException | None, str, str, str] | None" = None
        for worker_id in sorted(ops_by_worker):
            try:
                status, payload = self._conns[worker_id].recv()
            except (EOFError, OSError) as exc:
                raise ShardingError(
                    f"worker {worker_id} died mid-command ({exc!r}); the engine "
                    f"state is unrecoverable — restore from the last checkpoint"
                ) from exc
            if status == "error" and failure is None:
                failure = payload
            elif status == "ok":
                replies[worker_id] = payload
        if failure is not None:
            raise _revive_exception(*failure)
        return replies

    def close(self) -> None:
        """Stop every worker process.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._workers is None:
            return
        for conn in self._conns or []:
            try:
                conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for process, conn in zip(self._workers, self._conns or []):
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
        self._workers = None
        self._conns = None

    def __enter__(self) -> "ShardedDetectionEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _resolve_key(self, key: "str | None", timestamp: float) -> "str | None":
        """Session name for a stream key (None = drop), serial semantics."""
        if key is None and len(self._units) == 1:
            return next(iter(self._units))
        if key is not None and key in self._units:
            return key
        if self.unknown_stream == "drop":
            return None
        raise StreamError(
            f"record at t={timestamp} routed to unknown session {key!r}; "
            f"registered sessions: {sorted(self._units)}"
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest_record_batch(
        self, batch: RecordBatch
    ) -> dict[str, list[TimeunitResult]]:
        """Route one columnar batch through the shards; merged closed results
        grouped by session name (bit-identical to the serial engine)."""
        self._ensure_started()
        closed: dict[str, list[TimeunitResult]] = {name: [] for name in self._units}
        if len(batch) == 0:
            return closed
        selector = None if self.stream_key is attribute_stream_key else self.stream_key
        routed: list[tuple[str, RecordBatch]] = []
        for key, part in batch.partition_by_key(selector):
            name = self._resolve_key(
                key, float(part.timestamps[0]) if len(part) else 0.0
            )
            if name is not None:
                routed.append((name, part))
        if not routed:
            return closed
        ops: dict[int, list] = {}
        emit_bound: dict[str, int] = {}
        for name, part in routed:
            unit = self._units[name]
            if unit.kind == "whole":
                ops.setdefault(unit.worker, []).append((unit.key, "whole", part))
            else:
                emit_bound[name] = self._dispatch_subtree(unit, part, ops)
        replies = self._roundtrip(ops, "ingest")
        self._collect(replies, closed)
        for name, part in routed:
            unit = self._units[name]
            if unit.kind == "sub":
                closed[name].extend(self._emit_ready(unit, upto=emit_bound[name]))
        return closed

    def _dispatch_subtree(
        self, unit: _SubtreeUnit, part: RecordBatch, ops: dict[int, list]
    ) -> int:
        """Segment one session sub-batch by watermark and queue per-group ops.

        Returns the new session watermark (timeunits strictly below it are
        complete across every group after this round).
        """
        units_col = part.timeunit_indices(unit.clock)
        fresh = unit.carried is None
        if _np is not None and not isinstance(units_col, list):
            running_max = _np.maximum.accumulate(units_col)
            anchor = int(units_col[0]) if fresh else unit.carried
            w_before = _np.concatenate(
                ([anchor], _np.maximum(running_max[:-1], anchor))
            )
            new_carried = int(max(int(running_max[-1]), anchor))
        else:
            anchor = int(units_col[0]) if fresh else unit.carried
            w_before, high = [], anchor
            for u in units_col:
                w_before.append(high)
                if u > high:
                    high = int(u)
            new_carried = high

        rows_by_gid: dict[int, list[int]] = {}
        for i, category in enumerate(part.categories):
            gid = unit.label_to_gid.get(category[0], 0)
            rows_by_gid.setdefault(gid, []).append(i)

        for gid in range(unit.num_groups):
            segments: list[tuple[int, "RecordBatch | None"]] = []
            pending_rows: list[int] = []
            segment_w = anchor
            progress = None if fresh else unit.carried
            if progress is None:
                progress = anchor
            for row in rows_by_gid.get(gid, []):
                w = int(w_before[row])
                if w > progress:
                    segments.append(
                        (segment_w, part.take(pending_rows) if pending_rows else None)
                    )
                    pending_rows = []
                    segment_w = w
                    progress = w
                pending_rows.append(row)
                row_unit = int(units_col[row])
                if row_unit > progress:
                    progress = row_unit
            if pending_rows or (fresh and not segments):
                segments.append(
                    (segment_w, part.take(pending_rows) if pending_rows else None)
                )
            if new_carried > progress:
                segments.append((new_carried, None))
            if segments:
                ops.setdefault(unit.workers[gid], []).append(
                    (unit.keys[gid], "sub", segments)
                )
        unit.carried = new_carried
        return new_carried

    def _collect(
        self,
        replies: Mapping[int, Any],
        closed: dict[str, list[TimeunitResult]],
    ) -> None:
        """Fold worker ingest/flush replies into result lists and buffers."""
        for worker_id in sorted(replies):
            for key, results, root_weights in replies[worker_id]:
                if key[0] == "w":
                    name = key[1]
                    closed[name].extend(results)
                    self._observe_whole(self._units[name], results)
                else:
                    _, name, gid = key
                    unit = self._units[name]
                    assert isinstance(unit, _SubtreeUnit)
                    if root_weights is None or len(root_weights) != len(results):
                        raise ShardingError(
                            f"internal: shard {key!r} returned {len(results)} "
                            f"results but "
                            f"{0 if root_weights is None else len(root_weights)} "
                            f"root weight records"
                        )
                    for result, (timeunit, raw) in zip(results, root_weights):
                        slot = unit.buffer.setdefault(int(result.timeunit), {})
                        slot[gid] = (result, raw)

    def _observe_whole(
        self, unit: _WholeUnit, results: Sequence[TimeunitResult]
    ) -> None:
        for result in results:
            unit.handle.units_processed += 1
            for observer in self._observers:
                observer.on_timeunit_closed(unit.handle, result)
            for anomaly in result.anomalies:
                for observer in self._observers:
                    observer.on_anomaly(unit.handle, anomaly)
            if (
                not unit.warmup_announced
                and unit.handle.units_processed >= unit.handle.warmup_units
            ):
                unit.warmup_announced = True
                for observer in self._observers:
                    observer.on_warmup_complete(unit.handle, result.timeunit)

    def _emit_ready(
        self, unit: _SubtreeUnit, upto: "int | None"
    ) -> list[TimeunitResult]:
        """Merge and emit buffered timeunits strictly below ``upto`` (all
        when ``upto`` is None), in timeunit order."""
        emitted: list[TimeunitResult] = []
        for timeunit in sorted(unit.buffer):
            if upto is not None and timeunit >= upto:
                break
            slot = unit.buffer.pop(timeunit)
            if len(slot) != unit.num_groups:
                raise ShardingError(
                    f"internal: timeunit {timeunit} of session {unit.name!r} "
                    f"closed on {len(slot)} of {unit.num_groups} shard groups"
                )
            root_raw = sum(slot[gid][1] for gid in range(unit.num_groups))
            if unit.root_stats is not None and root_raw > 0:
                unit.root_stats.observe(timeunit, root_raw)
            merged = self._merge_unit_results(
                unit, timeunit, [slot[gid][0] for gid in range(unit.num_groups)]
            )
            unit.handle.units_processed += 1
            unit.reports.add_many(merged.anomalies)
            for observer in self._observers:
                observer.on_timeunit_closed(unit.handle, merged)
            for anomaly in merged.anomalies:
                for observer in self._observers:
                    observer.on_anomaly(unit.handle, anomaly)
            if (
                not unit.warmup_announced
                and unit.handle.units_processed >= unit.handle.warmup_units
            ):
                unit.warmup_announced = True
                for observer in self._observers:
                    observer.on_warmup_complete(unit.handle, merged.timeunit)
            emitted.append(merged)
        return emitted

    @staticmethod
    def _merge_unit_results(
        unit: _SubtreeUnit, timeunit: int, parts: Sequence[TimeunitResult]
    ) -> TimeunitResult:
        heavy: set = set()
        for part in parts:
            heavy.update(part.heavy_hitters)
        actuals: dict = {}
        forecasts: dict = {}
        for path in sorted(heavy):
            gid = unit.label_to_gid.get(path[0], 0)
            actuals[path] = parts[gid].actuals[path]
            forecasts[path] = parts[gid].forecasts[path]
        anomalies = tuple(
            sorted(
                (anomaly for part in parts for anomaly in part.anomalies),
                key=lambda a: a.node_path,
            )
        )
        return TimeunitResult(
            timeunit=timeunit,
            heavy_hitters=frozenset(heavy),
            actuals=actuals,
            forecasts=forecasts,
            anomalies=anomalies,
        )

    def ingest_batch(
        self, records: Iterable[OperationalRecord]
    ) -> dict[str, list[TimeunitResult]]:
        """Route a batch of record objects (columnarized coordinator-side)."""
        records = list(records)
        if not records:
            self._check_open()
            return {name: [] for name in self._units}
        return self.ingest_record_batch(RecordBatch.from_records(records))

    def ingest_record(self, record: OperationalRecord) -> list[TimeunitResult]:
        """Route one record; returns results of timeunits it closed.

        Provided for API parity — per-record dispatch pays one worker round
        trip per record; prefer the batch paths.
        """
        key = self.stream_key(record)
        name = self._resolve_key(key, record.timestamp)
        if name is None:
            return []
        return self.ingest_batch([record])[name]

    def process_stream(
        self, records: Iterable[OperationalRecord], batch_size: int = 8192
    ) -> dict[str, list[TimeunitResult]]:
        """Consume a whole merged record stream, then flush every session."""
        return self.process_batches(iter_record_batches(records, batch_size))

    def process_batches(
        self, batches: Iterable[RecordBatch]
    ) -> dict[str, list[TimeunitResult]]:
        """Consume a stream of columnar batches, then flush every session."""
        self._ensure_started()
        closed: dict[str, list[TimeunitResult]] = {name: [] for name in self._units}
        for batch in batches:
            for name, results in self.ingest_record_batch(batch).items():
                closed[name].extend(results)
        for name, results in self.flush().items():
            closed[name].extend(results)
        return closed

    def flush(self) -> dict[str, list[TimeunitResult]]:
        """Close the accumulating timeunit of every session."""
        self._ensure_started()
        closed: dict[str, list[TimeunitResult]] = {name: [] for name in self._units}
        ops: dict[int, list] = {}
        for unit in self._units.values():
            if unit.kind == "whole":
                ops.setdefault(unit.worker, []).append(unit.key)
            else:
                for gid, worker in enumerate(unit.workers):
                    ops.setdefault(worker, []).append(unit.keys[gid])
        if not ops:
            return closed
        replies = self._roundtrip(ops, "flush")
        self._collect(replies, closed)
        for name, unit in self._units.items():
            if unit.kind == "sub":
                closed[name].extend(self._emit_ready(unit, upto=None))
                unit.carried = None
        return closed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _query(self, what: str, include_sub: bool = True) -> dict[Any, Any]:
        """Fetch a per-unit attribute from the workers.

        ``include_sub=False`` restricts the round trip to whole-session units
        — the coordinator already holds the merged answer for subtree shards,
        so shipping their (potentially large) values over the pipe would be
        pure waste.
        """
        ops: dict[int, list] = {}
        for unit in self._units.values():
            if unit.kind == "whole":
                ops.setdefault(unit.worker, []).append(unit.key)
            elif include_sub:
                for gid, worker in enumerate(unit.workers):
                    ops.setdefault(worker, []).append(unit.keys[gid])
        if not ops:
            return {}
        self._ensure_started()
        replies = self._roundtrip(
            {worker: (what, keys) for worker, keys in ops.items()}, "query"
        )
        merged: dict[Any, Any] = {}
        for worker_id in sorted(replies):
            merged.update(dict(replies[worker_id]))
        return merged

    def anomalies(self) -> dict[str, list[Anomaly]]:
        """All reported anomalies, grouped by session name."""
        self._ensure_started()
        per_key = self._query("anomalies", include_sub=False)
        out: dict[str, list[Anomaly]] = {}
        for name, unit in self._units.items():
            if unit.kind == "whole":
                out[name] = per_key[unit.key]
            else:
                out[name] = unit.reports.query()
        return out

    def units_processed(self) -> dict[str, int]:
        self._ensure_started()
        per_key = self._query("units_processed", include_sub=False)
        out: dict[str, int] = {}
        for name, unit in self._units.items():
            if unit.kind == "whole":
                out[name] = per_key[unit.key]
            else:
                out[name] = unit.handle.units_processed
        return out

    def memory_units(self) -> int:
        """Total memory cost proxy across all shard sessions."""
        self._ensure_started()
        return sum(self._query("memory_units").values())

    def adaptation_stats(self) -> dict[str, dict]:
        """Delta-adaptation counters per session, merged across shards.

        Subtree shards run the same id-based adaptation core as a serial
        session over their sub-hierarchies; their counters are summed (the
        mode is shared).  Sessions whose algorithm has no adaptation engine
        report ``{}``.
        """
        self._ensure_started()
        per_key = self._query("adaptation_stats")
        out: dict[str, dict] = {}
        for name, unit in self._units.items():
            if unit.kind == "whole":
                out[name] = per_key[unit.key]
                continue
            merged: dict = {}
            for key in unit.keys:
                stats = per_key[key]
                if not stats:
                    continue
                if not merged:
                    merged = dict(stats)
                    continue
                for field, value in stats.items():
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        merged[field] = merged.get(field, 0) + value
            out[name] = merged
        return out

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def merged_session_state(self, name: str) -> dict[str, Any]:
        """Serial-format ``state_dict`` of one session, merged across shards.

        The returned state loads into a plain
        :class:`~repro.engine.session.DetectionSession` (or back into a
        sharded engine at any shard count) and continues bit-identically.
        """
        try:
            unit = self._units[name]
        except KeyError:
            raise ConfigurationError(
                f"no session named {name!r}; registered sessions: "
                f"{sorted(self._units)}"
            ) from None
        self._ensure_started()
        if unit.kind == "whole":
            ops = {unit.worker: [unit.key]}
            replies = self._roundtrip(ops, "state")
            return dict(replies[unit.worker])[unit.key]
        if unit.buffer:
            raise ShardingError(
                f"session {name!r} has timeunits mid-merge; checkpoint at a "
                f"batch boundary"
            )
        ops = {}
        for gid, worker in enumerate(unit.workers):
            ops.setdefault(worker, []).append(unit.keys[gid])
        replies = self._roundtrip(ops, "state")
        states_by_key: dict[Any, dict[str, Any]] = {}
        for worker_id in sorted(replies):
            states_by_key.update(dict(replies[worker_id]))
        sub_states = [states_by_key[key] for key in unit.keys]
        withheld = unit.root_stats.export() if unit.root_stats is not None else {}
        return merge_session_states(
            sub_states,
            unit.base_state,
            reports=[anomaly.to_dict() for anomaly in unit.reports],
            withheld=withheld,
        )

    def state_dict(self) -> dict[str, Any]:
        """Engine snapshot in the *serial* checkpoint format (version 1)."""
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "engine": {"unknown_stream": self.unknown_stream},
            "sessions": [self.merged_session_state(name) for name in self._units],
        }

    def save_checkpoint(self, path: Any) -> None:
        """Persist the merged engine state atomically as a JSON checkpoint.

        The file is indistinguishable from a serial
        :meth:`DetectionEngine.save_checkpoint` file: either engine can
        restore it.
        """
        _write_json(self.state_dict(), path)

    @classmethod
    def from_state_dict(
        cls,
        state: Mapping[str, Any],
        num_workers: "int | None" = None,
        stream_key: "StreamKey | None" = None,
        subtree_shards: "int | Mapping[str, int]" = 1,
        start_method: "str | None" = None,
    ) -> "ShardedDetectionEngine":
        """Rebuild a sharded engine from a (serial-format) engine snapshot."""
        _check_header(state)
        engine = cls(
            num_workers=num_workers,
            stream_key=stream_key,
            unknown_stream=str(
                state.get("engine", {}).get("unknown_stream", "raise")
            ),
            start_method=start_method,
        )
        for session_state in state["sessions"]:
            shards = (
                subtree_shards.get(str(session_state["name"]), 1)
                if isinstance(subtree_shards, Mapping)
                else subtree_shards
            )
            engine.attach_session_state(session_state, subtree_shards=shards)
        return engine

    @classmethod
    def load_checkpoint(
        cls,
        path: Any,
        num_workers: "int | None" = None,
        stream_key: "StreamKey | None" = None,
        subtree_shards: "int | Mapping[str, int]" = 1,
        start_method: "str | None" = None,
    ) -> "ShardedDetectionEngine":
        """Restore a sharded engine from any engine checkpoint file."""
        return cls.from_state_dict(
            _read_json(path),
            num_workers=num_workers,
            stream_key=stream_key,
            subtree_shards=subtree_shards,
            start_method=start_method,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedDetectionEngine(sessions={sorted(self._units)}, "
            f"num_workers={self.num_workers})"
        )
