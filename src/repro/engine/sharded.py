"""Sharded detection engine: sessions and hierarchy subtrees across processes.

The detection pipeline is embarrassingly parallel along two axes: distinct
sessions never share state, and — because succinct-heavy-hitter weights,
series adaptation and detection are all computed bottom-up — disjoint
subtrees of one hierarchy interact only through their shared ancestors.
:class:`ShardedDetectionEngine` exploits both: it partitions its sessions
(and, on request, each session's depth-``k`` subtrees) across N workers
reached through a pluggable transport, and merges their outputs
deterministically, producing detections, timeunit results, reports and
checkpoints **bit-for-bit identical** to the serial
:class:`~repro.engine.engine.DetectionEngine` regardless of worker count,
transport, or scheduling.

How equivalence is preserved
----------------------------
*Session shards.*  A whole session lives on exactly one worker and sees, in
order, exactly the sub-stream the serial router would have fed it (batches
are partitioned by stream key coordinator-side with the existing one-pass
partitioner).  Same code, same inputs, same floats.

*Subtree shards.*  One session may be split into ``subtree_shards`` shard
sessions, each owning a disjoint group of depth-``subtree_depth`` cut units
(depth-``k`` prefixes, plus any leaves shallower than ``k``, which are their
own cut units).  Three mechanisms make the union of their outputs equal the
serial session:

1. **Watermark segmentation.**  Serially, all subtrees share one pending
   timeunit, advanced by every record of the session.  The coordinator
   therefore computes, per record, the running maximum timeunit of the whole
   session stream (one vectorized prefix-max per batch) and prefixes each
   shard's sub-batch with ``advance_to(watermark)`` segments, so every shard
   closes (possibly empty) timeunits at exactly the serial boundaries and
   applies the ``out_of_order_policy`` against exactly the serial pending
   unit.
2. **Deterministic merge.**  Shard results are buffered per timeunit and
   merged once every group has closed that unit: heavy hitter sets union,
   per-path actuals/forecasts are taken from the owning shard in sorted-path
   order (the serial iteration order), anomalies sort by node path.
3. **Frontier-band exclusion and replay.**  Only the root and the shared
   ancestors above the cut (the *frontier band*) couple subtrees: their
   series and split/merge adaptation would span several shards.  Subtree
   sharding therefore requires ``track_root=False`` with
   ``allow_root_heavy=False``, and — for cuts deeper than 1 —
   ``min_heavy_depth >= subtree_depth``, config choices the serial engine
   honours identically, so equivalence holds on *any* workload.  Band raw
   weights are still additive across shards: each shard reports its band
   weight tuple per closed timeunit and the coordinator replays the band's
   split-rule bookkeeping and reference series exactly in (depth, lex)
   order (:class:`_FrontierReplica`), so merged checkpoints stay faithful.

Checkpoints are format-identical to serial ones: :meth:`state_dict` merges
shard states back into canonical serial session states (see
:func:`repro.io.checkpoint.merge_session_states`), so a sharded engine can
resume an unsharded checkpoint and vice versa, at any worker count and cut
depth.

Transports (see :mod:`repro.engine.transport`): ``"pipe"`` (default,
pickle-everything), ``"shm"`` (shared-memory segments, batch columns ship
zero-copy), ``"tcp"`` (length-prefixed frames, workers may be remote).
Verb semantics live in :mod:`repro.engine.shard_worker`, shared by all
three, so results and checkpoint bytes never depend on the transport.

Churn-driven rebalancing: :meth:`rebalance_session` migrates one cut unit
from the busiest shard group (by split+merge adaptation churn) to the
lightest at a timeunit barrier, through the same split/merge checkpoint
machinery — the session's state is bit-identical before and after.

The ``out_of_order_policy="raise"`` caveat of the columnar path applies here
too, compounded by parallelism: the offending record still raises
:class:`~repro.exceptions.OutOfOrderRecordError`, but records dispatched to
other shards in the same round may already have been ingested.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from typing import Any, Iterable, Mapping, Sequence

from repro.core.config import TiresiasConfig
from repro.core.detector import Anomaly
from repro.core.reporting import AnomalyReportStore
from repro.core.results import TimeunitResult
from repro.core.split_rules import NodeUsageStats
from repro.engine.engine import UNKNOWN_STREAM_POLICIES, StreamKey, attribute_stream_key
from repro.engine.hooks import EngineObserver
from repro.engine.session import DetectionSession
from repro.engine.shadow import ShadowStateError
from repro.engine.shard_worker import revive_exception
from repro.engine.supervisor import ShardSupervisor
from repro.engine.transport import ShardTransport, make_transport
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    ShardingError,
    StreamError,
    WorkerFailureError,
)
from repro.hierarchy.tree import HierarchyTree
from repro.io.checkpoint import (
    _read_json,
    _write_json,
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    _check_header,
    SubtreePartition,
    clock_from_dict,
    frontier_band_paths,
    merge_session_states,
    split_session_state,
)
from repro.streaming.batch import RecordBatch, iter_record_batches
from repro.streaming.clock import SimulationClock
from repro.streaming.record import OperationalRecord

try:  # pragma: no cover - exercised implicitly by the whole suite
    import numpy as _np
except ImportError:  # pragma: no cover - minimal installs
    _np = None


# ----------------------------------------------------------------------
# Subtree shard planning
# ----------------------------------------------------------------------
def plan_subtree_groups(
    leaves: Sequence[Sequence[str]], shards: int, depth: int = 1
) -> list[list]:
    """Deterministically assign depth-``depth`` cut units to balanced groups.

    Cut units are the distinct depth-``depth`` path prefixes of the leaf set
    (leaves shallower than ``depth`` are their own cut units).  Units are
    ordered by descending leaf count (ties lexicographic) and greedily
    placed on the lightest group (ties on the lowest group id) — a classic
    LPT schedule.  At most ``len(cut units)`` groups are produced; units
    inside a group are returned sorted.  For ``depth == 1`` the units are
    plain string labels (the historical format); deeper cuts use path
    tuples.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if depth < 1:
        raise ConfigurationError(f"subtree depth must be >= 1, got {depth}")
    counts: dict[Any, int] = {}
    for path in leaves:
        unit = path[0] if depth == 1 else tuple(path[:depth])
        counts[unit] = counts.get(unit, 0) + 1
    k = min(shards, len(counts))
    groups: list[list] = [[] for _ in range(k)]
    loads = [0] * k
    for unit in sorted(counts, key=lambda u: (-counts[u], u)):
        gid = min(range(k), key=lambda g: (loads[g], g))
        groups[gid].append(unit)
        loads[gid] += counts[unit]
    return [sorted(group) for group in groups]


# ----------------------------------------------------------------------
# Coordinator-side state
# ----------------------------------------------------------------------
class ShardedSessionHandle:
    """Stand-in passed to engine-level observers instead of a live session.

    Worker sessions never cross the process boundary, so observer hooks fire
    on the coordinator with this handle as the ``session`` argument.  It
    carries the attributes observers typically read (:attr:`name`,
    :attr:`config`, :attr:`warmup_units`, :attr:`units_processed`).
    """

    def __init__(self, name: str, config: TiresiasConfig, warmup_units: int):
        self.name = name
        self.config = config
        self.warmup_units = warmup_units
        self.units_processed = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardedSessionHandle(name={self.name!r})"


class _FrontierReplica:
    """Coordinator replica of the frontier band's ADA bookkeeping.

    The band — root plus shared ancestors above the cut — is the set of
    nodes no subtree shard owns.  Each band node's raw weight is the sum of
    the shards' local weights for it, and this class replays exactly the
    arithmetic of the serial split-stats update (gap decay then EWMA) on
    those sums, plus the band's reference-series appends, in the serial
    (depth, lex) node order.  Band nodes are never heavy under the sharding
    preconditions (root exclusion + ``min_heavy_depth``), so these values
    cannot influence detections — they exist so merged checkpoints carry
    the same band statistics a serial run would have.
    """

    def __init__(
        self,
        config: Mapping[str, Any],
        band_paths: Sequence[tuple],
        withheld: "Mapping[str, Any] | None",
    ):
        self.alpha = float(config["split_ewma_alpha"])
        window_units = int(config["window_units"])
        reference_levels = int(config.get("reference_levels", 0))
        #: Band paths in (depth, lex) order; the root ``()`` comes first.
        self.band_paths = [tuple(path) for path in band_paths]
        #: Band paths that keep a reference series (depths 1..h).
        self.ref_paths = [
            path for path in self.band_paths if 1 <= len(path) <= reference_levels
        ]
        self.stats: dict[tuple, NodeUsageStats] = {}
        self.last_unit: dict[tuple, int] = {}
        self.reference: dict[tuple, deque] = {
            path: deque(maxlen=window_units) for path in self.ref_paths
        }
        for path, row in (withheld or {}).get("stats", []):
            self.stats[tuple(path)] = NodeUsageStats(
                last_weight=float(row["last_weight"]),
                cumulative_weight=float(row["cumulative_weight"]),
                ewma_weight=float(row["ewma_weight"]),
                observations=int(row["observations"]),
            )
        for path, unit in (withheld or {}).get("stats_last_unit", []):
            self.last_unit[tuple(path)] = int(unit)
        for path, values in (withheld or {}).get("reference", []):
            buf = self.reference.get(tuple(path))
            if buf is not None:
                buf.extend(float(value) for value in values)

    def observe(self, timeunit: int, totals: Mapping[tuple, float]) -> None:
        """Fold one closed timeunit's summed band weights into the replica."""
        alpha = self.alpha
        for path in self.band_paths:
            weight = totals.get(path, 0.0)
            if weight <= 0:
                continue
            stats = self.stats.get(path)
            if stats is None:
                stats = self.stats[path] = NodeUsageStats()
            last = self.last_unit.get(path)
            if last is not None and timeunit - last > 1:
                gap = timeunit - last - 1
                stats.ewma_weight *= (1 - alpha) ** gap
                stats.last_weight = 0.0
            stats.update(weight, alpha)
            self.last_unit[path] = timeunit
        for path in self.ref_paths:
            self.reference[path].append(float(totals.get(path, 0.0)))

    def export(self) -> dict[str, Any]:
        """Withheld-row form consumed by ``merge_session_states``."""
        withheld: dict[str, Any] = {}
        stats_rows = [
            [
                list(path),
                {
                    "last_weight": self.stats[path].last_weight,
                    "cumulative_weight": self.stats[path].cumulative_weight,
                    "ewma_weight": self.stats[path].ewma_weight,
                    "observations": self.stats[path].observations,
                },
            ]
            for path in self.band_paths
            if path in self.stats
        ]
        last_rows = [
            [list(path), self.last_unit[path]]
            for path in self.band_paths
            if path in self.last_unit
        ]
        ref_rows = [
            [list(path), list(self.reference[path])]
            for path in self.ref_paths
            if self.reference[path]
        ]
        if stats_rows:
            withheld["stats"] = stats_rows
        if last_rows:
            withheld["stats_last_unit"] = last_rows
        if ref_rows:
            withheld["reference"] = ref_rows
        return withheld


class _WholeUnit:
    """Coordinator record of a session sharded at session granularity."""

    kind = "whole"

    def __init__(self, name: str, worker: int, state: dict[str, Any]):
        self.name = name
        self.worker = worker
        self.key = ("w", name)
        self.state: "dict[str, Any] | None" = state  # dropped once shipped
        self.handle = ShardedSessionHandle(
            name, _config_of(state), int(state["warmup_units"])
        )
        self.handle.units_processed = int(state["units_processed"])
        self.warmup_announced = bool(state["warmup_announced"])
        #: Times this unit's worker was respawned and rebuilt after a failure.
        self.recoveries = 0


class _SubtreeUnit:
    """Coordinator record and merge state of a subtree-sharded session."""

    kind = "sub"

    def __init__(
        self,
        name: str,
        base_state: dict[str, Any],
        groups: Sequence[Sequence[Any]],
        sub_states: Sequence[dict[str, Any]],
        workers: Sequence[int],
        withheld: Mapping[str, Any],
        depth: int = 1,
    ):
        self.name = name
        self.depth = int(depth)
        # Only the identity fields and pre-split counter baselines that
        # merge_session_states reads are retained; pinning the full pre-split
        # state (every node series) would double the session's footprint.
        base_algo = base_state["algorithm_state"]
        self.base_state: dict[str, Any] = {
            "name": base_state["name"],
            "algorithm": base_state["algorithm"],
            "tree": base_state["tree"],
            "config": base_state["config"],
            "clock": base_state["clock"],
            "max_results": base_state.get("max_results"),
            "reading_seconds": base_state["reading_seconds"],
            "algorithm_state": {
                key: base_algo[key]
                for key in ("stage_seconds", "split_operations", "merge_operations")
                if key in base_algo
            },
        }
        self.partition = SubtreePartition(groups, self.depth)
        self.workers = list(workers)
        self.keys = [("s", name, gid) for gid in range(self.partition.num_groups)]
        self.sub_states: "list[dict[str, Any]] | None" = list(sub_states)
        leaves = [tuple(path) for path in base_state["tree"]["leaves"]]
        leaves_by_gid: list[list[tuple]] = [
            [] for _ in range(self.partition.num_groups)
        ]
        for leaf in leaves:
            leaves_by_gid[self.partition.route(leaf)].append(leaf)
        #: Per-group frontier band, exactly as each shard worker derives it
        #: from its own leaf set — the order of the weight tuples on the wire.
        self.band_paths_by_gid = [
            frontier_band_paths(group_leaves, self.depth)
            for group_leaves in leaves_by_gid
        ]
        #: The session-wide band in (depth, lex) order, root first.
        self.band_paths = frontier_band_paths(leaves, self.depth)
        self.clock: SimulationClock = clock_from_dict(base_state["clock"])
        self.handle = ShardedSessionHandle(
            name, _config_of(base_state), int(base_state["warmup_units"])
        )
        self.handle.units_processed = int(base_state["units_processed"])
        self.warmup_announced = bool(base_state["warmup_announced"])
        self.reports = AnomalyReportStore()
        self.reports.add_many(
            Anomaly.from_dict(data) for data in base_state["reports"]
        )
        #: Serial pending timeunit of the session (None = not anchored yet).
        self.carried: "int | None" = (
            None
            if base_state["pending_unit"] is None
            else int(base_state["pending_unit"])
        )
        self.frontier: "_FrontierReplica | None" = None
        if str(base_state["algorithm"]) == "ada":
            self.frontier = _FrontierReplica(
                base_state["config"], self.band_paths, withheld
            )
        #: Times this unit's layout was migrated by churn-driven rebalancing.
        self.rebalances = 0
        #: Times one of this unit's workers was respawned and rebuilt.
        self.recoveries = 0
        #: timeunit -> {gid: (result, local band raw-weight tuple)}
        self.buffer: dict[int, dict[int, tuple[TimeunitResult, tuple]]] = {}

    @property
    def num_groups(self) -> int:
        return self.partition.num_groups

    @property
    def groups(self) -> list[list[tuple]]:
        return self.partition.groups


def _config_of(state: Mapping[str, Any]) -> TiresiasConfig:
    from repro.io.checkpoint import config_from_dict

    return config_from_dict(state["config"])


def _merge_numeric_dicts(dicts: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Merge per-shard introspection dicts: numerics sum (recursing one
    level into nested dicts), everything else keeps the first value seen."""
    merged: dict[str, Any] = {}
    for source in dicts:
        for field, value in (source or {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                current = merged.get(field, 0)
                merged[field] = (
                    current + value
                    if isinstance(current, (int, float))
                    and not isinstance(current, bool)
                    else value
                )
            elif isinstance(value, Mapping):
                inner = merged.setdefault(field, {})
                if isinstance(inner, dict):
                    for key, item in value.items():
                        if isinstance(item, (int, float)) and not isinstance(
                            item, bool
                        ):
                            inner[key] = inner.get(key, 0) + item
                        elif key not in inner:
                            inner[key] = item
            elif field not in merged:
                merged[field] = value
    return merged


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ShardedDetectionEngine:
    """Multi-process detection engine with serial-equivalent semantics.

    Parameters
    ----------
    num_workers:
        Number of worker processes.  Defaults to ``os.cpu_count()``.  Shard
        units (whole sessions and subtree groups) are assigned round-robin in
        registration order, so the layout is deterministic.
    stream_key / unknown_stream:
        Routing exactly as in :class:`~repro.engine.engine.DetectionEngine`;
        both are applied coordinator-side, so custom selectors never need to
        be picklable.
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or ``None`` for the platform default.  Sessions are
        shipped to workers as JSON ``state_dict`` snapshots, so every start
        method works.
    transport / transport_options:
        ``"pipe"`` (default), ``"shm"``, ``"tcp"`` — or a ready-made
        :class:`~repro.engine.transport.base.ShardTransport` instance (e.g.
        a :class:`~repro.engine.transport.tcp.TcpTransport` in external mode
        for remote workers).  Results are transport-independent; see
        :mod:`repro.engine.transport`.
    supervision / op_timeout / replay_buffer_ops / max_recovery_attempts:
        With ``supervision=True`` (the default) every ship/collect runs
        through a :class:`~repro.engine.supervisor.ShardSupervisor` with a
        per-operation deadline of ``op_timeout`` seconds, and the
        coordinator keeps what exact recovery needs: a per-unit state
        snapshot plus a bounded per-worker op log (at most
        ``replay_buffer_ops`` mutating rounds; beyond that the snapshot is
        refreshed from the worker and the log cleared).  When a worker
        dies, stalls past its deadline, or its channel breaks, the
        coordinator respawns it, restores its shard units from the
        snapshots and replays the log — up to ``max_recovery_attempts``
        times — so a recovered run is bit-identical to an uninterrupted
        one.  Snapshots and the log cost memory proportional to the session
        states plus the buffered batches; ``supervision=False`` restores
        the fail-fast behaviour (a dead worker raises
        :class:`~repro.exceptions.WorkerFailureError` and the engine state
        is unrecoverable).
    fault_plan:
        Optional :class:`repro.testing.faults.FaultPlan` injected at the
        supervisor seam (tests); defaults to the process-wide active plan.

    Workers start lazily on first use; call :meth:`close` (or use the engine
    as a context manager) to terminate them.  Ingestion is batch-oriented:
    :meth:`ingest_record_batch` / :meth:`process_batches` are the native
    paths, with record-based entry points provided for API parity.
    """

    def __init__(
        self,
        num_workers: "int | None" = None,
        stream_key: "StreamKey | None" = None,
        unknown_stream: str = "raise",
        start_method: "str | None" = None,
        transport: "str | ShardTransport" = "pipe",
        transport_options: "Mapping[str, Any] | None" = None,
        supervision: bool = True,
        op_timeout: float = 60.0,
        replay_buffer_ops: int = 64,
        max_recovery_attempts: int = 2,
        fault_plan: Any = None,
    ):
        if unknown_stream not in UNKNOWN_STREAM_POLICIES:
            raise ConfigurationError(
                f"unknown_stream must be one of {sorted(UNKNOWN_STREAM_POLICIES)}, "
                f"got {unknown_stream!r}"
            )
        if num_workers is None:
            num_workers = multiprocessing.cpu_count()
        if num_workers < 1:
            raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self.stream_key = stream_key or attribute_stream_key
        self.unknown_stream = unknown_stream
        self.start_method = start_method
        # Built eagerly so a bad transport name fails at construction, but
        # connected lazily with the workers.
        self._transport: ShardTransport = make_transport(
            transport, transport_options
        )
        if float(op_timeout) <= 0:
            raise ConfigurationError(f"op_timeout must be > 0, got {op_timeout}")
        if int(replay_buffer_ops) < 1:
            raise ConfigurationError(
                f"replay_buffer_ops must be >= 1, got {replay_buffer_ops}"
            )
        if int(max_recovery_attempts) < 1:
            raise ConfigurationError(
                f"max_recovery_attempts must be >= 1, got {max_recovery_attempts}"
            )
        self.supervision = bool(supervision)
        self.op_timeout = float(op_timeout)
        self.replay_buffer_ops = int(replay_buffer_ops)
        self.max_recovery_attempts = int(max_recovery_attempts)
        self._supervisor: "ShardSupervisor | None" = (
            ShardSupervisor(self._transport, self.op_timeout, fault_plan)
            if self.supervision
            else None
        )
        #: key -> serial-format state at that worker's op-log start.
        self._snapshots: dict[Any, dict[str, Any]] = {}
        #: worker -> [(verb, ops)] mutating rounds since the last snapshot.
        self._oplog: dict[int, list[tuple[str, Any]]] = {}
        self._recoveries_total = 0
        self._replayed_batches_total = 0
        self._recovering_depth = 0
        self._last_recovery_unix: "float | None" = None
        self._units: dict[str, "_WholeUnit | _SubtreeUnit"] = {}
        self._observers: list[EngineObserver] = []
        self._started = False
        self._next_worker = 0
        self._rebalances_total = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Session management
    # ------------------------------------------------------------------
    def add_session(
        self,
        name: str,
        tree: HierarchyTree,
        config: TiresiasConfig,
        algorithm: str = "ada",
        clock: "SimulationClock | None" = None,
        warmup_units: "int | None" = None,
        max_results: "int | None" = None,
        subtree_shards: int = 1,
        subtree_depth: int = 1,
    ) -> None:
        """Create and register a named session (mirrors the serial engine).

        ``subtree_shards > 1`` additionally partitions the session's
        depth-``subtree_depth`` cut units into that many shard groups
        (capped at the number of cut units), which requires
        ``config.track_root=False`` with ``allow_root_heavy=False``, a
        shardable algorithm (``"ada"`` or ``"sta"``) and — for
        ``subtree_depth > 1`` — ``config.min_heavy_depth >= subtree_depth``.
        """
        session = DetectionSession(
            tree,
            config,
            algorithm=algorithm,
            clock=clock,
            warmup_units=warmup_units,
            name=name,
            max_results=max_results,
        )
        self.attach_session(
            session, subtree_shards=subtree_shards, subtree_depth=subtree_depth
        )

    def attach_session(
        self,
        session: DetectionSession,
        subtree_shards: int = 1,
        subtree_depth: int = 1,
    ) -> None:
        """Register an existing session from its state snapshot.

        The engine takes a snapshot at attach time; later mutations of the
        passed session object are not seen by the workers.
        """
        self.attach_session_state(
            session.state_dict(),
            subtree_shards=subtree_shards,
            subtree_depth=subtree_depth,
        )

    def attach_session_state(
        self,
        state: Mapping[str, Any],
        subtree_shards: int = 1,
        subtree_depth: int = 1,
    ) -> None:
        """Register a session from a serial-format ``state_dict`` snapshot."""
        self._check_open()
        name = str(state["name"])
        if name in self._units:
            raise ConfigurationError(f"a session named {name!r} is already registered")
        if "shadow" in state:
            raise ShadowStateError(
                f"session {name!r} runs a shadow experiment; the sharded "
                f"engine cannot host shadowed sessions — stop or promote the "
                f"shadow before attaching"
            )
        state = dict(state)
        subtree_shards = int(subtree_shards)
        if subtree_shards < 1:
            raise ConfigurationError(
                f"subtree_shards must be >= 1, got {subtree_shards}"
            )
        subtree_depth = int(subtree_depth)
        if subtree_depth < 1:
            raise ConfigurationError(
                f"subtree_depth must be >= 1, got {subtree_depth}"
            )
        unit: "_WholeUnit | _SubtreeUnit"
        groups = (
            plan_subtree_groups(
                state["tree"]["leaves"], subtree_shards, subtree_depth
            )
            if subtree_shards > 1
            else []
        )
        if len(groups) > 1:
            try:
                sub_states, withheld = split_session_state(
                    state, groups, subtree_depth
                )
            except CheckpointError as exc:
                raise ConfigurationError(str(exc)) from exc
            workers = [self._assign_worker() for _ in groups]
            unit = _SubtreeUnit(
                name, state, groups, sub_states, workers, withheld,
                depth=subtree_depth,
            )
        else:
            unit = _WholeUnit(name, self._assign_worker(), state)
        self._units[name] = unit
        if self._started:
            self._ship_unit(unit)

    def _assign_worker(self) -> int:
        worker = self._next_worker % self.num_workers
        self._next_worker += 1
        return worker

    @property
    def session_names(self) -> tuple[str, ...]:
        return tuple(self._units)

    def __contains__(self, name: str) -> bool:
        return name in self._units

    def __len__(self) -> int:
        return len(self._units)

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def subscribe(self, observer: EngineObserver) -> EngineObserver:
        """Attach an observer; hooks fire coordinator-side on merged results
        with a :class:`ShardedSessionHandle` as the session argument."""
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: EngineObserver) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ShardingError("this sharded engine has been closed")

    def _ensure_started(self) -> None:
        self._check_open()
        if self._started:
            return
        self._transport.connect(self.num_workers, self.start_method)
        self._started = True
        for unit in self._units.values():
            self._ship_unit(unit)

    def _ship_unit(self, unit: "_WholeUnit | _SubtreeUnit") -> None:
        # Under supervision the shipped states are retained as recovery
        # snapshots: a respawned worker is rebuilt from them plus the
        # bounded op log.  "add" rounds are deliberately *not* logged — the
        # snapshot taken here plays that role during replay.
        if unit.kind == "whole":
            assert unit.state is not None
            if self._supervisor is not None:
                self._snapshots[unit.key] = unit.state
            self._roundtrip({unit.worker: [(unit.key, unit.state, 0)]}, "add")
            unit.state = None  # the worker owns the live state from here on
        else:
            assert unit.sub_states is not None
            ops: dict[int, list] = {}
            for gid, worker in enumerate(unit.workers):
                if self._supervisor is not None:
                    self._snapshots[unit.keys[gid]] = unit.sub_states[gid]
                ops.setdefault(worker, []).append(
                    (unit.keys[gid], unit.sub_states[gid], unit.depth)
                )
            self._roundtrip(ops, "add")
            unit.sub_states = None

    #: Verbs whose rounds must be replayed to rebuild a worker exactly.
    #: ("add" is covered by snapshots; "remove" only occurs inside
    #: rebalancing, which refreshes the involved workers around it.)
    _LOGGED_VERBS = frozenset({"ingest", "flush"})

    def _ship(self, worker_id: int, verb: str, ops: Any) -> None:
        if self._supervisor is not None:
            self._supervisor.ship(worker_id, verb, ops)
        else:
            self._transport.ship(worker_id, verb, ops)

    def _collect_reply(self, worker_id: int) -> tuple:
        if self._supervisor is not None:
            return self._supervisor.collect(worker_id)
        return self._transport.collect(worker_id)

    def _roundtrip(self, ops_by_worker: Mapping[int, Any], verb: str) -> dict[int, Any]:
        """Send one message per involved worker; collect replies determinately.

        Under supervision a :class:`~repro.exceptions.WorkerFailureError`
        on either leg triggers in-place recovery (respawn + snapshot
        restore + op-log replay + re-ship of the in-flight round), so the
        round completes with exactly the replies an uninterrupted run would
        have produced.
        """
        workers = sorted(ops_by_worker)
        for worker_id in workers:
            try:
                self._ship(worker_id, verb, ops_by_worker[worker_id])
            except WorkerFailureError as exc:
                self._recover_worker(worker_id, exc)
                self._ship(worker_id, verb, ops_by_worker[worker_id])
        replies: dict[int, Any] = {}
        failure: "tuple[BaseException | None, str, str, str] | None" = None
        log = self._supervisor is not None and verb in self._LOGGED_VERBS
        for worker_id in workers:
            try:
                status, payload = self._collect_reply(worker_id)
            except WorkerFailureError as exc:
                self._recover_worker(worker_id, exc)
                # The rebuilt worker never saw the in-flight round: re-ship
                # it and take the reply an uninterrupted run would have had.
                self._ship(worker_id, verb, ops_by_worker[worker_id])
                status, payload = self._collect_reply(worker_id)
            if status == "error" and failure is None:
                failure = payload
            elif status == "ok":
                replies[worker_id] = payload
                if log:
                    self._oplog.setdefault(worker_id, []).append(
                        (verb, ops_by_worker[worker_id])
                    )
        if failure is not None:
            raise revive_exception(*failure)
        if log:
            for worker_id in workers:
                if len(self._oplog.get(worker_id, ())) > self.replay_buffer_ops:
                    self._refresh_worker(worker_id)
        return replies

    # ------------------------------------------------------------------
    # Worker recovery
    # ------------------------------------------------------------------
    def _keys_on_worker(self, worker_id: int) -> list[tuple[Any, int]]:
        """``(key, capture_depth)`` of every shard unit hosted by a worker."""
        out: list[tuple[Any, int]] = []
        for unit in self._units.values():
            if unit.kind == "whole":
                if unit.worker == worker_id:
                    out.append((unit.key, 0))
            else:
                for gid, worker in enumerate(unit.workers):
                    if worker == worker_id:
                        out.append((unit.keys[gid], unit.depth))
        out.sort(key=lambda item: item[0])
        return out

    def _refresh_worker(self, worker_id: int) -> None:
        """Re-anchor a worker's recovery baseline: snapshot now, clear log.

        Fetches the current state of every unit on the worker (through the
        supervised path, so the refresh itself is recoverable) and replaces
        the snapshots; the op log — now folded into the snapshots — is
        dropped.  This is what bounds both replay time and log memory.
        """
        keyed = self._keys_on_worker(worker_id)
        if keyed:
            replies = self._roundtrip(
                {worker_id: [key for key, _ in keyed]}, "state"
            )
            states = dict(replies[worker_id])
            for key, _depth in keyed:
                self._snapshots[key] = states[key]
        self._oplog[worker_id] = []

    def _recover_worker(self, worker_id: int, cause: WorkerFailureError) -> None:
        """Respawn ``worker_id`` and rebuild it bit-identically, or raise."""
        if self._supervisor is None:
            raise cause
        last_error: BaseException = cause
        self._recovering_depth += 1
        try:
            for _attempt in range(self.max_recovery_attempts):
                try:
                    self._attempt_recovery(worker_id)
                except WorkerFailureError as exc:
                    last_error = exc
                    continue
                self._recoveries_total += 1
                self._last_recovery_unix = time.time()
                for unit in self._units.values():
                    hosted = (
                        unit.worker == worker_id
                        if unit.kind == "whole"
                        else worker_id in unit.workers
                    )
                    if hosted:
                        unit.recoveries += 1
                return
        finally:
            self._recovering_depth -= 1
        raise ShardingError(
            f"shard worker {worker_id} could not be recovered after "
            f"{self.max_recovery_attempts} attempts: {last_error}"
        ) from last_error

    def _attempt_recovery(self, worker_id: int) -> None:
        assert self._supervisor is not None
        self._supervisor.respawn(worker_id, self.start_method)
        add_ops: list[tuple[Any, dict[str, Any], int]] = []
        for key, depth in self._keys_on_worker(worker_id):
            state = self._snapshots.get(key)
            if state is None:
                raise ShardingError(
                    f"no recovery snapshot for shard unit {key!r}; worker "
                    f"{worker_id} cannot be rebuilt"
                )
            add_ops.append((key, state, depth))
        if add_ops:
            self._replay(worker_id, "add", add_ops)
        replayed = 0
        for verb, ops in list(self._oplog.get(worker_id, ())):
            self._replay(worker_id, verb, ops)
            replayed += 1
        self._replayed_batches_total += replayed

    def _replay(self, worker_id: int, verb: str, ops: Any) -> None:
        """One raw replay round against a freshly rebuilt worker.

        Replies are discarded — the original replies were already merged
        before the failure, and worker sessions are deterministic, so the
        replay only rebuilds state.  Raw transport is used on purpose: a
        replay must not consume fault-plan ordinals.
        """
        try:
            self._transport.ship(worker_id, verb, ops)
            status, _payload = self._transport.collect(
                worker_id, timeout=self.op_timeout
            )
        except WorkerFailureError:
            raise
        except ShardingError as exc:
            raise WorkerFailureError(worker_id, "replay", str(exc)) from exc
        if status != "ok":
            raise WorkerFailureError(
                worker_id, "replay", f"worker rejected a replayed {verb!r} round"
            )

    def close(self) -> None:
        """Stop every worker process.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        self._transport.close()
        self._started = False

    def __enter__(self) -> "ShardedDetectionEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _resolve_key(self, key: "str | None", timestamp: float) -> "str | None":
        """Session name for a stream key (None = drop), serial semantics."""
        if key is None and len(self._units) == 1:
            return next(iter(self._units))
        if key is not None and key in self._units:
            return key
        if self.unknown_stream == "drop":
            return None
        raise StreamError(
            f"record at t={timestamp} routed to unknown session {key!r}; "
            f"registered sessions: {sorted(self._units)}"
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest_record_batch(
        self, batch: RecordBatch
    ) -> dict[str, list[TimeunitResult]]:
        """Route one columnar batch through the shards; merged closed results
        grouped by session name (bit-identical to the serial engine)."""
        self._ensure_started()
        closed: dict[str, list[TimeunitResult]] = {name: [] for name in self._units}
        if len(batch) == 0:
            return closed
        selector = None if self.stream_key is attribute_stream_key else self.stream_key
        routed: list[tuple[str, RecordBatch]] = []
        for key, part in batch.partition_by_key(selector):
            name = self._resolve_key(
                key, float(part.timestamps[0]) if len(part) else 0.0
            )
            if name is not None:
                routed.append((name, part))
        if not routed:
            return closed
        ops: dict[int, list] = {}
        emit_bound: dict[str, int] = {}
        for name, part in routed:
            unit = self._units[name]
            if unit.kind == "whole":
                ops.setdefault(unit.worker, []).append((unit.key, "whole", part))
            else:
                emit_bound[name] = self._dispatch_subtree(unit, part, ops)
        replies = self._roundtrip(ops, "ingest")
        self._collect(replies, closed)
        for name, part in routed:
            unit = self._units[name]
            if unit.kind == "sub":
                closed[name].extend(self._emit_ready(unit, upto=emit_bound[name]))
        return closed

    def _dispatch_subtree(
        self, unit: _SubtreeUnit, part: RecordBatch, ops: dict[int, list]
    ) -> int:
        """Segment one session sub-batch by watermark and queue per-group ops.

        Returns the new session watermark (timeunits strictly below it are
        complete across every group after this round).
        """
        units_col = part.timeunit_indices(unit.clock)
        fresh = unit.carried is None
        if _np is not None and not isinstance(units_col, list):
            running_max = _np.maximum.accumulate(units_col)
            anchor = int(units_col[0]) if fresh else unit.carried
            w_before = _np.concatenate(
                ([anchor], _np.maximum(running_max[:-1], anchor))
            )
            new_carried = int(max(int(running_max[-1]), anchor))
        else:
            anchor = int(units_col[0]) if fresh else unit.carried
            w_before, high = [], anchor
            for u in units_col:
                w_before.append(high)
                if u > high:
                    high = int(u)
            new_carried = high

        route = unit.partition.route
        rows_by_gid: dict[int, list[int]] = {}
        for i, category in enumerate(part.categories):
            gid = route(category)
            rows_by_gid.setdefault(0 if gid is None else gid, []).append(i)

        for gid in range(unit.num_groups):
            segments: list[tuple[int, "RecordBatch | None"]] = []
            pending_rows: list[int] = []
            segment_w = anchor
            progress = None if fresh else unit.carried
            if progress is None:
                progress = anchor
            for row in rows_by_gid.get(gid, []):
                w = int(w_before[row])
                if w > progress:
                    segments.append(
                        (segment_w, part.take(pending_rows) if pending_rows else None)
                    )
                    pending_rows = []
                    segment_w = w
                    progress = w
                pending_rows.append(row)
                row_unit = int(units_col[row])
                if row_unit > progress:
                    progress = row_unit
            if pending_rows or (fresh and not segments):
                segments.append(
                    (segment_w, part.take(pending_rows) if pending_rows else None)
                )
            if new_carried > progress:
                segments.append((new_carried, None))
            if segments:
                ops.setdefault(unit.workers[gid], []).append(
                    (unit.keys[gid], "sub", segments)
                )
        unit.carried = new_carried
        return new_carried

    def _collect(
        self,
        replies: Mapping[int, Any],
        closed: dict[str, list[TimeunitResult]],
    ) -> None:
        """Fold worker ingest/flush replies into result lists and buffers."""
        for worker_id in sorted(replies):
            for key, results, frontier_weights in replies[worker_id]:
                if key[0] == "w":
                    name = key[1]
                    closed[name].extend(results)
                    self._observe_whole(self._units[name], results)
                else:
                    _, name, gid = key
                    unit = self._units[name]
                    assert isinstance(unit, _SubtreeUnit)
                    if frontier_weights is None or len(frontier_weights) != len(
                        results
                    ):
                        raise ShardingError(
                            f"internal: shard {key!r} returned {len(results)} "
                            f"results but "
                            f"{0 if frontier_weights is None else len(frontier_weights)} "
                            f"frontier weight records"
                        )
                    expected = len(unit.band_paths_by_gid[gid])
                    for result, (timeunit, values) in zip(results, frontier_weights):
                        if len(values) != expected:
                            raise ShardingError(
                                f"internal: shard {key!r} reported "
                                f"{len(values)} frontier weights for its "
                                f"{expected}-node band"
                            )
                        slot = unit.buffer.setdefault(int(result.timeunit), {})
                        slot[gid] = (result, values)

    def _observe_whole(
        self, unit: _WholeUnit, results: Sequence[TimeunitResult]
    ) -> None:
        for result in results:
            unit.handle.units_processed += 1
            for observer in self._observers:
                observer.on_timeunit_closed(unit.handle, result)
            for anomaly in result.anomalies:
                for observer in self._observers:
                    observer.on_anomaly(unit.handle, anomaly)
            if (
                not unit.warmup_announced
                and unit.handle.units_processed >= unit.handle.warmup_units
            ):
                unit.warmup_announced = True
                for observer in self._observers:
                    observer.on_warmup_complete(unit.handle, result.timeunit)

    def _emit_ready(
        self, unit: _SubtreeUnit, upto: "int | None"
    ) -> list[TimeunitResult]:
        """Merge and emit buffered timeunits strictly below ``upto`` (all
        when ``upto`` is None), in timeunit order."""
        emitted: list[TimeunitResult] = []
        for timeunit in sorted(unit.buffer):
            if upto is not None and timeunit >= upto:
                break
            slot = unit.buffer.pop(timeunit)
            if len(slot) != unit.num_groups:
                raise ShardingError(
                    f"internal: timeunit {timeunit} of session {unit.name!r} "
                    f"closed on {len(slot)} of {unit.num_groups} shard groups"
                )
            if unit.frontier is not None:
                totals: dict[tuple, float] = {}
                for gid in range(unit.num_groups):
                    for path, value in zip(
                        unit.band_paths_by_gid[gid], slot[gid][1]
                    ):
                        totals[path] = totals.get(path, 0.0) + value
                unit.frontier.observe(timeunit, totals)
            merged = self._merge_unit_results(
                unit, timeunit, [slot[gid][0] for gid in range(unit.num_groups)]
            )
            unit.handle.units_processed += 1
            unit.reports.add_many(merged.anomalies)
            for observer in self._observers:
                observer.on_timeunit_closed(unit.handle, merged)
            for anomaly in merged.anomalies:
                for observer in self._observers:
                    observer.on_anomaly(unit.handle, anomaly)
            if (
                not unit.warmup_announced
                and unit.handle.units_processed >= unit.handle.warmup_units
            ):
                unit.warmup_announced = True
                for observer in self._observers:
                    observer.on_warmup_complete(unit.handle, merged.timeunit)
            emitted.append(merged)
        return emitted

    @staticmethod
    def _merge_unit_results(
        unit: _SubtreeUnit, timeunit: int, parts: Sequence[TimeunitResult]
    ) -> TimeunitResult:
        heavy: set = set()
        for part in parts:
            heavy.update(part.heavy_hitters)
        actuals: dict = {}
        forecasts: dict = {}
        route = unit.partition.route
        for path in sorted(heavy):
            gid = route(path)
            gid = 0 if gid is None else gid
            actuals[path] = parts[gid].actuals[path]
            forecasts[path] = parts[gid].forecasts[path]
        anomalies = tuple(
            sorted(
                (anomaly for part in parts for anomaly in part.anomalies),
                key=lambda a: a.node_path,
            )
        )
        return TimeunitResult(
            timeunit=timeunit,
            heavy_hitters=frozenset(heavy),
            actuals=actuals,
            forecasts=forecasts,
            anomalies=anomalies,
        )

    def ingest_batch(
        self, records: Iterable[OperationalRecord]
    ) -> dict[str, list[TimeunitResult]]:
        """Route a batch of record objects (columnarized coordinator-side)."""
        records = list(records)
        if not records:
            self._check_open()
            return {name: [] for name in self._units}
        return self.ingest_record_batch(RecordBatch.from_records(records))

    def ingest_record(self, record: OperationalRecord) -> list[TimeunitResult]:
        """Route one record; returns results of timeunits it closed.

        Provided for API parity — per-record dispatch pays one worker round
        trip per record; prefer the batch paths.
        """
        key = self.stream_key(record)
        name = self._resolve_key(key, record.timestamp)
        if name is None:
            return []
        return self.ingest_batch([record])[name]

    def process_stream(
        self, records: Iterable[OperationalRecord], batch_size: int = 8192
    ) -> dict[str, list[TimeunitResult]]:
        """Consume a whole merged record stream, then flush every session."""
        return self.process_batches(iter_record_batches(records, batch_size))

    def process_batches(
        self, batches: Iterable[RecordBatch]
    ) -> dict[str, list[TimeunitResult]]:
        """Consume a stream of columnar batches, then flush every session."""
        self._ensure_started()
        closed: dict[str, list[TimeunitResult]] = {name: [] for name in self._units}
        for batch in batches:
            for name, results in self.ingest_record_batch(batch).items():
                closed[name].extend(results)
        for name, results in self.flush().items():
            closed[name].extend(results)
        return closed

    def flush(self) -> dict[str, list[TimeunitResult]]:
        """Close the accumulating timeunit of every session."""
        self._ensure_started()
        closed: dict[str, list[TimeunitResult]] = {name: [] for name in self._units}
        ops: dict[int, list] = {}
        for unit in self._units.values():
            if unit.kind == "whole":
                ops.setdefault(unit.worker, []).append(unit.key)
            else:
                for gid, worker in enumerate(unit.workers):
                    ops.setdefault(worker, []).append(unit.keys[gid])
        if not ops:
            return closed
        replies = self._roundtrip(ops, "flush")
        self._collect(replies, closed)
        for name, unit in self._units.items():
            if unit.kind == "sub":
                closed[name].extend(self._emit_ready(unit, upto=None))
                unit.carried = None
        return closed

    # ------------------------------------------------------------------
    # Churn-driven rebalancing
    # ------------------------------------------------------------------
    def rebalance_session(
        self, name: str, *, churn_threshold: float = 2.0
    ) -> dict[str, Any]:
        """Migrate one cut unit off the churn-heaviest shard group.

        Adaptation churn (split + merge operations) per shard group is the
        signal: when the busiest group's churn exceeds the lightest group's
        by ``churn_threshold`` (ratio, +1-smoothed) and the busiest owns
        more than one cut unit, its lexicographically last unit migrates to
        the lightest group through the split/merge checkpoint machinery —
        merge to the canonical serial state, remove the old shard sessions,
        re-split under the new layout, reship.  The operation happens at a
        timeunit barrier and is state-preserving: detections and checkpoint
        bytes are identical to never having rebalanced.

        Returns a report dict; ``"moved"`` is ``None`` when the layout was
        already balanced (no migration performed).
        """
        try:
            unit = self._units[name]
        except KeyError:
            raise ConfigurationError(
                f"no session named {name!r}; registered sessions: "
                f"{sorted(self._units)}"
            ) from None
        if unit.kind != "sub":
            raise ShardingError(
                f"session {name!r} is not subtree-sharded; nothing to rebalance"
            )
        self._ensure_started()
        if unit.buffer:
            raise ShardingError(
                f"session {name!r} has timeunits mid-merge; rebalance at a "
                f"batch boundary"
            )
        ops: dict[int, list] = {}
        for gid, worker in enumerate(unit.workers):
            ops.setdefault(worker, []).append(unit.keys[gid])
        replies = self._roundtrip(
            {worker: ("adaptation_stats", keys) for worker, keys in ops.items()},
            "query",
        )
        per_key: dict[Any, Any] = {}
        for worker_id in sorted(replies):
            per_key.update(dict(replies[worker_id]))
        churn = [
            int((per_key.get(key) or {}).get("split_operations", 0))
            + int((per_key.get(key) or {}).get("merge_operations", 0))
            for key in unit.keys
        ]
        gids = range(unit.num_groups)
        donor = max(gids, key=lambda g: (churn[g], -g))
        receiver = min(gids, key=lambda g: (churn[g], g))
        skew = (churn[donor] + 1) / (churn[receiver] + 1)
        report: dict[str, Any] = {
            "session": name,
            "churn": list(churn),
            "skew": skew,
            "threshold": float(churn_threshold),
            "moved": None,
            "from_group": None,
            "to_group": None,
        }
        if (
            donor == receiver
            or skew < churn_threshold
            or len(unit.partition.groups[donor]) < 2
        ):
            return report
        moved = max(unit.partition.groups[donor])
        merged = self.merged_session_state(name)
        if self._supervisor is not None:
            # Re-anchor recovery baselines before mutating the layout: the
            # old op logs reference the pre-rebalance shard sessions and
            # must never be replayed onto the re-split ones.
            for worker_id in sorted(set(unit.workers)):
                self._refresh_worker(worker_id)
        new_groups = [list(group) for group in unit.partition.groups]
        new_groups[donor].remove(moved)
        new_groups[receiver].append(moved)
        new_groups = [sorted(group) for group in new_groups]
        try:
            sub_states, withheld = split_session_state(
                merged, new_groups, unit.depth
            )
        except CheckpointError as exc:  # pragma: no cover - defensive
            raise ShardingError(
                f"rebalance of session {name!r} failed to re-split: {exc}"
            ) from exc
        remove_ops: dict[int, list] = {}
        for gid, worker in enumerate(unit.workers):
            remove_ops.setdefault(worker, []).append(unit.keys[gid])
        self._roundtrip(remove_ops, "remove")
        new_unit = _SubtreeUnit(
            name, merged, new_groups, sub_states, unit.workers, withheld,
            depth=unit.depth,
        )
        # Keep the observer-visible handle and the coordinator report store
        # (identity matters to subscribers; contents are equal either way).
        new_unit.handle = unit.handle
        new_unit.reports = unit.reports
        new_unit.warmup_announced = unit.warmup_announced
        new_unit.rebalances = unit.rebalances + 1
        new_unit.recoveries = unit.recoveries
        self._units[name] = new_unit
        self._ship_unit(new_unit)
        self._rebalances_total += 1
        report["moved"] = list(moved)
        report["from_group"] = donor
        report["to_group"] = receiver
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _query(self, what: str, include_sub: bool = True) -> dict[Any, Any]:
        """Fetch a per-unit attribute from the workers.

        ``include_sub=False`` restricts the round trip to whole-session units
        — the coordinator already holds the merged answer for subtree shards,
        so shipping their (potentially large) values over the pipe would be
        pure waste.
        """
        ops: dict[int, list] = {}
        for unit in self._units.values():
            if unit.kind == "whole":
                ops.setdefault(unit.worker, []).append(unit.key)
            elif include_sub:
                for gid, worker in enumerate(unit.workers):
                    ops.setdefault(worker, []).append(unit.keys[gid])
        if not ops:
            return {}
        self._ensure_started()
        replies = self._roundtrip(
            {worker: (what, keys) for worker, keys in ops.items()}, "query"
        )
        merged: dict[Any, Any] = {}
        for worker_id in sorted(replies):
            merged.update(dict(replies[worker_id]))
        return merged

    def anomalies(self) -> dict[str, list[Anomaly]]:
        """All reported anomalies, grouped by session name."""
        self._ensure_started()
        per_key = self._query("anomalies", include_sub=False)
        out: dict[str, list[Anomaly]] = {}
        for name, unit in self._units.items():
            if unit.kind == "whole":
                out[name] = per_key[unit.key]
            else:
                out[name] = unit.reports.query()
        return out

    def units_processed(self) -> dict[str, int]:
        self._ensure_started()
        per_key = self._query("units_processed", include_sub=False)
        out: dict[str, int] = {}
        for name, unit in self._units.items():
            if unit.kind == "whole":
                out[name] = per_key[unit.key]
            else:
                out[name] = unit.handle.units_processed
        return out

    def memory_units(self) -> int:
        """Total memory cost proxy across all shard sessions."""
        self._ensure_started()
        return sum(self._query("memory_units").values())

    def adaptation_stats(self) -> dict[str, dict]:
        """Delta-adaptation counters per session, merged across shards.

        Subtree shards run the same id-based adaptation core as a serial
        session over their sub-hierarchies; numeric counters are summed
        across **all** shard units of a session (shared fields like the
        adaptation mode come from the first shard).  Subtree-sharded
        sessions additionally report ``"rebalances"`` — how many times
        churn-driven rebalancing migrated their layout.  Sessions whose
        algorithm has no adaptation engine report ``{}``.
        """
        self._ensure_started()
        per_key = self._query("adaptation_stats")
        out: dict[str, dict] = {}
        for name, unit in self._units.items():
            if unit.kind == "whole":
                stats = dict(per_key[unit.key] or {})
                if unit.recoveries:
                    stats["recoveries"] = unit.recoveries
                out[name] = stats
                continue
            merged = _merge_numeric_dicts(per_key.get(key) for key in unit.keys)
            if merged or unit.rebalances:
                merged["rebalances"] = unit.rebalances
            if unit.recoveries:
                merged["recoveries"] = unit.recoveries
            out[name] = merged
        return out

    def stage_seconds(self) -> dict[str, dict[str, float]]:
        """Per-session pipeline stage timings, summed across shard units."""
        self._ensure_started()
        per_key = self._query("stage_seconds")
        out: dict[str, dict[str, float]] = {}
        for name, unit in self._units.items():
            if unit.kind == "whole":
                out[name] = per_key[unit.key]
                continue
            merged = _merge_numeric_dicts(per_key.get(key) for key in unit.keys)
            for key, value in unit.base_state["algorithm_state"].get(
                "stage_seconds", {}
            ).items():
                if key in merged:
                    merged[key] += float(value)
            out[name] = merged
        return out

    def close_profile(self) -> dict[str, dict[str, Any]]:
        """Per-session close-path profile, summed across shard units."""
        self._ensure_started()
        per_key = self._query("close_profile")
        out: dict[str, dict[str, Any]] = {}
        for name, unit in self._units.items():
            if unit.kind == "whole":
                out[name] = per_key[unit.key]
            else:
                out[name] = _merge_numeric_dicts(
                    per_key.get(key) for key in unit.keys
                )
        return out

    def transport_stats(self) -> dict[str, Any]:
        """Cumulative transfer counters of the active transport."""
        stats = self._transport.stats()
        stats["connected"] = self._started
        return stats

    def sharding_info(self) -> dict[str, Any]:
        """Shard layout summary (transport, per-session groups, rebalances).

        This is what the service layer surfaces under ``"sharding"`` in
        tenant snapshots and ``/metrics``.
        """
        sessions: dict[str, Any] = {}
        for name, unit in self._units.items():
            if unit.kind == "whole":
                sessions[name] = {
                    "kind": "whole",
                    "worker": unit.worker,
                    "recoveries": unit.recoveries,
                }
            else:
                sessions[name] = {
                    "kind": "subtree",
                    "depth": unit.depth,
                    "groups": [
                        [list(prefix) for prefix in group]
                        for group in unit.partition.groups
                    ],
                    "workers": list(unit.workers),
                    "rebalances": unit.rebalances,
                    "recoveries": unit.recoveries,
                }
        info: dict[str, Any] = {
            "transport": self._transport.name,
            "num_workers": self.num_workers,
            "rebalances": self._rebalances_total,
            "sessions": sessions,
            "supervision": {
                "enabled": self.supervision,
                "op_timeout": self.op_timeout,
                "recovering": self.recovering,
                "recoveries": self._recoveries_total,
                "replayed_batches": self._replayed_batches_total,
                "last_recovery_unix": self._last_recovery_unix,
            },
        }
        if self._supervisor is not None:
            info["supervision"].update(
                failures=self._supervisor.failures_total,
                faults_injected=self._supervisor.faults_injected,
            )
        return info

    @property
    def recovering(self) -> bool:
        """True while a worker rebuild is in progress (degraded mode)."""
        return self._recovering_depth > 0

    @property
    def recoveries_total(self) -> int:
        """Workers successfully respawned and rebuilt over this engine's life."""
        return self._recoveries_total

    @property
    def replayed_batches_total(self) -> int:
        """Op-log rounds replayed onto rebuilt workers."""
        return self._replayed_batches_total

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def merged_session_state(self, name: str) -> dict[str, Any]:
        """Serial-format ``state_dict`` of one session, merged across shards.

        The returned state loads into a plain
        :class:`~repro.engine.session.DetectionSession` (or back into a
        sharded engine at any shard count) and continues bit-identically.
        """
        try:
            unit = self._units[name]
        except KeyError:
            raise ConfigurationError(
                f"no session named {name!r}; registered sessions: "
                f"{sorted(self._units)}"
            ) from None
        self._ensure_started()
        if unit.kind == "whole":
            ops = {unit.worker: [unit.key]}
            replies = self._roundtrip(ops, "state")
            return dict(replies[unit.worker])[unit.key]
        if unit.buffer:
            raise ShardingError(
                f"session {name!r} has timeunits mid-merge; checkpoint at a "
                f"batch boundary"
            )
        ops = {}
        for gid, worker in enumerate(unit.workers):
            ops.setdefault(worker, []).append(unit.keys[gid])
        replies = self._roundtrip(ops, "state")
        states_by_key: dict[Any, dict[str, Any]] = {}
        for worker_id in sorted(replies):
            states_by_key.update(dict(replies[worker_id]))
        sub_states = [states_by_key[key] for key in unit.keys]
        withheld = unit.frontier.export() if unit.frontier is not None else {}
        return merge_session_states(
            sub_states,
            unit.base_state,
            reports=[anomaly.to_dict() for anomaly in unit.reports],
            withheld=withheld,
            depth=unit.depth,
        )

    def state_dict(self) -> dict[str, Any]:
        """Engine snapshot in the *serial* checkpoint format (version 1)."""
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "engine": {"unknown_stream": self.unknown_stream},
            "sessions": [self.merged_session_state(name) for name in self._units],
        }

    def save_checkpoint(self, path: Any) -> None:
        """Persist the merged engine state atomically as a JSON checkpoint.

        The file is indistinguishable from a serial
        :meth:`DetectionEngine.save_checkpoint` file: either engine can
        restore it.
        """
        _write_json(self.state_dict(), path)

    @classmethod
    def from_state_dict(
        cls,
        state: Mapping[str, Any],
        num_workers: "int | None" = None,
        stream_key: "StreamKey | None" = None,
        subtree_shards: "int | Mapping[str, int]" = 1,
        start_method: "str | None" = None,
        subtree_depth: "int | Mapping[str, int]" = 1,
        transport: "str | ShardTransport" = "pipe",
        transport_options: "Mapping[str, Any] | None" = None,
        supervision: bool = True,
        op_timeout: float = 60.0,
        replay_buffer_ops: int = 64,
        max_recovery_attempts: int = 2,
        fault_plan: Any = None,
    ) -> "ShardedDetectionEngine":
        """Rebuild a sharded engine from a (serial-format) engine snapshot."""
        _check_header(state)
        engine = cls(
            num_workers=num_workers,
            stream_key=stream_key,
            unknown_stream=str(
                state.get("engine", {}).get("unknown_stream", "raise")
            ),
            start_method=start_method,
            transport=transport,
            transport_options=transport_options,
            supervision=supervision,
            op_timeout=op_timeout,
            replay_buffer_ops=replay_buffer_ops,
            max_recovery_attempts=max_recovery_attempts,
            fault_plan=fault_plan,
        )
        for session_state in state["sessions"]:
            session_name = str(session_state["name"])
            shards = (
                subtree_shards.get(session_name, 1)
                if isinstance(subtree_shards, Mapping)
                else subtree_shards
            )
            depth = (
                subtree_depth.get(session_name, 1)
                if isinstance(subtree_depth, Mapping)
                else subtree_depth
            )
            engine.attach_session_state(
                session_state, subtree_shards=shards, subtree_depth=depth
            )
        return engine

    @classmethod
    def load_checkpoint(
        cls,
        path: Any,
        num_workers: "int | None" = None,
        stream_key: "StreamKey | None" = None,
        subtree_shards: "int | Mapping[str, int]" = 1,
        start_method: "str | None" = None,
        subtree_depth: "int | Mapping[str, int]" = 1,
        transport: "str | ShardTransport" = "pipe",
        transport_options: "Mapping[str, Any] | None" = None,
        supervision: bool = True,
        op_timeout: float = 60.0,
        replay_buffer_ops: int = 64,
        max_recovery_attempts: int = 2,
        fault_plan: Any = None,
    ) -> "ShardedDetectionEngine":
        """Restore a sharded engine from any engine checkpoint file."""
        return cls.from_state_dict(
            _read_json(path),
            num_workers=num_workers,
            stream_key=stream_key,
            subtree_shards=subtree_shards,
            start_method=start_method,
            subtree_depth=subtree_depth,
            transport=transport,
            transport_options=transport_options,
            supervision=supervision,
            op_timeout=op_timeout,
            replay_buffer_ops=replay_buffer_ops,
            max_recovery_attempts=max_recovery_attempts,
            fault_plan=fault_plan,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedDetectionEngine(sessions={sorted(self._units)}, "
            f"num_workers={self.num_workers}, "
            f"transport={self._transport.name!r})"
        )
