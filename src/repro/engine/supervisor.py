"""Worker supervision for the sharded engine.

:class:`ShardSupervisor` wraps a :class:`~repro.engine.transport.base.ShardTransport`
and is the *only* path through which the sharded engine ships commands and
collects replies.  It adds three things the raw transports do not promise:

1. **Bounded operations** — every collect runs under a per-operation
   deadline (``op_timeout``), so a dead, wedged or black-holed worker
   surfaces as a typed, picklable
   :class:`~repro.exceptions.WorkerFailureError` instead of hanging the
   coordinator.  Transport-level failures of any flavour are normalised to
   that same type, so the engine's recovery path has exactly one exception
   to catch.
2. **Deterministic fault injection** — before each ship/collect the
   supervisor consults the active :class:`~repro.testing.faults.FaultPlan`
   (if any) and applies the planned fault at this seam: kill the worker,
   delay, drop or corrupt the frame.  No monkeypatching, no test-only
   subclasses; with no plan active the hook is a single ``None`` check.
3. **Safe respawn** — :meth:`respawn` replaces a dead worker under
   :func:`repro.testing.faults.disarmed`, so a replacement process never
   inherits still-armed faults and crash-loops.

The supervisor is deliberately stateless about *sessions*: snapshotting,
op-log replay and unit restoration live in
:class:`~repro.engine.sharded.ShardedDetectionEngine`, which owns the
state needed to rebuild a worker bit-identically.
"""

from __future__ import annotations

import time
from typing import Any

from repro.engine.transport.base import ShardTransport
from repro.exceptions import ShardingError, WorkerFailureError


class ShardSupervisor:
    """Deadline-checked, fault-injectable front end over a shard transport."""

    def __init__(
        self,
        transport: ShardTransport,
        op_timeout: float = 60.0,
        fault_plan: Any = None,
    ) -> None:
        self.transport = transport
        self.op_timeout = float(op_timeout)
        self._fault_plan = fault_plan
        #: WorkerFailureErrors surfaced (pre-recovery), by op.
        self.failures_total = 0
        #: Planned faults actually applied at this seam.
        self.faults_injected = 0

    # ------------------------------------------------------------------
    def _plan(self):
        if self._fault_plan is not None:
            return self._fault_plan
        from repro.testing.faults import active_fault_plan

        return active_fault_plan()

    def _kill(self, worker_id: int) -> None:
        try:
            self.transport.kill_worker(worker_id)
        except ShardingError:  # pragma: no cover - transport without kill
            pass

    # ------------------------------------------------------------------
    def ship(self, worker_id: int, verb: str, ops: Any) -> None:
        corrupt = False
        plan = self._plan()
        if plan is not None:
            spec = plan.next_transport_action("ship", worker_id)
            if spec is not None:
                self.faults_injected += 1
                if spec.kind == "kill_worker":
                    self._kill(worker_id)
                elif spec.kind == "delay_frame":
                    time.sleep(spec.seconds)
                elif spec.kind == "drop_frame":
                    # The frame never leaves the coordinator; the worker
                    # will not reply and the collect deadline converts the
                    # silence into a typed failure.
                    return
                elif spec.kind == "corrupt_frame":
                    corrupt = True
        try:
            self.transport.ship(worker_id, verb, ops, corrupt=corrupt)
        except WorkerFailureError:
            self.failures_total += 1
            raise
        except ShardingError as exc:
            self.failures_total += 1
            raise WorkerFailureError(worker_id, "ship", str(exc)) from exc

    def collect(self, worker_id: int) -> tuple:
        plan = self._plan()
        if plan is not None:
            spec = plan.next_transport_action("collect", worker_id)
            if spec is not None:
                self.faults_injected += 1
                if spec.kind == "kill_worker":
                    self._kill(worker_id)
                elif spec.kind == "delay_frame":
                    time.sleep(spec.seconds)
                elif spec.kind == "drop_frame":
                    # Losing a reply == receiving it and throwing it away;
                    # consume best-effort, then fail typed so recovery
                    # rebuilds the worker (which may have applied the op).
                    try:
                        self.transport.collect(worker_id, timeout=self.op_timeout)
                    except ShardingError:
                        pass
                    self.failures_total += 1
                    raise WorkerFailureError(
                        worker_id, "collect", "reply frame dropped (injected fault)"
                    )
        try:
            return self.transport.collect(worker_id, timeout=self.op_timeout)
        except WorkerFailureError:
            self.failures_total += 1
            raise
        except ShardingError as exc:
            self.failures_total += 1
            raise WorkerFailureError(worker_id, "collect", str(exc)) from exc

    # ------------------------------------------------------------------
    def respawn(self, worker_id: int, start_method: "str | None" = None) -> None:
        """Kill-and-replace ``worker_id`` with faults disarmed for the child."""
        from repro.testing.faults import disarmed

        self._kill(worker_id)
        with disarmed():
            self.transport.respawn(worker_id, start_method)

    def stats(self) -> dict[str, Any]:
        return {
            "op_timeout": self.op_timeout,
            "failures_total": self.failures_total,
            "faults_injected": self.faults_injected,
        }
