"""Pluggable shard transports for :class:`repro.engine.sharded`.

Three tiers, one contract (:class:`~repro.engine.transport.base.ShardTransport`):

``"pipe"``
    Duplex ``multiprocessing`` pipes, everything pickled.  The default and
    the behavioural baseline.
``"shm"``
    ``multiprocessing.shared_memory`` segments carrying wire-format frames:
    record-batch columns ship as raw little-endian buffers the worker maps
    zero-copy; only command skeletons are pickled.
``"tcp"``
    The same wire frames, length-prefixed over sockets; workers may live in
    other processes or on other hosts (``examples/remote_workers.py``).

All three execute verbs through :mod:`repro.engine.shard_worker`, so
detections, reports and checkpoint bytes are identical across transports —
the CI ``sharded-transports`` job asserts it.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.engine.transport.base import ShardTransport
from repro.engine.transport.pipe import PipeTransport
from repro.engine.transport.shm import SharedMemoryTransport
from repro.engine.transport.tcp import TcpTransport, run_worker
from repro.exceptions import ConfigurationError

TRANSPORTS: dict[str, type] = {
    "pipe": PipeTransport,
    "shm": SharedMemoryTransport,
    "tcp": TcpTransport,
}

__all__ = [
    "ShardTransport",
    "PipeTransport",
    "SharedMemoryTransport",
    "TcpTransport",
    "TRANSPORTS",
    "make_transport",
    "run_worker",
]


def make_transport(
    spec: "str | ShardTransport",
    options: "Mapping[str, Any] | None" = None,
) -> ShardTransport:
    """Build a transport from a name (plus options) or pass one through."""
    if isinstance(spec, ShardTransport):
        if options:
            raise ConfigurationError(
                "transport_options require a transport name, not an instance"
            )
        return spec
    try:
        cls = TRANSPORTS[spec]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown shard transport {spec!r}; available: "
            f"{sorted(TRANSPORTS)}"
        ) from None
    try:
        return cls(**dict(options or {}))
    except TypeError as exc:
        raise ConfigurationError(
            f"invalid options for shard transport {spec!r}: {exc}"
        ) from exc
