"""The :class:`ShardTransport` contract shared by every shard transport.

A transport moves coordinator verbs to shard workers and replies back —
nothing more.  Verb *semantics* live in :mod:`repro.engine.shard_worker`;
the engine only ever calls :meth:`connect` / :meth:`ship` / :meth:`collect`
/ :meth:`close`, so transports are interchangeable and the sharded engine's
bit-identical-to-serial guarantee holds for all of them (the CI
``sharded-transports`` job asserts exactly that).

The engine's protocol is strict request/reply per worker: after
:meth:`ship`\\ ping to a worker it always :meth:`collect`\\ s that worker's
reply before shipping to it again.  Transports may rely on this (the
shared-memory transport reuses one segment per worker because of it).

Supervision surface
-------------------
Every operation is *bounded*: :meth:`collect` takes an optional per-op
deadline and transports convert dead peers, torn channels and expired
deadlines into a typed, picklable
:class:`~repro.exceptions.WorkerFailureError` instead of blocking forever.
:meth:`is_alive` / :meth:`kill_worker` / :meth:`respawn` give the
:class:`~repro.engine.supervisor.ShardSupervisor` the levers for exact
recovery: a respawned worker gets a *fresh* channel (including a reset
delta-dictionary encoder where applicable) and the coordinator rebuilds its
state from snapshots.  Close paths escalate ``join(timeout)`` →
``terminate()`` → ``kill()`` so no shutdown leaks zombie processes; the
escalations are counted in :meth:`stats`.

Byte accounting
---------------
Each transport tracks two ship-side byte counters:

``ship_bytes``
    Total payload bytes handed to the OS (frames, pickles, notifies).
``ship_serialized_bytes``
    Bytes that passed through a serializer (``pickle``).  The pipe
    transport pickles entire operations — batches included — so both
    counters coincide; the shared-memory and TCP transports ship
    ``RecordBatch`` columns as raw little-endian buffers and serialize only
    the operation skeleton, which is what the ``--check-shard-overhead``
    benchmark gate measures.
"""

from __future__ import annotations

import time
from typing import Any

from repro.exceptions import ShardingError, WorkerFailureError


class ShardTransport:
    """Abstract coordinator<->worker byte mover (see module docstring)."""

    name = "base"

    def __init__(self) -> None:
        self.ships = 0
        self.collects = 0
        self.ship_bytes = 0
        self.ship_serialized_bytes = 0
        self.collect_bytes = 0
        self.ship_seconds = 0.0
        self.collect_seconds = 0.0
        # Supervision / shutdown-hygiene counters.
        self.respawns = 0
        self.zombies_terminated = 0
        self.zombies_killed = 0

    # -- lifecycle ------------------------------------------------------
    def connect(self, num_workers: int, start_method: "str | None" = None) -> None:
        """Start (or accept) ``num_workers`` workers and open channels."""
        raise NotImplementedError

    def ship(
        self, worker_id: int, verb: str, ops: Any, *, corrupt: bool = False
    ) -> None:
        """Send one ``(verb, ops)`` command to ``worker_id``.

        ``corrupt=True`` deliberately mangles the payload bytes on the way
        out — the seam the ``corrupt_frame`` fault injection uses; the
        receiver must detect the damage (checksum / unpickling failure) and
        die loudly rather than process garbage.
        """
        raise NotImplementedError

    def collect(self, worker_id: int, timeout: "float | None" = None) -> tuple:
        """Receive ``worker_id``'s ``(status, payload)`` reply.

        Blocking when ``timeout`` is None; otherwise bounded, raising
        :class:`~repro.exceptions.WorkerFailureError` if no reply lands
        within ``timeout`` seconds or the worker dies first.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Stop workers / close channels.  Idempotent."""
        raise NotImplementedError

    # -- supervision ----------------------------------------------------
    def is_alive(self, worker_id: int) -> "bool | None":
        """Liveness of the worker process; ``None`` when unknowable
        (e.g. external TCP workers on another host)."""
        return None

    def kill_worker(self, worker_id: int) -> None:
        """Forcibly take the worker down (process kill or channel sever).

        Used by the supervisor to guarantee a half-dead worker is fully
        dead before :meth:`respawn`, and by fault injection to simulate
        crashes.  Must be idempotent and must not raise on an already-dead
        worker.
        """
        raise ShardingError(
            f"transport {self.name!r} does not support killing workers"
        )

    def respawn(self, worker_id: int, start_method: "str | None" = None) -> None:
        """Replace a dead worker with a fresh one on a fresh channel.

        The replacement starts *empty*: the caller (the supervisor) is
        responsible for rebuilding its shard units.  Transports with
        per-channel delta dictionaries reset the channel's encoder here so
        coordinator and worker mirrors restart in sync.
        """
        raise ShardingError(
            f"transport {self.name!r} does not support respawning workers"
        )

    # -- accounting -----------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Cumulative transfer counters (see module docstring)."""
        return {
            "transport": self.name,
            "ships": self.ships,
            "collects": self.collects,
            "ship_bytes": self.ship_bytes,
            "ship_serialized_bytes": self.ship_serialized_bytes,
            "collect_bytes": self.collect_bytes,
            "ship_seconds": self.ship_seconds,
            "collect_seconds": self.collect_seconds,
            "respawns": self.respawns,
            "zombies_terminated": self.zombies_terminated,
            "zombies_killed": self.zombies_killed,
        }

    def _note_ship(self, nbytes: int, serialized: int, seconds: float) -> None:
        self.ships += 1
        self.ship_bytes += nbytes
        self.ship_serialized_bytes += serialized
        self.ship_seconds += seconds

    def _note_collect(self, nbytes: int, seconds: float) -> None:
        self.collects += 1
        self.collect_bytes += nbytes
        self.collect_seconds += seconds

    def _dead(
        self, worker_id: int, exc: BaseException, op: str = "command"
    ) -> WorkerFailureError:
        return WorkerFailureError(
            worker_id, op, f"channel failed ({exc!r})"
        )

    def _reap(self, process: Any, timeout: float = 5.0) -> None:
        """Join a worker process, escalating terminate → kill; never hangs.

        The escalation counters surface in :meth:`stats` (and from there in
        ``/metrics``), so leaked-zombie pressure is observable.
        """
        if process is None:
            return
        process.join(timeout=timeout)
        if not process.is_alive():
            return
        process.terminate()
        process.join(timeout=timeout)
        if not process.is_alive():
            self.zombies_terminated += 1
            return
        process.kill()
        process.join(timeout=timeout)
        self.zombies_killed += 1

    @staticmethod
    def _mangle(data: bytes) -> bytes:
        """Deterministically corrupt a payload (``corrupt_frame`` faults).

        Flips the first byte and a middle byte: the first-byte flip breaks
        the frame magic / pickle protocol marker, the mid-byte flip damages
        the body, so detection is guaranteed on every transport.
        """
        if not data:
            return data
        corrupted = bytearray(data)
        corrupted[0] ^= 0xFF
        corrupted[len(corrupted) // 2] ^= 0xFF
        return bytes(corrupted)

    @staticmethod
    def _clock() -> float:
        return time.perf_counter()
