"""The :class:`ShardTransport` contract shared by every shard transport.

A transport moves coordinator verbs to shard workers and replies back —
nothing more.  Verb *semantics* live in :mod:`repro.engine.shard_worker`;
the engine only ever calls :meth:`connect` / :meth:`ship` / :meth:`collect`
/ :meth:`close`, so transports are interchangeable and the sharded engine's
bit-identical-to-serial guarantee holds for all of them (the CI
``sharded-transports`` job asserts exactly that).

The engine's protocol is strict request/reply per worker: after
:meth:`ship`\\ ping to a worker it always :meth:`collect`\\ s that worker's
reply before shipping to it again.  Transports may rely on this (the
shared-memory transport reuses one segment per worker because of it).

Byte accounting
---------------
Each transport tracks two ship-side byte counters:

``ship_bytes``
    Total payload bytes handed to the OS (frames, pickles, notifies).
``ship_serialized_bytes``
    Bytes that passed through a serializer (``pickle``).  The pipe
    transport pickles entire operations — batches included — so both
    counters coincide; the shared-memory and TCP transports ship
    ``RecordBatch`` columns as raw little-endian buffers and serialize only
    the operation skeleton, which is what the ``--check-shard-overhead``
    benchmark gate measures.
"""

from __future__ import annotations

import time
from typing import Any

from repro.exceptions import ShardingError


class ShardTransport:
    """Abstract coordinator<->worker byte mover (see module docstring)."""

    name = "base"

    def __init__(self) -> None:
        self.ships = 0
        self.collects = 0
        self.ship_bytes = 0
        self.ship_serialized_bytes = 0
        self.collect_bytes = 0
        self.ship_seconds = 0.0
        self.collect_seconds = 0.0

    # -- lifecycle ------------------------------------------------------
    def connect(self, num_workers: int, start_method: "str | None" = None) -> None:
        """Start (or accept) ``num_workers`` workers and open channels."""
        raise NotImplementedError

    def ship(self, worker_id: int, verb: str, ops: Any) -> None:
        """Send one ``(verb, ops)`` command to ``worker_id``."""
        raise NotImplementedError

    def collect(self, worker_id: int) -> tuple:
        """Receive ``worker_id``'s ``(status, payload)`` reply (blocking)."""
        raise NotImplementedError

    def close(self) -> None:
        """Stop workers / close channels.  Idempotent."""
        raise NotImplementedError

    # -- accounting -----------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Cumulative transfer counters (see module docstring)."""
        return {
            "transport": self.name,
            "ships": self.ships,
            "collects": self.collects,
            "ship_bytes": self.ship_bytes,
            "ship_serialized_bytes": self.ship_serialized_bytes,
            "collect_bytes": self.collect_bytes,
            "ship_seconds": self.ship_seconds,
            "collect_seconds": self.collect_seconds,
        }

    def _note_ship(self, nbytes: int, serialized: int, seconds: float) -> None:
        self.ships += 1
        self.ship_bytes += nbytes
        self.ship_serialized_bytes += serialized
        self.ship_seconds += seconds

    def _note_collect(self, nbytes: int, seconds: float) -> None:
        self.collects += 1
        self.collect_bytes += nbytes
        self.collect_seconds += seconds

    def _dead(self, worker_id: int, exc: BaseException) -> ShardingError:
        return ShardingError(
            f"worker {worker_id} died mid-command ({exc!r}); the engine "
            f"state is unrecoverable — restore from the last checkpoint"
        )

    @staticmethod
    def _clock() -> float:
        return time.perf_counter()
