"""In-process pipe transport: one duplex pipe per forked/spawned worker.

This is the default transport and the behavioural baseline: every command
is pickled whole — record batches included — and sent over a
``multiprocessing`` pipe.  Simple and portable, but pickle walks every
timestamp and category of every shipped batch, which is exactly the
overhead the shared-memory transport avoids (and the
``--check-shard-overhead`` benchmark gate quantifies).
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Any

from repro.engine.shard_worker import handle_message
from repro.engine.transport.base import ShardTransport


def _pipe_worker_main(conn, worker_id: int) -> None:  # pragma: no cover - subprocess
    """Worker loop: executes coordinator commands until told to stop."""
    units: dict[Any, Any] = {}
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        verb, ops = pickle.loads(data)
        if verb == "stop":
            try:
                conn.send_bytes(
                    pickle.dumps(("ok", None), protocol=pickle.HIGHEST_PROTOCOL)
                )
            except (BrokenPipeError, OSError):
                pass
            return
        reply = handle_message(units, verb, ops)
        try:
            conn.send_bytes(pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL))
        except (BrokenPipeError, OSError):
            return


class PipeTransport(ShardTransport):
    """Pickle-everything duplex-pipe transport (the default)."""

    name = "pipe"

    def __init__(self) -> None:
        super().__init__()
        self._procs: "list[Any] | None" = None
        self._conns: "list[Any] | None" = None

    def connect(self, num_workers: int, start_method: "str | None" = None) -> None:
        ctx = multiprocessing.get_context(start_method)
        self._procs, self._conns = [], []
        for worker_id in range(num_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_pipe_worker_main,
                args=(child_conn, worker_id),
                name=f"repro-shard-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._procs.append(process)
            self._conns.append(parent_conn)

    def ship(self, worker_id: int, verb: str, ops: Any) -> None:
        start = self._clock()
        data = pickle.dumps((verb, ops), protocol=pickle.HIGHEST_PROTOCOL)
        try:
            self._conns[worker_id].send_bytes(data)
        except (BrokenPipeError, OSError) as exc:
            raise self._dead(worker_id, exc) from exc
        self._note_ship(len(data), len(data), self._clock() - start)

    def collect(self, worker_id: int) -> tuple:
        start = self._clock()
        try:
            data = self._conns[worker_id].recv_bytes()
        except (EOFError, OSError) as exc:
            raise self._dead(worker_id, exc) from exc
        self._note_collect(len(data), self._clock() - start)
        return pickle.loads(data)

    def close(self) -> None:
        if self._procs is None:
            return
        stop = pickle.dumps(("stop", None), protocol=pickle.HIGHEST_PROTOCOL)
        for conn in self._conns:
            try:
                conn.send_bytes(stop)
            except (BrokenPipeError, OSError):
                pass
        for process, conn in zip(self._procs, self._conns):
            try:
                conn.recv_bytes()
            except (EOFError, OSError):
                pass
            conn.close()
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
        self._procs = None
        self._conns = None
