"""In-process pipe transport: one duplex pipe per forked/spawned worker.

This is the default transport and the behavioural baseline: every command
is pickled whole — record batches included — and sent over a
``multiprocessing`` pipe.  Simple and portable, but pickle walks every
timestamp and category of every shipped batch, which is exactly the
overhead the shared-memory transport avoids (and the
``--check-shard-overhead`` benchmark gate quantifies).

Supervision: :meth:`collect` accepts a per-operation deadline and polls the
pipe in short slices, checking worker liveness between slices, so a dead or
wedged worker surfaces as a typed
:class:`~repro.exceptions.WorkerFailureError` instead of a hang.
:meth:`kill_worker` / :meth:`respawn` replace a worker in place (fresh
process, fresh pipe, same worker id) for the supervisor's exact-recovery
path, and :meth:`close` escalates ``join`` → ``terminate`` → ``kill`` so a
wedged worker can never block shutdown.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Any

from repro.engine.shard_worker import handle_message
from repro.engine.transport.base import ShardTransport
from repro.exceptions import ShardingError, WorkerFailureError

#: Poll slice while waiting under a collect deadline; short enough that
#: worker death is noticed promptly, long enough to stay off the CPU.
_POLL_SLICE = 0.05


def _pipe_worker_main(conn, worker_id: int) -> None:  # pragma: no cover - subprocess
    """Worker loop: executes coordinator commands until told to stop."""
    units: dict[Any, Any] = {}
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        verb, ops = pickle.loads(data)
        if verb == "stop":
            try:
                conn.send_bytes(
                    pickle.dumps(("ok", None), protocol=pickle.HIGHEST_PROTOCOL)
                )
            except (BrokenPipeError, OSError):
                pass
            return
        reply = handle_message(units, verb, ops, worker_id=worker_id)
        try:
            conn.send_bytes(pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL))
        except (BrokenPipeError, OSError):
            return


class PipeTransport(ShardTransport):
    """Pickle-everything duplex-pipe transport (the default)."""

    name = "pipe"

    #: Worker entry point; subclasses swap in their own loop and inherit the
    #: spawn/supervision machinery unchanged.
    _worker_main = staticmethod(_pipe_worker_main)

    def __init__(self) -> None:
        super().__init__()
        self._procs: "list[Any] | None" = None
        self._conns: "list[Any] | None" = None
        self._start_method: "str | None" = None

    def _spawn_worker(self, ctx, worker_id: int) -> tuple:
        """Start one worker process; returns ``(process, parent_conn)``."""
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=type(self)._worker_main,
            args=(child_conn, worker_id),
            name=f"repro-shard-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    def connect(self, num_workers: int, start_method: "str | None" = None) -> None:
        self._start_method = start_method
        ctx = multiprocessing.get_context(start_method)
        self._procs, self._conns = [], []
        for worker_id in range(num_workers):
            process, conn = self._spawn_worker(ctx, worker_id)
            self._procs.append(process)
            self._conns.append(conn)

    def ship(
        self, worker_id: int, verb: str, ops: Any, *, corrupt: bool = False
    ) -> None:
        start = self._clock()
        data = pickle.dumps((verb, ops), protocol=pickle.HIGHEST_PROTOCOL)
        if corrupt:
            data = self._mangle(data)
        try:
            self._conns[worker_id].send_bytes(data)
        except (BrokenPipeError, OSError) as exc:
            raise self._dead(worker_id, exc, "ship") from exc
        self._note_ship(len(data), len(data), self._clock() - start)

    def collect(self, worker_id: int, timeout: "float | None" = None) -> tuple:
        start = self._clock()
        conn = self._conns[worker_id]
        if timeout is not None:
            deadline = start + timeout
            try:
                while not conn.poll(_POLL_SLICE):
                    alive = self.is_alive(worker_id)
                    # A dead worker may still have flushed its final reply
                    # into the pipe; only fail once the pipe is drained too.
                    if alive is False and not conn.poll(0):
                        raise self._dead(
                            worker_id, EOFError("worker process exited"), "collect"
                        )
                    if self._clock() >= deadline:
                        raise WorkerFailureError(
                            worker_id,
                            "collect",
                            f"no reply within the {timeout:.3f}s deadline",
                        )
            except (OSError, ValueError) as exc:
                raise self._dead(worker_id, exc, "collect") from exc
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise self._dead(worker_id, exc, "collect") from exc
        self._note_collect(len(data), self._clock() - start)
        return pickle.loads(data)

    # -- supervision ----------------------------------------------------
    def is_alive(self, worker_id: int) -> "bool | None":
        if self._procs is None:
            return False
        process = self._procs[worker_id]
        return process is not None and process.is_alive()

    def kill_worker(self, worker_id: int) -> None:
        if self._procs is None:
            return
        process = self._procs[worker_id]
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5)
        # Sever the channel so in-flight ships/collects fail fast instead of
        # buffering against a corpse.
        try:
            self._conns[worker_id].close()
        except OSError:  # pragma: no cover - already closed
            pass

    def respawn(self, worker_id: int, start_method: "str | None" = None) -> None:
        if self._procs is None:
            raise ShardingError("transport is not connected; cannot respawn")
        self.kill_worker(worker_id)
        ctx = multiprocessing.get_context(start_method or self._start_method)
        process, conn = self._spawn_worker(ctx, worker_id)
        self._procs[worker_id] = process
        self._conns[worker_id] = conn
        self.respawns += 1

    def close(self) -> None:
        if self._procs is None:
            return
        stop = pickle.dumps(("stop", None), protocol=pickle.HIGHEST_PROTOCOL)
        for conn in self._conns:
            try:
                conn.send_bytes(stop)
            except (BrokenPipeError, OSError):
                pass
        for process, conn in zip(self._procs, self._conns):
            # Bounded wait for the stop ack — a wedged worker must not be
            # able to hang shutdown; _reap escalates to terminate/kill.
            try:
                if conn.poll(5):
                    conn.recv_bytes()
            except (EOFError, OSError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._reap(process)
        self._procs = None
        self._conns = None
