"""Shared-memory transport: zero-copy batch shipping through ``shm`` rings.

Commands are encoded with the :mod:`~repro.engine.transport.wire` frame
format into one ``multiprocessing.shared_memory`` segment per worker; the
control pipe carries only a tiny pickled notify ``(segment name, frame
length)``.  The worker maps the same segment and — on NumPy installs —
wraps the batch columns with ``numpy.frombuffer`` straight out of the
mapping: record timestamps and category codes cross the process boundary
without ever being pickled or copied coordinator-side.

The engine's strict request/reply protocol (one in-flight command per
worker) is what makes a single reusable segment per worker safe: the
coordinator only rewrites a segment after collecting the reply to the
previous frame, by which point the worker has fully consumed it.  Segments
grow by replacement — a too-small segment is unlinked and a doubled one
created; the worker notices the new name in the notify and re-attaches.

Replies flow back pickled over the control pipe: they are small (closed
timeunit results, state dicts at checkpoint time) and carry no record
columns.

Supervision is inherited from :class:`~repro.engine.transport.pipe.PipeTransport`
(deadline-aware collects, kill/respawn, escalating shutdown); the one
shm-specific wrinkle is that :meth:`respawn` must also reset the replaced
worker's coordinator-side :class:`~repro.engine.transport.wire.DictEncoder`,
because the fresh worker process starts with an empty decoder mirror.
Every frame carries a crc32 (see :mod:`~repro.engine.transport.wire`), so a
corrupted segment is detected worker-side and fails loudly rather than
feeding garbage into a session.
"""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory
from typing import Any

from repro.engine.shard_worker import handle_message
from repro.engine.transport.pipe import PipeTransport
from repro.engine.transport.wire import (
    DictDecoder,
    DictEncoder,
    decode_frame,
    encode_frame,
)

#: Initial per-worker segment size; grows by doubling when a frame exceeds it.
DEFAULT_SEGMENT_BYTES = 1 << 20


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a coordinator-owned segment without tracker side effects.

    ``SharedMemory(name=...)`` registers the mapping with the attaching
    process' resource tracker, which would unlink coordinator-owned
    segments (and warn) when the worker exits.  The coordinator is the
    sole owner, so registration is suppressed for the attach (the 3.13
    ``track=False`` flag, backported by monkeypatch; the tracker API is
    internal but this is the standard recipe for 3.8-3.12)."""
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _shm_worker_main(conn, worker_id: int) -> None:  # pragma: no cover - subprocess
    """Worker loop: decode frames out of the shared segment, reply by pipe."""
    units: dict[Any, Any] = {}
    attached: "tuple[str, shared_memory.SharedMemory] | None" = None
    decoder = DictDecoder()  # cumulative delta-dictionary mirror (see wire.py)
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        message = pickle.loads(data)
        if message[0] == "stop":
            try:
                conn.send_bytes(
                    pickle.dumps(("ok", None), protocol=pickle.HIGHEST_PROTOCOL)
                )
            except (BrokenPipeError, OSError):
                pass
            break
        _, segment_name, frame_len = message
        if attached is None or attached[0] != segment_name:
            if attached is not None:
                try:
                    attached[1].close()
                except BufferError:  # pragma: no cover - lingering views
                    pass
            attached = (segment_name, _attach_untracked(segment_name))
        frame = attached[1].buf[:frame_len]
        verb, ops = decode_frame(frame, decoder)
        reply = handle_message(units, verb, ops, worker_id=worker_id)
        # Decoded columns may be views into the mapping; drop them before
        # acknowledging so the coordinator is free to rewrite the segment.
        del verb, ops, frame
        try:
            conn.send_bytes(pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL))
        except (BrokenPipeError, OSError):
            break
    if attached is not None:
        try:
            attached[1].close()
        except BufferError:  # pragma: no cover - lingering views
            pass


class SharedMemoryTransport(PipeTransport):
    """Frame commands through per-worker shared-memory segments."""

    name = "shm"

    _worker_main = staticmethod(_shm_worker_main)

    def __init__(self, segment_bytes: int = DEFAULT_SEGMENT_BYTES) -> None:
        super().__init__()
        self._segment_bytes = max(int(segment_bytes), 4096)
        self._segments: "list[shared_memory.SharedMemory | None]" = []
        self._encoders: list[DictEncoder] = []

    def connect(self, num_workers: int, start_method: "str | None" = None) -> None:
        self._segments = [None] * num_workers
        self._encoders = [DictEncoder() for _ in range(num_workers)]
        super().connect(num_workers, start_method)

    def respawn(self, worker_id: int, start_method: "str | None" = None) -> None:
        super().respawn(worker_id, start_method)
        # The replacement worker starts with an empty delta-dictionary
        # mirror; restart the coordinator-side encoder in lockstep or every
        # subsequent frame would reference dictionary codes it never saw.
        self._encoders[worker_id] = DictEncoder()

    def ship(
        self, worker_id: int, verb: str, ops: Any, *, corrupt: bool = False
    ) -> None:
        start = self._clock()
        frame, serialized = encode_frame((verb, ops), self._encoders[worker_id])
        if corrupt:
            frame = self._mangle(frame)
        segment = self._segments[worker_id]
        if segment is None or segment.size < len(frame):
            wanted = max(
                len(frame),
                self._segment_bytes,
                0 if segment is None else 2 * segment.size,
            )
            if segment is not None:
                self._drop_segment(segment)
            segment = shared_memory.SharedMemory(create=True, size=wanted)
            self._segments[worker_id] = segment
        segment.buf[: len(frame)] = frame
        notify = pickle.dumps(
            ("frame", segment.name, len(frame)), protocol=pickle.HIGHEST_PROTOCOL
        )
        try:
            self._conns[worker_id].send_bytes(notify)
        except (BrokenPipeError, OSError) as exc:
            raise self._dead(worker_id, exc, "ship") from exc
        # Only the notify and the frame's skeleton pass through pickle; the
        # batch columns live in the segment as raw buffers.
        self._note_ship(
            len(frame) + len(notify), serialized + len(notify),
            self._clock() - start,
        )

    @staticmethod
    def _drop_segment(segment: shared_memory.SharedMemory) -> None:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - lingering views
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        super().close()
        for segment in self._segments:
            if segment is not None:
                self._drop_segment(segment)
        self._segments = []
