"""TCP transport: length-prefixed wire frames over sockets.

The coordinator listens on ``host:port`` (port 0 picks a free one) and
waits for ``num_workers`` workers to dial in.  Both directions carry
:mod:`~repro.engine.transport.wire` frames prefixed with a ``<Q`` length,
so batch columns cross the socket as raw little-endian buffers and only
command skeletons are pickled — same byte discipline as the shared-memory
transport, minus the shared mapping.

Two modes:

* **self-spawn** (default): :meth:`connect` forks/spawns the workers
  locally, exactly like the other transports — useful to exercise the
  framing and for single-host deployments.
* **external** (``spawn_workers=False``): the coordinator only listens;
  workers are started elsewhere (other processes, other hosts) with
  :func:`run_worker` — see ``examples/remote_workers.py``, which the CI
  smoke job runs cross-process on localhost.

Worker ids are assigned in connection-arrival order.  That order is
nondeterministic, but shard placement affects only *where* a unit runs,
never its results — the engine's merge discipline is id-independent.

Supervision: every ship and collect runs under a socket deadline, so a
dead or black-holed remote surfaces as a typed
:class:`~repro.exceptions.WorkerFailureError` instead of blocking the
coordinator forever.  :meth:`kill_worker` severs a worker's connection
(the portable "kill" for a peer that may live on another host) and
:meth:`respawn` re-accepts a replacement on the retained listener with a
capped-exponential accept loop — self-spawn mode dials the replacement
itself; external mode waits for the operator (or orchestrator) to start
one.  Frames carry a crc32, so corruption on the wire fails loudly
worker-side.
"""

from __future__ import annotations

import multiprocessing
import socket
import struct
import time
from typing import Any

from repro.engine.shard_worker import handle_message
from repro.engine.transport.base import ShardTransport
from repro.engine.transport.wire import (
    DictDecoder,
    DictEncoder,
    decode_frame,
    encode_frame,
)
from repro.exceptions import ShardingError, WorkerFailureError

_LEN = struct.Struct("<Q")


def _recv_exact(
    sock: socket.socket, nbytes: int, deadline: "float | None" = None
) -> bytes:
    """Read exactly ``nbytes``, honouring an absolute monotonic deadline.

    The deadline bounds the *whole* read, not each chunk, so a peer
    trickling bytes cannot stretch one logical receive indefinitely.
    """
    buf = bytearray(nbytes)
    view = memoryview(buf)
    got = 0
    while got < nbytes:
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise socket.timeout("shard reply deadline expired")
            sock.settimeout(remaining)
        n = sock.recv_into(view[got:], nbytes - got)
        if n == 0:
            raise EOFError("peer closed the shard connection")
        got += n
    return bytes(buf)


def send_frame(
    sock: socket.socket, obj: Any, encoder: "DictEncoder | None" = None
) -> tuple[int, int]:
    """Ship one framed object; returns (wire bytes, serialized bytes)."""
    frame, serialized = encode_frame(obj, encoder)
    sock.sendall(_LEN.pack(len(frame)) + frame)
    return _LEN.size + len(frame), _LEN.size + serialized


def recv_frame(
    sock: socket.socket,
    decoder: "DictDecoder | None" = None,
    deadline: "float | None" = None,
) -> tuple[Any, int]:
    """Receive one framed object; returns (object, wire bytes)."""
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size, deadline))
    data = _recv_exact(sock, length, deadline)
    return decode_frame(data, decoder), _LEN.size + length


def serve_connection(sock: socket.socket, worker_id: "int | None" = None) -> None:
    """Serve one coordinator connection until a stop verb or disconnect."""
    units: dict[Any, Any] = {}
    decoder = DictDecoder()  # cumulative delta-dictionary mirror (see wire.py)
    while True:
        try:
            (verb, ops), _ = recv_frame(sock, decoder)
        except (EOFError, ConnectionError, OSError):
            return
        if verb == "stop":
            try:
                send_frame(sock, ("ok", None))
            except OSError:
                pass
            return
        reply = handle_message(units, verb, ops, worker_id=worker_id)
        try:
            send_frame(sock, reply)
        except OSError:
            return


def run_worker(
    host: str,
    port: int,
    *,
    retries: int = 40,
    retry_delay: float = 0.25,
    worker_id: "int | None" = None,
) -> None:
    """Dial a sharded-engine coordinator and serve until stopped.

    This is the remote-worker entry point (``examples/remote_workers.py``
    wraps it in a CLI): run it once per worker, pointing at the
    coordinator's listen address, *before* the coordinator engine first
    ingests.  Connection attempts retry briefly so worker and coordinator
    processes can start in any order.  ``worker_id`` is advisory (external
    workers are identified by arrival order, not by this value); it scopes
    worker-side fault injection in the chaos suite.
    """
    last_error: "OSError | None" = None
    for _ in range(max(1, retries)):
        try:
            sock = socket.create_connection((host, port))
            break
        except OSError as exc:
            last_error = exc
            time.sleep(retry_delay)
    else:
        raise ShardingError(
            f"could not reach shard coordinator at {host}:{port}: {last_error!r}"
        )
    with sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        serve_connection(sock, worker_id)


def _tcp_worker_main(
    host: str, port: int, worker_id: "int | None" = None
) -> None:  # pragma: no cover - subprocess
    run_worker(host, port, worker_id=worker_id)


class TcpTransport(ShardTransport):
    """Length-prefixed wire frames over localhost (or LAN) sockets."""

    name = "tcp"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: bool = True,
        accept_timeout: float = 60.0,
        op_timeout: float = 60.0,
    ) -> None:
        super().__init__()
        self.host = host
        self.port = int(port)  # 0 until connect() binds
        self.spawn_workers = bool(spawn_workers)
        self.accept_timeout = float(accept_timeout)
        #: Deadline for each outbound send; collects take theirs per call.
        self.op_timeout = float(op_timeout)
        self._listener: "socket.socket | None" = None
        self._socks: "list[socket.socket] | None" = None
        self._procs: list[Any] = []
        self._encoders: list[DictEncoder] = []

    def listen(self) -> int:
        """Bind the coordinator socket; returns the bound port.

        Called implicitly by :meth:`connect`; external deployments call it
        first to learn the port their workers must dial.
        """
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            self.port = listener.getsockname()[1]
            self._listener = listener
        return self.port

    def _spawn_worker_proc(self, worker_id: int, start_method: "str | None") -> None:
        ctx = multiprocessing.get_context(start_method)
        process = ctx.Process(
            target=_tcp_worker_main,
            args=(self.host, self.port, worker_id),
            name=f"repro-shard-tcp-{worker_id}",
            daemon=True,
        )
        process.start()
        self._procs.append(process)

    def connect(self, num_workers: int, start_method: "str | None" = None) -> None:
        self.listen()
        # Backlog covers initial connects plus any future respawn dials.
        self._listener.listen(max(num_workers, 8))
        if self.spawn_workers:
            for worker_id in range(num_workers):
                self._spawn_worker_proc(worker_id, start_method)
        self._listener.settimeout(self.accept_timeout)
        self._socks = []
        self._encoders = [DictEncoder() for _ in range(num_workers)]
        try:
            for _ in range(num_workers):
                sock, _addr = self._listener.accept()
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._socks.append(sock)
        except socket.timeout as exc:
            raise ShardingError(
                f"only {len(self._socks)} of {num_workers} shard workers "
                f"connected to {self.host}:{self.port} within "
                f"{self.accept_timeout:.0f}s"
            ) from exc

    def ship(
        self, worker_id: int, verb: str, ops: Any, *, corrupt: bool = False
    ) -> None:
        start = self._clock()
        sock = self._socks[worker_id]
        try:
            sock.settimeout(self.op_timeout)
            frame, serialized = encode_frame((verb, ops), self._encoders[worker_id])
            if corrupt:
                frame = self._mangle(frame)
            sock.sendall(_LEN.pack(len(frame)) + frame)
            sock.settimeout(None)
        except socket.timeout as exc:
            raise WorkerFailureError(
                worker_id,
                "ship",
                f"send stalled past the {self.op_timeout:.3f}s deadline",
            ) from exc
        except OSError as exc:
            raise self._dead(worker_id, exc, "ship") from exc
        self._note_ship(
            _LEN.size + len(frame), _LEN.size + serialized, self._clock() - start
        )

    def collect(self, worker_id: int, timeout: "float | None" = None) -> tuple:
        start = self._clock()
        sock = self._socks[worker_id]
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            if deadline is None:
                sock.settimeout(None)
            reply, nbytes = recv_frame(sock, deadline=deadline)
        except socket.timeout as exc:
            raise WorkerFailureError(
                worker_id,
                "collect",
                f"no reply within the {timeout:.3f}s deadline",
            ) from exc
        except (EOFError, ConnectionError, OSError) as exc:
            raise self._dead(worker_id, exc, "collect") from exc
        finally:
            try:
                sock.settimeout(None)
            except OSError:  # pragma: no cover - socket already dead
                pass
        self._note_collect(nbytes, self._clock() - start)
        return reply

    # -- supervision ----------------------------------------------------
    def kill_worker(self, worker_id: int) -> None:
        """Sever the worker's connection (idempotent).

        For a peer that may live on another host, closing the socket *is*
        the kill: the worker's serve loop sees EOF and exits.  Self-spawned
        worker processes terminate themselves the same way.
        """
        if self._socks is None:
            return
        sock = self._socks[worker_id]
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def respawn(self, worker_id: int, start_method: "str | None" = None) -> None:
        if self._socks is None or self._listener is None:
            raise ShardingError("transport is not connected; cannot respawn")
        self.kill_worker(worker_id)
        if self.spawn_workers:
            self._spawn_worker_proc(worker_id, start_method)
        # Accept the replacement with capped-exponential waits so external
        # deployments get time to start one, without ever blocking past
        # accept_timeout in total.
        deadline = time.monotonic() + self.accept_timeout
        wait = 0.1
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerFailureError(
                    worker_id,
                    "respawn",
                    f"no replacement worker dialed in within "
                    f"{self.accept_timeout:.0f}s",
                )
            self._listener.settimeout(min(wait, remaining))
            try:
                sock, _addr = self._listener.accept()
                break
            except socket.timeout:
                wait = min(wait * 2, 2.0)
            except OSError as exc:
                raise WorkerFailureError(
                    worker_id, "respawn", f"listener failed ({exc!r})"
                ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._socks[worker_id] = sock
        # The replacement's decoder starts empty; restart its encoder too.
        self._encoders[worker_id] = DictEncoder()
        self.respawns += 1

    def close(self) -> None:
        if self._socks is not None:
            for sock in self._socks:
                try:
                    sock.settimeout(5.0)
                    send_frame(sock, ("stop", None))
                    recv_frame(sock)
                except (EOFError, ConnectionError, OSError):
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
            self._socks = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        for process in self._procs:
            self._reap(process)
        self._procs = []
