"""TCP transport: length-prefixed wire frames over sockets.

The coordinator listens on ``host:port`` (port 0 picks a free one) and
waits for ``num_workers`` workers to dial in.  Both directions carry
:mod:`~repro.engine.transport.wire` frames prefixed with a ``<Q`` length,
so batch columns cross the socket as raw little-endian buffers and only
command skeletons are pickled — same byte discipline as the shared-memory
transport, minus the shared mapping.

Two modes:

* **self-spawn** (default): :meth:`connect` forks/spawns the workers
  locally, exactly like the other transports — useful to exercise the
  framing and for single-host deployments.
* **external** (``spawn_workers=False``): the coordinator only listens;
  workers are started elsewhere (other processes, other hosts) with
  :func:`run_worker` — see ``examples/remote_workers.py``, which the CI
  smoke job runs cross-process on localhost.

Worker ids are assigned in connection-arrival order.  That order is
nondeterministic, but shard placement affects only *where* a unit runs,
never its results — the engine's merge discipline is id-independent.
"""

from __future__ import annotations

import multiprocessing
import socket
import struct
import time
from typing import Any

from repro.engine.shard_worker import handle_message
from repro.engine.transport.base import ShardTransport
from repro.engine.transport.wire import (
    DictDecoder,
    DictEncoder,
    decode_frame,
    encode_frame,
)
from repro.exceptions import ShardingError

_LEN = struct.Struct("<Q")


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    buf = bytearray(nbytes)
    view = memoryview(buf)
    got = 0
    while got < nbytes:
        n = sock.recv_into(view[got:], nbytes - got)
        if n == 0:
            raise EOFError("peer closed the shard connection")
        got += n
    return bytes(buf)


def send_frame(
    sock: socket.socket, obj: Any, encoder: "DictEncoder | None" = None
) -> tuple[int, int]:
    """Ship one framed object; returns (wire bytes, serialized bytes)."""
    frame, serialized = encode_frame(obj, encoder)
    sock.sendall(_LEN.pack(len(frame)) + frame)
    return _LEN.size + len(frame), _LEN.size + serialized


def recv_frame(
    sock: socket.socket, decoder: "DictDecoder | None" = None
) -> tuple[Any, int]:
    """Receive one framed object; returns (object, wire bytes)."""
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    data = _recv_exact(sock, length)
    return decode_frame(data, decoder), _LEN.size + length


def serve_connection(sock: socket.socket) -> None:
    """Serve one coordinator connection until a stop verb or disconnect."""
    units: dict[Any, Any] = {}
    decoder = DictDecoder()  # cumulative delta-dictionary mirror (see wire.py)
    while True:
        try:
            (verb, ops), _ = recv_frame(sock, decoder)
        except (EOFError, ConnectionError, OSError):
            return
        if verb == "stop":
            try:
                send_frame(sock, ("ok", None))
            except OSError:
                pass
            return
        reply = handle_message(units, verb, ops)
        try:
            send_frame(sock, reply)
        except OSError:
            return


def run_worker(
    host: str, port: int, *, retries: int = 40, retry_delay: float = 0.25
) -> None:
    """Dial a sharded-engine coordinator and serve until stopped.

    This is the remote-worker entry point (``examples/remote_workers.py``
    wraps it in a CLI): run it once per worker, pointing at the
    coordinator's listen address, *before* the coordinator engine first
    ingests.  Connection attempts retry briefly so worker and coordinator
    processes can start in any order.
    """
    last_error: "OSError | None" = None
    for _ in range(max(1, retries)):
        try:
            sock = socket.create_connection((host, port))
            break
        except OSError as exc:
            last_error = exc
            time.sleep(retry_delay)
    else:
        raise ShardingError(
            f"could not reach shard coordinator at {host}:{port}: {last_error!r}"
        )
    with sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        serve_connection(sock)


def _tcp_worker_main(host: str, port: int) -> None:  # pragma: no cover - subprocess
    run_worker(host, port)


class TcpTransport(ShardTransport):
    """Length-prefixed wire frames over localhost (or LAN) sockets."""

    name = "tcp"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: bool = True,
        accept_timeout: float = 60.0,
    ) -> None:
        super().__init__()
        self.host = host
        self.port = int(port)  # 0 until connect() binds
        self.spawn_workers = bool(spawn_workers)
        self.accept_timeout = float(accept_timeout)
        self._listener: "socket.socket | None" = None
        self._socks: "list[socket.socket] | None" = None
        self._procs: list[Any] = []
        self._encoders: list[DictEncoder] = []

    def listen(self) -> int:
        """Bind the coordinator socket; returns the bound port.

        Called implicitly by :meth:`connect`; external deployments call it
        first to learn the port their workers must dial.
        """
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            self.port = listener.getsockname()[1]
            self._listener = listener
        return self.port

    def connect(self, num_workers: int, start_method: "str | None" = None) -> None:
        self.listen()
        self._listener.listen(num_workers)
        if self.spawn_workers:
            ctx = multiprocessing.get_context(start_method)
            for worker_id in range(num_workers):
                process = ctx.Process(
                    target=_tcp_worker_main,
                    args=(self.host, self.port),
                    name=f"repro-shard-tcp-{worker_id}",
                    daemon=True,
                )
                process.start()
                self._procs.append(process)
        self._listener.settimeout(self.accept_timeout)
        self._socks = []
        self._encoders = [DictEncoder() for _ in range(num_workers)]
        try:
            for _ in range(num_workers):
                sock, _addr = self._listener.accept()
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._socks.append(sock)
        except socket.timeout as exc:
            raise ShardingError(
                f"only {len(self._socks)} of {num_workers} shard workers "
                f"connected to {self.host}:{self.port} within "
                f"{self.accept_timeout:.0f}s"
            ) from exc

    def ship(self, worker_id: int, verb: str, ops: Any) -> None:
        start = self._clock()
        try:
            nbytes, serialized = send_frame(
                self._socks[worker_id], (verb, ops), self._encoders[worker_id]
            )
        except OSError as exc:
            raise self._dead(worker_id, exc) from exc
        self._note_ship(nbytes, serialized, self._clock() - start)

    def collect(self, worker_id: int) -> tuple:
        start = self._clock()
        try:
            reply, nbytes = recv_frame(self._socks[worker_id])
        except (EOFError, ConnectionError, OSError) as exc:
            raise self._dead(worker_id, exc) from exc
        self._note_collect(nbytes, self._clock() - start)
        return reply

    def close(self) -> None:
        if self._socks is not None:
            for sock in self._socks:
                try:
                    send_frame(sock, ("stop", None))
                    sock.settimeout(5.0)
                    recv_frame(sock)
                except (EOFError, ConnectionError, OSError):
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
            self._socks = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        for process in self._procs:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
        self._procs = []
