"""Zero-copy wire format for shard commands carrying record batches.

A shard command is an arbitrary picklable structure (tuples, lists, dicts,
scalars) with :class:`~repro.streaming.batch.RecordBatch` objects embedded
wherever the engine routed record columns.  Pickling batches is wasteful —
pickle walks every float — so :func:`encode_frame` separates the two:

* the **skeleton**: the command structure with every batch replaced by a
  picklable :class:`_BatchRef` placeholder (carrying the category
  dictionary, attribute rows and column indices), serialized with pickle;
* the **columns**: each batch's timestamps (``<f8``) and dictionary codes
  (``<i4``) as raw little-endian buffers, 8-byte aligned so the receiver
  can wrap them with ``numpy.frombuffer`` without copying.

Uncoded batches are dictionary-encoded here in first-appearance order, so
the decoded batch is a coded batch over the same records — the sessions
downstream decode categories identically either way.

Delta dictionaries
------------------
Category paths repeat from ship to ship, so per-frame dictionaries would
dominate the skeleton once columns stop being pickled.  A transport that
holds one :class:`DictEncoder` per worker channel (shm and tcp do) ships
*cumulative* dictionaries instead: the encoder assigns every path a stable
code for the lifetime of the channel, each frame carries only the paths
the worker has not seen yet (``("delta", base, new_paths)``), and the
worker extends its :class:`DictDecoder` mirror on decode.  After the
category set saturates — a few frames into any steady workload —
dictionaries cost zero serialized bytes.  ``base`` is a desync guard: it
must equal the worker's current dictionary length or the frame is
rejected.

The decoder grows *copy-on-write*: applying a non-empty delta builds a new
list object rather than extending in place, because decoded batches hand
their dictionary to identity-keyed caches downstream (e.g. the session's
dense code→node map) — a dictionary object must never change size after a
batch has seen it.  In the steady state every batch shares one saturated
list, so those caches hit every time.

Frame layout (all integers little-endian)::

    b"RSF2" | <I crc32> | <I skeleton_len> | <I ncols> | ncols * <Q col_len>
    | skeleton | [pad to 8] col_0 | [pad to 8] col_1 | ...

``crc32`` (:func:`zlib.crc32`) covers every byte after the checksum field.
Frames are coordinator<->worker internal — shared memory mappings and
sockets — so the check exists to *fail loudly*: a corrupted frame (bit
rot, a torn segment, an injected ``corrupt_frame`` fault) raises
:class:`~repro.exceptions.ShardingError` at decode instead of feeding
garbage records into detection, and the supervised engine treats the
resulting worker death as a recoverable fault.

The shared-memory transport writes frames into a
``multiprocessing.shared_memory`` segment (the worker decodes straight out
of the mapping); the TCP transport length-prefixes them onto the socket.
:func:`encode_frame` also reports how many bytes actually passed through
pickle, which is the number the ``--check-shard-overhead`` benchmark gate
compares against the pickle-everything pipe transport.
"""

from __future__ import annotations

import pickle
import struct
import sys
import zlib
from array import array
from typing import Any

from repro.exceptions import ShardingError
from repro.streaming.batch import RecordBatch

try:  # pragma: no cover - exercised implicitly by the whole suite
    import numpy as _np
except ImportError:  # pragma: no cover - minimal installs
    _np = None

_MAGIC = b"RSF2"
_CRC = struct.Struct("<I")
_HEADER = struct.Struct("<II")
_COL_LEN = struct.Struct("<Q")

if array("i").itemsize == 4:
    _CODE_TYPECODE = "i"
elif array("l").itemsize == 4:  # pragma: no cover - platform-dependent
    _CODE_TYPECODE = "l"
else:  # pragma: no cover - no 4-byte int array type
    _CODE_TYPECODE = None


class _BatchRef:
    """Picklable stand-in for a :class:`RecordBatch` inside a skeleton.

    ``dictionary`` is either a plain list of category paths (stateless
    encode) or a ``("delta", base, new_paths)`` triple referencing the
    receiving channel's cumulative dictionary (see module docstring).
    """

    __slots__ = ("index", "length", "dictionary", "attributes")

    def __init__(self, index, length, dictionary, attributes):
        self.index = index
        self.length = length
        self.dictionary = dictionary
        self.attributes = attributes


class DictEncoder:
    """Coordinator-side cumulative category dictionary for one channel.

    Mirrors, path for path, the list the worker builds from the deltas it
    receives — both sides walk frames in the same order, so the code
    assignments agree by construction.  One encoder per worker channel;
    never share an encoder across channels.
    """

    __slots__ = ("lookup", "_translations")

    def __init__(self) -> None:
        self.lookup: dict = {}
        # id(code_dictionary) -> (dictionary, translation) — the strong
        # reference keeps the id stable; translations saturate to the
        # distinct dictionary objects flowing through (columnar readers
        # reuse one per file).
        self._translations: dict = {}

    def __len__(self) -> int:
        return len(self.lookup)

    def code_paths(self, paths, delta: list) -> list:
        """Cumulative codes for ``paths``; unseen paths are appended to
        ``delta`` (and to the cumulative dictionary) in first-appearance
        order."""
        lookup = self.lookup
        codes = []
        for path in paths:
            code = lookup.get(path)
            if code is None:
                code = lookup[path] = len(lookup)
                delta.append(path)
            codes.append(code)
        return codes

    def translation_for(self, dictionary, delta: list):
        """Per-batch-dictionary code translation table, computed once per
        distinct dictionary object."""
        key = id(dictionary)
        cached = self._translations.get(key)
        if cached is not None and cached[0] is dictionary:
            return cached[1]
        translation = self.code_paths([tuple(path) for path in dictionary], delta)
        if _np is not None:
            translation = _np.asarray(translation, dtype="<i4")
        self._translations[key] = (dictionary, translation)
        return translation


class DictDecoder:
    """Receiver-side cumulative dictionary mirror for one channel.

    ``entries`` is the current dictionary list.  :meth:`apply` swaps in a
    *new* list object whenever a delta is non-empty (copy-on-write — see
    module docstring); previously decoded batches keep the object they were
    given, whose codes are all within its length by construction.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: list = []

    def apply(self, base: int, delta) -> list:
        if len(self.entries) != base:
            raise ShardingError(
                f"shard dictionary desync: channel holds {len(self.entries)} "
                f"entries but the frame expects {base}"
            )
        if delta:
            self.entries = self.entries + [tuple(path) for path in delta]
        return self.entries


def _le_f8(values: Any) -> bytes:
    if _np is not None:
        return _np.ascontiguousarray(values, dtype="<f8").tobytes()
    arr = (
        values
        if isinstance(values, array) and values.typecode == "d"
        else array("d", values)
    )
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts
        arr = array("d", arr)
        arr.byteswap()
    return arr.tobytes()


def _le_i4(values: Any) -> bytes:
    if _np is not None:
        return _np.ascontiguousarray(values, dtype="<i4").tobytes()
    if _CODE_TYPECODE is None:  # pragma: no cover - no 4-byte int array type
        raise ShardingError("no 4-byte integer array type on this platform")
    arr = array(_CODE_TYPECODE, values)
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts
        arr.byteswap()
    return arr.tobytes()


def _encode_batch(
    batch: RecordBatch, columns: list, encoder: "DictEncoder | None"
) -> _BatchRef:
    codes = batch.category_codes
    if encoder is None:
        if codes is None:
            # Dictionary-encode in first-appearance order (deterministic).
            dictionary: Any = []
            lookup: dict = {}
            codes = []
            for category in batch.categories:
                code = lookup.get(category)
                if code is None:
                    code = lookup[category] = len(dictionary)
                    dictionary.append(category)
                codes.append(code)
        else:
            dictionary = list(batch.code_dictionary)
    else:
        delta: list = []
        base = len(encoder)
        if codes is None:
            codes = encoder.code_paths(batch.categories, delta)
        else:
            translation = encoder.translation_for(batch.code_dictionary, delta)
            if _np is not None:
                codes = translation[_np.asarray(codes)]
            else:
                codes = [translation[int(code)] for code in codes]
        dictionary = ("delta", base, delta)
    attributes = batch.attributes
    if attributes is not None:
        attributes = list(attributes)
        if not any(attributes):
            # All rows empty: the None column means exactly that (see
            # RecordBatch), so don't pickle thousands of empty dicts.
            attributes = None
    ref = _BatchRef(
        len(columns) // 2,
        len(batch),
        dictionary,
        attributes,
    )
    columns.append(_le_f8(batch.timestamps))
    columns.append(_le_i4(codes))
    return ref


def _strip(obj: Any, columns: list, encoder: "DictEncoder | None") -> Any:
    if isinstance(obj, RecordBatch):
        return _encode_batch(obj, columns, encoder)
    if isinstance(obj, tuple):
        return tuple(_strip(item, columns, encoder) for item in obj)
    if isinstance(obj, list):
        return [_strip(item, columns, encoder) for item in obj]
    if isinstance(obj, dict):
        return {key: _strip(value, columns, encoder) for key, value in obj.items()}
    return obj


def _restore(obj: Any, columns: list, decoder: "DictDecoder | None") -> Any:
    if isinstance(obj, _BatchRef):
        ts_buf = columns[2 * obj.index]
        code_buf = columns[2 * obj.index + 1]
        if _np is not None:
            timestamps = _np.frombuffer(ts_buf, dtype="<f8")
            codes = _np.frombuffer(code_buf, dtype="<i4")
        else:
            timestamps = array("d")
            timestamps.frombytes(ts_buf)
            codes = array(_CODE_TYPECODE)
            codes.frombytes(code_buf)
            if sys.byteorder == "big":  # pragma: no cover - big-endian hosts
                timestamps.byteswap()
                codes.byteswap()
        dictionary = obj.dictionary
        if isinstance(dictionary, tuple):
            _, base, delta = dictionary
            if decoder is None:
                raise ShardingError(
                    "delta-coded shard frame decoded without a channel "
                    "dictionary — pass decode_frame a per-connection "
                    "DictDecoder"
                )
            dictionary = decoder.apply(base, delta)
        else:
            dictionary = [tuple(path) for path in dictionary]
        return RecordBatch.from_dictionary_codes(
            timestamps,
            codes,
            dictionary,
            attributes=obj.attributes,
        )
    if isinstance(obj, tuple):
        return tuple(_restore(item, columns, decoder) for item in obj)
    if isinstance(obj, list):
        return [_restore(item, columns, decoder) for item in obj]
    if isinstance(obj, dict):
        return {
            key: _restore(value, columns, decoder) for key, value in obj.items()
        }
    return obj


def encode_frame(
    obj: Any, encoder: "DictEncoder | None" = None
) -> tuple[bytes, int]:
    """Encode ``obj`` into one frame.

    Returns ``(frame_bytes, serialized_bytes)`` where ``serialized_bytes``
    counts only what went through pickle (the skeleton); batch columns ride
    along as raw buffers.  With an ``encoder`` (one per worker channel),
    batch dictionaries are shipped as cumulative deltas — the receiver must
    then decode with the matching per-connection dictionary list.
    """
    columns: list[bytes] = []
    skeleton = pickle.dumps(
        _strip(obj, columns, encoder), protocol=pickle.HIGHEST_PROTOCOL
    )
    # Everything after the checksum field; the crc is computed over these
    # parts incrementally, so the frame is still joined exactly once.
    parts = [
        _HEADER.pack(len(skeleton), len(columns)),
        b"".join(_COL_LEN.pack(len(col)) for col in columns),
        skeleton,
    ]
    offset = len(_MAGIC) + _CRC.size + sum(len(part) for part in parts)
    for col in columns:
        pad = (-offset) % 8
        if pad:
            parts.append(b"\x00" * pad)
            offset += pad
        parts.append(col)
        offset += len(col)
    crc = 0
    for part in parts:
        crc = zlib.crc32(part, crc)
    return b"".join([_MAGIC, _CRC.pack(crc)] + parts), len(skeleton)


def decode_frame(buf: Any, decoder: "DictDecoder | None" = None) -> Any:
    """Decode a frame produced by :func:`encode_frame`.

    ``buf`` may be ``bytes`` or a ``memoryview`` (e.g. a slice of a
    shared-memory mapping); on NumPy installs the decoded batch columns are
    views into ``buf`` — the caller must keep the backing buffer alive
    until the decoded command has been fully consumed.

    ``decoder`` is the connection's cumulative :class:`DictDecoder` for
    delta-coded frames; it must be the same object for every frame of the
    connection.
    """
    view = memoryview(buf)
    if bytes(view[: len(_MAGIC)]) != _MAGIC:
        raise ShardingError("corrupt shard frame: bad magic")
    (expected_crc,) = _CRC.unpack_from(view, len(_MAGIC))
    body = view[len(_MAGIC) + _CRC.size :]
    actual_crc = zlib.crc32(body)
    if actual_crc != expected_crc:
        raise ShardingError(
            f"corrupt shard frame: checksum mismatch (expected "
            f"{expected_crc:#010x}, got {actual_crc:#010x})"
        )
    skeleton_len, ncols = _HEADER.unpack_from(view, len(_MAGIC) + _CRC.size)
    offset = len(_MAGIC) + _CRC.size + _HEADER.size
    col_lens = [
        _COL_LEN.unpack_from(view, offset + i * _COL_LEN.size)[0]
        for i in range(ncols)
    ]
    offset += ncols * _COL_LEN.size
    skeleton = pickle.loads(view[offset : offset + skeleton_len])
    offset += skeleton_len
    columns: list = []
    for length in col_lens:
        offset += (-offset) % 8
        columns.append(view[offset : offset + length])
        offset += length
    return _restore(skeleton, columns, decoder)
