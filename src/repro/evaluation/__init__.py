"""Evaluation harness: metrics, ADA-vs-STA comparison, CCDF characterization
and runtime/memory instrumentation used to regenerate the paper's tables and
figures.
"""

from repro.evaluation.ccdf import LevelCCDF, all_level_ccdfs, level_ccdf, per_level_counts
from repro.evaluation.comparison import (
    AlgorithmComparator,
    ComparisonReport,
    SeriesErrorStats,
)
from repro.evaluation.instrumentation import (
    STAGE_ORDER,
    MemorySummary,
    RuntimeSummary,
    StageTimer,
    format_memory_table,
    format_runtime_table,
    summarize_runtime,
)
from repro.evaluation.metrics import (
    Case,
    ConfusionMetrics,
    ReferenceComparison,
    compare_with_reference,
    confusion_from_sets,
    detection_rate,
    match_against_ground_truth,
    mean_relative_series_error,
    series_absolute_errors,
)

__all__ = [
    "ConfusionMetrics",
    "confusion_from_sets",
    "ReferenceComparison",
    "compare_with_reference",
    "match_against_ground_truth",
    "detection_rate",
    "series_absolute_errors",
    "mean_relative_series_error",
    "Case",
    "AlgorithmComparator",
    "ComparisonReport",
    "SeriesErrorStats",
    "LevelCCDF",
    "level_ccdf",
    "all_level_ccdfs",
    "per_level_counts",
    "StageTimer",
    "RuntimeSummary",
    "MemorySummary",
    "STAGE_ORDER",
    "summarize_runtime",
    "format_runtime_table",
    "format_memory_table",
]
