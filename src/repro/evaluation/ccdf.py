"""CCDF utilities for the sparsity characterization (Fig. 1).

The paper plots, per hierarchy level, the complementary cumulative
distribution function of the normalized per-(node, timeunit) count of
appearances.  These helpers compute the same distributions from a record
batch so the Fig. 1 benchmark can print comparable curves, and expose the
"fraction of empty (node, timeunit) cells" sparsity statistic quoted in
§II-B (≈93 % empty CO-level cells for CCD).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro._types import CategoryPath
from repro.hierarchy.tree import HierarchyTree
from repro.streaming.clock import SimulationClock
from repro.streaming.record import OperationalRecord


@dataclass(frozen=True)
class LevelCCDF:
    """CCDF of normalized per-(node, timeunit) counts for one hierarchy level."""

    depth: int
    points: tuple[tuple[float, float], ...]
    """Sorted (normalized count, CCDF) pairs."""
    empty_fraction: float
    """Fraction of (node, timeunit) cells with zero count."""

    def ccdf_at(self, normalized_count: float) -> float:
        """Fraction of cells with normalized count >= ``normalized_count``."""
        value = 0.0
        for x, y in self.points:
            if x >= normalized_count:
                return y
            value = y
        return 0.0 if self.points else value


def per_level_counts(
    tree: HierarchyTree,
    records: Sequence[OperationalRecord],
    clock: SimulationClock,
    num_units: int,
) -> dict[int, dict[tuple[CategoryPath, int], int]]:
    """Per-(node, timeunit) aggregated counts, grouped by hierarchy depth."""
    counts: dict[int, dict[tuple[CategoryPath, int], int]] = {}
    for record in records:
        unit = clock.timeunit_of(record.timestamp)
        if not 0 <= unit < num_units:
            continue
        if record.category not in tree:
            continue
        node = tree.node(record.category)
        while node is not None:
            level = counts.setdefault(node.depth, {})
            key = (node.path, unit)
            level[key] = level.get(key, 0) + 1
            node = node.parent
    return counts


def level_ccdf(
    tree: HierarchyTree,
    records: Sequence[OperationalRecord],
    clock: SimulationClock,
    num_units: int,
    depth: int,
) -> LevelCCDF:
    """The Fig. 1 curve for one hierarchy depth.

    Counts are normalized by the maximum per-cell count observed across the
    whole hierarchy and trace (the paper normalizes per dataset), and the
    CCDF is taken over all (node, timeunit) cells of the level, including
    empty ones.
    """
    all_counts = per_level_counts(tree, records, clock, num_units)
    global_max = max(
        (count for level in all_counts.values() for count in level.values()),
        default=1,
    )
    level = all_counts.get(depth, {})
    nodes = tree.nodes_at_depth(depth)
    total_cells = max(len(nodes) * num_units, 1)
    non_empty = Counter(level.values())
    empty_cells = total_cells - sum(non_empty.values())

    points: list[tuple[float, float]] = []
    # CCDF over the distinct observed counts, largest first.
    distinct = sorted(non_empty, reverse=True)
    cumulative = 0
    for count in distinct:
        cumulative += non_empty[count]
        points.append((count / global_max, cumulative / total_cells))
    points.reverse()
    return LevelCCDF(
        depth=depth,
        points=tuple(points),
        empty_fraction=empty_cells / total_cells,
    )


def all_level_ccdfs(
    tree: HierarchyTree,
    records: Sequence[OperationalRecord],
    clock: SimulationClock,
    num_units: int,
) -> dict[int, LevelCCDF]:
    """Fig. 1 curves for every level of the hierarchy (depth 0 = root)."""
    return {
        depth: level_ccdf(tree, records, clock, num_units, depth)
        for depth in range(tree.depth)
    }
