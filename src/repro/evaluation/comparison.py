"""Side-by-side evaluation of ADA against the STA ground truth (§VII-A).

The paper quantifies ADA's approximation error in two ways:

* **time series accuracy** (Fig. 12): per-timeunit absolute error between
  ADA's adapted series and the exact series STA reconstructs, broken down by
  timeunit age and node depth; and
* **anomaly detection accuracy** (Table V): accuracy / precision / recall of
  ADA's per-(node, timeunit) anomaly decisions against STA's.

:class:`AlgorithmComparator` drives both algorithms over the same per-timeunit
counts and accumulates those statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro._types import CategoryPath, Weight
from repro.core.ada import ADAAlgorithm
from repro.core.config import TiresiasConfig
from repro.core.results import TimeunitResult
from repro.core.sta import STAAlgorithm
from repro.evaluation.metrics import Case, ConfusionMetrics, confusion_from_sets
from repro.hierarchy.tree import HierarchyTree


@dataclass
class SeriesErrorStats:
    """Accumulates absolute series errors bucketed by timeunit age and depth."""

    by_age: dict[int, list[float]] = field(default_factory=dict)
    by_depth: dict[int, list[float]] = field(default_factory=dict)

    def record(self, age: int, depth: int, error: float, scale: float) -> None:
        relative = error / max(scale, 1.0)
        self.by_age.setdefault(age, []).append(relative)
        self.by_depth.setdefault(depth, []).append(relative)

    @staticmethod
    def _mean(values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def mean_by_age(self) -> dict[int, float]:
        """Mean relative absolute error per timeunit age (0 = newest)."""
        return {age: self._mean(values) for age, values in sorted(self.by_age.items())}

    def mean_by_depth(self) -> dict[int, float]:
        """Mean relative absolute error per hierarchy depth."""
        return {
            depth: self._mean(values) for depth, values in sorted(self.by_depth.items())
        }

    def overall_mean(self) -> float:
        values = [v for bucket in self.by_age.values() for v in bucket]
        return self._mean(values)


@dataclass(frozen=True)
class ComparisonReport:
    """Outcome of running ADA and STA side by side on the same trace."""

    detection: ConfusionMetrics
    series_errors: SeriesErrorStats
    heavy_hitter_mismatches: int
    timeunits: int
    ada_stage_seconds: dict[str, float]
    sta_stage_seconds: dict[str, float]
    ada_memory_units: int
    sta_memory_units: int

    @property
    def heavy_hitter_agreement(self) -> float:
        """Fraction of timeunits where ADA and STA found the same SHHH set."""
        if self.timeunits == 0:
            return 1.0
        return 1.0 - self.heavy_hitter_mismatches / self.timeunits

    @property
    def speedup(self) -> float:
        """STA-to-ADA ratio of total algorithm time (excluding trace reading)."""
        ada_total = sum(self.ada_stage_seconds.values())
        sta_total = sum(self.sta_stage_seconds.values())
        if ada_total <= 0:
            return float("inf")
        return sta_total / ada_total

    @property
    def memory_ratio(self) -> float:
        """ADA-to-STA memory cost ratio (the paper reports ≈ 0.36-0.43)."""
        if self.sta_memory_units <= 0:
            return float("inf")
        return self.ada_memory_units / self.sta_memory_units


class AlgorithmComparator:
    """Runs ADA and STA on identical input and scores ADA against STA."""

    def __init__(
        self,
        tree: HierarchyTree,
        config: TiresiasConfig,
        series_error_samples: int = 8,
        warmup_units: int = 0,
    ):
        self.tree = tree
        self.config = config
        self.ada = ADAAlgorithm(tree, config)
        self.sta = STAAlgorithm(tree, config)
        self.series_error_samples = series_error_samples
        self.warmup_units = warmup_units
        self._errors = SeriesErrorStats()
        self._ada_detections: set[Case] = set()
        self._sta_detections: set[Case] = set()
        self._universe: set[Case] = set()
        self._mismatches = 0
        self._units = 0

    # ------------------------------------------------------------------
    def process_timeunit(
        self, counts: Mapping[CategoryPath, Weight]
    ) -> tuple[TimeunitResult, TimeunitResult]:
        """Feed one timeunit to both algorithms and accumulate statistics."""
        ada_result = self.ada.process_timeunit(counts)
        sta_result = self.sta.process_timeunit(counts)
        self._units += 1

        if ada_result.heavy_hitters != sta_result.heavy_hitters:
            self._mismatches += 1

        if self._units > self.warmup_units:
            unit = ada_result.timeunit
            for anomaly in ada_result.anomalies:
                self._ada_detections.add((anomaly.node_path, unit))
            for anomaly in sta_result.anomalies:
                self._sta_detections.add((anomaly.node_path, unit))
            for path in sta_result.heavy_hitters:
                self._universe.add((path, unit))
            self._accumulate_series_errors(sta_result.heavy_hitters)
        return ada_result, sta_result

    def process_many(
        self, units: Iterable[Mapping[CategoryPath, Weight]]
    ) -> list[tuple[TimeunitResult, TimeunitResult]]:
        return [self.process_timeunit(counts) for counts in units]

    # ------------------------------------------------------------------
    def _accumulate_series_errors(self, heavy: frozenset[CategoryPath]) -> None:
        """Compare the newest portion of ADA's series with STA's reconstruction."""
        for path in heavy:
            exact = self.sta.series_for(path)
            approx = self.ada.series_for(path)
            if not exact or not approx:
                continue
            depth = len(path)
            scale = max(abs(v) for v in exact[-self.series_error_samples:]) or 1.0
            limit = min(self.series_error_samples, len(exact), len(approx))
            for age in range(limit):
                error = abs(approx[-(age + 1)] - exact[-(age + 1)])
                self._errors.record(age, depth, error, scale)

    # ------------------------------------------------------------------
    def report(self) -> ComparisonReport:
        """Summary of everything accumulated so far."""
        detection = confusion_from_sets(
            self._ada_detections, self._sta_detections, self._universe
        )
        return ComparisonReport(
            detection=detection,
            series_errors=self._errors,
            heavy_hitter_mismatches=self._mismatches,
            timeunits=self._units,
            ada_stage_seconds=dict(self.ada.stage_seconds),
            sta_stage_seconds=dict(self.sta.stage_seconds),
            ada_memory_units=self.ada.memory_units(),
            sta_memory_units=self.sta.memory_units(),
        )
