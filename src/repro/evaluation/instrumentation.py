"""Runtime and memory instrumentation (Tables III and IV).

The paper reports per-stage running time (Reading Traces, Updating
Hierarchies, Creating Time Series, Detecting Anomalies) and a normalized
memory cost (total memory / average tree size / per-node cost).  This module
provides a stage timer, a runtime summary that mirrors Table III's rows, and
the normalized-memory computation used for Table IV.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.exceptions import ConfigurationError

#: Table III's canonical stage names, in presentation order.
STAGE_ORDER: tuple[str, ...] = (
    "reading_traces",
    "updating_hierarchies",
    "creating_time_series",
    "detecting_anomalies",
)


@dataclass
class StageTimer:
    """Accumulates wall-clock time per named stage."""

    seconds: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one stage occurrence."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[name] = self.seconds.get(name, 0.0) + time.perf_counter() - start

    def add(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    def merge(self, other: Mapping[str, float]) -> None:
        for name, seconds in other.items():
            self.add(name, seconds)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())


@dataclass(frozen=True)
class RuntimeSummary:
    """Per-stage runtime breakdown for one algorithm run (one Table III column)."""

    algorithm: str
    timeunit_seconds: float
    stage_seconds: dict[str, float]

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def stage_share(self, stage: str) -> float:
        """Fraction of the total time spent in ``stage``."""
        total = self.total_seconds
        if total <= 0:
            return 0.0
        return self.stage_seconds.get(stage, 0.0) / total

    def rows(self) -> list[tuple[str, float, float]]:
        """(stage, seconds, share) rows in Table III order."""
        rows = []
        for stage in STAGE_ORDER:
            seconds = self.stage_seconds.get(stage, 0.0)
            rows.append((stage, seconds, self.stage_share(stage)))
        return rows

    def speedup_over(self, other: "RuntimeSummary", exclude_reading: bool = False) -> float:
        """How many times faster this run is than ``other``."""
        mine = self.total_seconds
        theirs = other.total_seconds
        if exclude_reading:
            mine -= self.stage_seconds.get("reading_traces", 0.0)
            theirs -= other.stage_seconds.get("reading_traces", 0.0)
        if mine <= 0:
            return float("inf")
        return theirs / mine


@dataclass(frozen=True)
class MemorySummary:
    """Normalized memory cost for one algorithm run (one Table IV row).

    The paper normalizes the total memory cost by the average number of nodes
    in the tree and by the per-node cost, yielding a unitless "how many node
    equivalents per tree node" figure.  We use stored scalars as the cost
    proxy (``memory_units`` from the algorithms).
    """

    algorithm: str
    reference_levels: int | None
    memory_units: int
    tree_nodes: int

    @property
    def normalized(self) -> float:
        if self.tree_nodes <= 0:
            raise ConfigurationError("tree_nodes must be positive")
        return self.memory_units / self.tree_nodes

    def ratio_to(self, other: "MemorySummary") -> float:
        """This run's normalized cost relative to ``other`` (ADA / STA in Table IV)."""
        if other.normalized <= 0:
            return float("inf")
        return self.normalized / other.normalized


def summarize_runtime(
    algorithm_name: str,
    timeunit_seconds: float,
    stage_seconds: Mapping[str, float],
) -> RuntimeSummary:
    """Build a :class:`RuntimeSummary`, filling missing stages with zero."""
    stages = {stage: float(stage_seconds.get(stage, 0.0)) for stage in STAGE_ORDER}
    for name, value in stage_seconds.items():
        stages.setdefault(name, float(value))
    return RuntimeSummary(
        algorithm=algorithm_name,
        timeunit_seconds=timeunit_seconds,
        stage_seconds=stages,
    )


def format_runtime_table(summaries: list[RuntimeSummary]) -> str:
    """Plain-text rendering of Table III from a list of runs."""
    lines = []
    header = "stage".ljust(24) + "".join(
        f"{s.algorithm} (Δ={s.timeunit_seconds / 60:.0f}m)".rjust(22) for s in summaries
    )
    lines.append(header)
    for stage in STAGE_ORDER:
        row = stage.ljust(24)
        for summary in summaries:
            seconds = summary.stage_seconds.get(stage, 0.0)
            share = summary.stage_share(stage)
            row += f"{seconds:10.3f}s ({share:5.1%})".rjust(22)
        lines.append(row)
    total_row = "total".ljust(24) + "".join(
        f"{s.total_seconds:10.3f}s".rjust(22) for s in summaries
    )
    lines.append(total_row)
    return "\n".join(lines)


def format_memory_table(summaries: list[MemorySummary]) -> str:
    """Plain-text rendering of Table IV from a list of runs."""
    lines = ["algorithm".ljust(16) + "ref levels".rjust(12) + "normalized".rjust(14)]
    for summary in summaries:
        ref = "N/A" if summary.reference_levels is None else str(summary.reference_levels)
        lines.append(
            summary.algorithm.ljust(16) + ref.rjust(12) + f"{summary.normalized:14.1f}"
        )
    return "\n".join(lines)
