"""Evaluation metrics (§VII-A accuracy metrics and §VII-B comparison metrics).

Two families of metrics are defined:

* **Standard confusion metrics** (accuracy, precision, recall) over
  (node, timeunit) decisions, used when comparing ADA's detections against
  STA's ground truth (Table V).

* **Reference-comparison metrics** (§VII-B).  The reference anomaly set only
  covers the first network level, so the paper defines: a *true alarm* (TA)
  when a reference anomaly has a Tiresias anomaly at the same timeunit at the
  same node or a descendant; a *missed anomaly* (MA) otherwise; a *new
  anomaly* (NA) for Tiresias anomalies unrelated to any reference anomaly;
  and a *true negative* (TN) for tracked heavy hitters that neither method
  flagged.  Three summary ratios are reported:

  - Type 1 (accuracy)  = (#TA + #TN) / #cases
  - Type 2             = #TA / (#TA + #MA)
  - Type 3             = #TN / (#TN + #NA)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro._types import CategoryPath, TimeunitIndex
from repro.core.detector import Anomaly

#: A detection decision point: (node path, timeunit).
Case = tuple[CategoryPath, TimeunitIndex]


@dataclass(frozen=True)
class ConfusionMetrics:
    """Standard binary classification counts and derived ratios."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 1.0
        return (self.true_positives + self.true_negatives) / self.total

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        if denominator == 0:
            return 1.0
        return self.true_positives / denominator

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        if denominator == 0:
            return 1.0
        return self.true_positives / denominator

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)


def confusion_from_sets(
    predicted: set[Case], truth: set[Case], universe: set[Case]
) -> ConfusionMetrics:
    """Confusion counts for predicted vs. true anomalous cases over ``universe``.

    Cases outside ``universe`` (e.g. decisions at nodes only one algorithm
    tracked) are added to it so every prediction and truth item is counted.
    """
    universe = set(universe) | predicted | truth
    tp = len(predicted & truth)
    fp = len(predicted - truth)
    fn = len(truth - predicted)
    tn = len(universe) - tp - fp - fn
    return ConfusionMetrics(
        true_positives=tp,
        false_positives=fp,
        true_negatives=max(tn, 0),
        false_negatives=fn,
    )


# ----------------------------------------------------------------------
# Reference-comparison metrics (Table VI)
# ----------------------------------------------------------------------


def _is_ancestor_or_self(ancestor: CategoryPath, descendant: CategoryPath) -> bool:
    """The paper's ``L1 ⊒ L2`` relation on hierarchy paths."""
    return len(ancestor) <= len(descendant) and descendant[: len(ancestor)] == ancestor


@dataclass(frozen=True)
class ReferenceComparison:
    """Counts and ratios of the §VII-B comparison against a reference method.

    Attributes
    ----------
    true_alarms:
        Reference anomalies matched by a Tiresias anomaly at the same timeunit
        at the same node or deeper (Tiresias localizes at least as precisely).
    missed_anomalies:
        Reference anomalies with no matching Tiresias anomaly.
    new_anomalies:
        Tiresias anomalies unrelated to any reference anomaly.
    true_negatives:
        Tracked (node, timeunit) cases that neither method flagged.
    """

    true_alarms: int
    missed_anomalies: int
    new_anomalies: int
    true_negatives: int

    @property
    def cases(self) -> int:
        return (
            self.true_alarms
            + self.missed_anomalies
            + self.new_anomalies
            + self.true_negatives
        )

    @property
    def type1_accuracy(self) -> float:
        if self.cases == 0:
            return 1.0
        return (self.true_alarms + self.true_negatives) / self.cases

    @property
    def type2(self) -> float:
        denominator = self.true_alarms + self.missed_anomalies
        if denominator == 0:
            return 1.0
        return self.true_alarms / denominator

    @property
    def type3(self) -> float:
        denominator = self.true_negatives + self.new_anomalies
        if denominator == 0:
            return 1.0
        return self.true_negatives / denominator

    def as_table_row(self) -> dict[str, float]:
        """The three ratios of the paper's Table VI."""
        return {
            "type1_accuracy": self.type1_accuracy,
            "type2": self.type2,
            "type3": self.type3,
        }


def compare_with_reference(
    tiresias_anomalies: Iterable[Anomaly],
    reference_anomalies: Iterable[Anomaly],
    tracked_cases: Iterable[Case],
    time_tolerance: int = 0,
) -> ReferenceComparison:
    """Score Tiresias detections against a (first-level-only) reference set.

    Parameters
    ----------
    tiresias_anomalies:
        Anomalies reported by Tiresias.
    reference_anomalies:
        Anomalies reported by the reference method (e.g. the VHO-level control
        chart).
    tracked_cases:
        The (node, timeunit) cases Tiresias tracked (its heavy hitters per
        timeunit); true negatives are drawn from these.
    time_tolerance:
        Maximum timeunit distance for an anomaly pair to be considered the
        same event.  The paper matches exact timeunits (tolerance 0); a small
        tolerance treats a sustained event flagged by the two methods in
        adjacent timeunits as the same alarm, which is how operations teams
        read the reports in practice.
    """
    tiresias_list = list(tiresias_anomalies)
    reference_list = list(reference_anomalies)

    def related(ref: Anomaly, ours: Anomaly) -> bool:
        return abs(ours.timeunit - ref.timeunit) <= time_tolerance and _is_ancestor_or_self(
            ref.node_path, ours.node_path
        )

    matched_tiresias: set[int] = set()
    true_alarms = 0
    missed = 0
    for ref in reference_list:
        found = False
        for idx, ours in enumerate(tiresias_list):
            if related(ref, ours):
                found = True
                matched_tiresias.add(idx)
        if found:
            true_alarms += 1
        else:
            missed += 1

    new_anomalies = 0
    new_anomaly_cases: set[Case] = set()
    for idx, ours in enumerate(tiresias_list):
        if not any(related(ref, ours) for ref in reference_list):
            new_anomalies += 1
            new_anomaly_cases.add((ours.node_path, ours.timeunit))

    flagged_cases: set[Case] = {
        (a.node_path, a.timeunit) for a in tiresias_list
    } | {(a.node_path, a.timeunit) for a in reference_list}
    true_negatives = sum(1 for case in set(tracked_cases) if case not in flagged_cases)

    return ReferenceComparison(
        true_alarms=true_alarms,
        missed_anomalies=missed,
        new_anomalies=new_anomalies,
        true_negatives=true_negatives,
    )


def match_against_ground_truth(
    anomalies: Iterable[Anomaly],
    ground_truth: set[Case],
    tolerance_units: int = 1,
) -> tuple[int, int]:
    """(detected, total) ground-truth events found by ``anomalies``.

    A ground-truth (node, timeunit) event counts as detected when some anomaly
    within ``tolerance_units`` timeunits is located at the node or any of its
    ancestors or descendants -- the detection localizes the same subtree even
    if the sparse leaf signal only surfaced at an aggregate.
    """
    anomaly_list = list(anomalies)
    detected = 0
    for truth_path, truth_unit in ground_truth:
        hit = any(
            abs(a.timeunit - truth_unit) <= tolerance_units
            and (
                _is_ancestor_or_self(a.node_path, truth_path)
                or _is_ancestor_or_self(truth_path, a.node_path)
            )
            for a in anomaly_list
        )
        if hit:
            detected += 1
    return detected, len(ground_truth)


def detection_rate(
    anomalies: Iterable[Anomaly], ground_truth: set[Case], tolerance_units: int = 1
) -> float:
    """Fraction of ground-truth events detected (1.0 when there are none)."""
    detected, total = match_against_ground_truth(anomalies, ground_truth, tolerance_units)
    if total == 0:
        return 1.0
    return detected / total


def series_absolute_errors(
    approximate: Sequence[float], exact: Sequence[float]
) -> list[float]:
    """Per-timeunit absolute errors between two series aligned on their newest value."""
    length = max(len(approximate), len(exact))
    a = [0.0] * (length - len(approximate)) + list(approximate)
    b = [0.0] * (length - len(exact)) + list(exact)
    return [abs(x - y) for x, y in zip(a, b)]


def mean_relative_series_error(
    approximate: Sequence[float], exact: Sequence[float], epsilon: float = 1.0
) -> float:
    """Mean of |approx - exact| / max(|exact|, epsilon) over the aligned series."""
    errors = series_absolute_errors(approximate, exact)
    length = len(errors)
    if length == 0:
        return 0.0
    exact_padded = [0.0] * (length - len(exact)) + list(exact)
    return sum(
        err / max(abs(value), epsilon) for err, value in zip(errors, exact_padded)
    ) / length
