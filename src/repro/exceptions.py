"""Exception hierarchy for the Tiresias reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object or parameter is invalid or inconsistent."""


class HierarchyError(ReproError):
    """A hierarchical domain or category path is malformed."""


class UnknownCategoryError(HierarchyError):
    """A record's category path does not map to any leaf in the hierarchy."""

    def __init__(self, category: tuple[str, ...]):
        super().__init__(f"category path {category!r} is not a leaf of the hierarchy")
        self.category = tuple(category)

    def __reduce__(self):
        return (type(self), (self.category,))


class StreamError(ReproError):
    """The input stream violates an ordering or format invariant."""


class OutOfOrderRecordError(StreamError):
    """A record arrived with a timestamp earlier than the current window start."""

    def __init__(self, timestamp: float, window_start: float):
        super().__init__(
            f"record timestamp {timestamp} precedes the current window start "
            f"{window_start}; streams must be (approximately) time ordered"
        )
        self.timestamp = timestamp
        self.window_start = window_start

    def __reduce__(self):
        # Default Exception pickling would replay __init__ with self.args (the
        # formatted message), losing these attributes; the sharded engine
        # forwards worker-side raises across the process boundary intact.
        return (type(self), (self.timestamp, self.window_start))


class ShardingError(ReproError):
    """A sharded engine cannot guarantee equivalence with the serial engine.

    Raised when a worker process dies, when a subtree-sharded session's
    hierarchy root qualifies as a succinct heavy hitter (root-coupled series
    adaptation cannot be reproduced across disjoint shards), or when a
    sharded engine is used after :meth:`close`.
    """


class WorkerFailureError(ShardingError):
    """A shard worker died, stalled past its deadline, or lost its channel.

    Raised by the transports (per-operation deadlines and liveness checks)
    and by :class:`repro.engine.supervisor.ShardSupervisor` instead of
    blocking forever on a dead peer.  Under a supervised engine this is a
    *recoverable* condition: the coordinator respawns the worker, restores
    its shard units from the last barrier snapshot and replays the bounded
    op log, producing results bit-identical to an uninterrupted run.

    Picklable (``__reduce__``), so it crosses process boundaries intact.
    """

    def __init__(self, worker_id: int, op: str = "", detail: str = ""):
        self.worker_id = int(worker_id)
        self.op = str(op)
        self.detail = str(detail)
        message = f"shard worker {self.worker_id} failed during {self.op or 'an operation'}"
        if detail:
            message = f"{message}: {self.detail}"
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.worker_id, self.op, self.detail))


class ForecastingError(ReproError):
    """A forecasting model was used before initialization or with bad input."""


class NotEnoughHistoryError(ForecastingError):
    """The history series is too short to initialize the forecasting model."""

    def __init__(self, needed: int, available: int):
        super().__init__(
            f"forecasting model requires at least {needed} history points, "
            f"got {available}"
        )
        self.needed = needed
        self.available = available

    def __reduce__(self):
        return (type(self), (self.needed, self.available))


class DetectionError(ReproError):
    """The anomaly detector was invoked in an invalid state."""


class DataGenerationError(ReproError):
    """A synthetic dataset generator was configured inconsistently."""


class CheckpointError(ReproError):
    """A checkpoint file is malformed, incompatible, or cannot be restored."""


class CheckpointReadError(CheckpointError):
    """A checkpoint file exists but cannot be read, parsed, or validated.

    Distinguishes *torn or corrupt files* (truncated JSON after a crash,
    bit rot, a half-written file from a foreign writer) from the semantic
    checkpoint errors :class:`CheckpointError` also covers.  The service's
    rolling-retention activation path catches this, quarantines the bad
    file (``.corrupt`` rename) and falls back to the newest valid retained
    checkpoint, counting ``checkpoint_fallbacks_total`` in ``/metrics``.

    Picklable (``__reduce__``), so it crosses process boundaries intact.
    """

    def __init__(self, path: str, detail: str = ""):
        self.path = str(path)
        self.detail = str(detail)
        message = f"cannot read checkpoint {self.path}"
        if detail:
            message = f"{message}: {self.detail}"
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.path, self.detail))


class CheckpointWriteError(CheckpointError):
    """A checkpoint could not be durably written to disk.

    Raised by the atomic checkpoint writer when the temp-file write, fsync or
    rename fails (most commonly a full disk).  The partially written temp file
    is removed before raising, so the previous checkpoint at the target path —
    if any — is always left intact and loadable.
    """

    def __init__(self, path: str, errno: "int | None" = None, detail: str = ""):
        import errno as _errno

        self.path = str(path)
        self.errno = errno
        self.detail = detail
        suffix = " (disk full)" if errno == _errno.ENOSPC else ""
        message = f"failed to write checkpoint {self.path}{suffix}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)

    @property
    def is_disk_full(self) -> bool:
        import errno as _errno

        return self.errno == _errno.ENOSPC

    def __reduce__(self):
        return (type(self), (self.path, self.errno, self.detail))
