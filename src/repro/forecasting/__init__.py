"""Forecasting models used by Tiresias (Section VI).

Provides the EWMA baseline, the additive Holt-Winters seasonal model (single
and multi-seasonal) with the linearity properties ADA relies on, and the
offline error metrics / parameter selection used in the evaluation.
"""

from repro.forecasting.bank import ForecasterBank
from repro.forecasting.base import Forecaster
from repro.forecasting.errors import (
    GridSearchResult,
    grid_search_parameters,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
)
from repro.forecasting.ewma import EWMAForecaster, ewma_series, split_bias_relative_error
from repro.forecasting.holt_winters import HoltWintersForecaster, MultiSeasonalHoltWinters

__all__ = [
    "Forecaster",
    "ForecasterBank",
    "EWMAForecaster",
    "ewma_series",
    "split_bias_relative_error",
    "HoltWintersForecaster",
    "MultiSeasonalHoltWinters",
    "mean_squared_error",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "grid_search_parameters",
    "GridSearchResult",
]
