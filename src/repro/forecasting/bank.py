"""Columnar forecaster bank: one vectorized update for every tracked node.

The scalar pipeline attaches one forecaster object per heavy hitter and
updates them one at a time inside the per-timeunit close loop — after the
columnar ingestion work of the batch path, that loop is the hot path.  A
:class:`ForecasterBank` instead holds the forecasting state of *all* tracked
node paths in parallel arrays:

* the EWMA fallback level and observation count per row,
* the pre-seasonal warm-up history per row (ragged, Python lists), and
* the additive Holt-Winters state — level, trend, one seasonal buffer per
  seasonal period, and the per-row seasonal phase — as 2-D arrays.

:meth:`observe_rows` folds one timeunit of values into any subset of rows
with a handful of NumPy kernels instead of N Python-object updates.  Every
per-row operation ADA's adaptation needs — :meth:`clone_row` (SPLIT),
:meth:`add_state` (MERGE), :meth:`seed_fast` (reference-series correction) —
is implemented with exactly the scalar arithmetic of the historical
per-object forecasters, so results stay bit-for-bit identical and the
split/merge linearity of the paper's Lemma 2 keeps holding.

Fallbacks mirror :class:`~repro.streaming.batch.RecordBatch`: without NumPy
(or with ``REPRO_DISABLE_NUMPY`` set, or with a custom ``ForecastConfig.model``
whose internals the bank cannot vectorize) each row degrades to a private
scalar state object with the same public row API — functional, just slower.

Checkpoint compatibility: :meth:`row_state_dict` / :meth:`load_row_state`
speak the *canonical per-path forecaster format* that predates the bank
(``{"ewma_level", "seen", "history", "seasonal"}``), so bank-backed sessions
read and write the same checkpoints as scalar and sharded sessions.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro._vector import load_kernels, load_numpy
from repro.core.config import ForecastConfig
from repro.exceptions import ConfigurationError
from repro.forecasting.holt_winters import (
    HoltWintersForecaster,
    MultiSeasonalHoltWinters,
)

_np = load_numpy()

#: Whether the vectorized (NumPy) kernels are active for ``model="auto"``.
HAS_VECTOR_BACKEND = _np is not None

#: Row-count crossover at which a vectorized bank beats per-row Python
#: arithmetic for repeated full-bank updates (measured ≈ 48 on CPython 3.11).
#: Callers that create a *throwaway* bank sized to a known row count (e.g.
#: STA's per-timeunit refit) should pass ``force_scalar=True`` below this;
#: the two backends are bit-identical, so the choice is purely speed.
VECTOR_MIN_ROWS = 48

#: Batch-size crossover below which one :meth:`ForecasterBank.observe_rows`
#: call routes through the per-row scalar observe loop (measured ≈ 6 rows on
#: this container: NumPy gather/scatter overhead beats Python floats only
#: from about that many rows).  The two paths are bit-identical.
OBSERVE_VECTOR_MIN_ROWS = 6


def _build_seasonal_model(config: ForecastConfig):
    """The seasonal model ``config`` selects (single / multi / registry)."""
    if config.model != "auto":
        from repro.core.registry import create_forecaster

        return create_forecaster(config.model, config)
    if len(config.season_lengths) == 1:
        return HoltWintersForecaster(
            alpha=config.alpha,
            beta=config.beta,
            gamma=config.gamma,
            season_length=config.season_lengths[0],
        )
    return MultiSeasonalHoltWinters(
        alpha=config.alpha,
        beta=config.beta,
        gamma=config.gamma,
        season_lengths=config.season_lengths,
        season_weights=config.season_weights,
    )


def load_seasonal_state(state: dict):
    """Rebuild a seasonal model from its ``state_dict`` snapshot (by kind)."""
    from repro.core.registry import forecaster_state_loader

    return forecaster_state_loader(str(state.get("kind")))(state)


class _ScalarRow:
    """One row's forecasting state as plain Python objects.

    This is the historical per-node forecaster implementation, kept verbatim
    as the bank's fallback row type: it is used when NumPy is unavailable and
    when the configured seasonal model is a registry plug-in whose internals
    the vector kernels cannot see.
    """

    __slots__ = ("config", "ewma_level", "seen", "history", "seasonal")

    def __init__(self, config: ForecastConfig):
        self.config = config
        self.ewma_level: float | None = None
        self.seen = 0
        self.history: list[float] = []
        self.seasonal: Any = None

    def _maybe_activate(self) -> None:
        if self.seasonal is None and len(self.history) >= self.config.min_history:
            model = _build_seasonal_model(self.config)
            model.initialize(self.history)
            self.seasonal = model
            self.history = []

    def forecast(self) -> float:
        if self.seasonal is not None:
            return self.seasonal.forecast()
        if self.ewma_level is None:
            return 0.0
        return self.ewma_level

    def observe(self, value: float) -> float:
        value = float(value)
        predicted = self.forecast()
        alpha = self.config.fallback_alpha
        if self.ewma_level is None:
            self.ewma_level = value
        else:
            self.ewma_level = alpha * value + (1 - alpha) * self.ewma_level
        if self.seasonal is not None:
            self.seasonal.update(value)
        else:
            self.history.append(value)
            self._maybe_activate()
        self.seen += 1
        return predicted

    def seed_fast(self, history: Sequence[float]) -> None:
        n = len(history)
        self.seen = n
        if not n:
            return
        alpha = self.config.fallback_alpha
        # Only the tail is ever read, so the historical whole-series float
        # conversion is applied lazily (identical values: float is idempotent
        # and the seasonal initialization converts internally).
        tail = [float(v) for v in history[-min(n, 64):]]
        level = tail[0]
        rest = 1 - alpha
        for value in tail:
            level = alpha * value + rest * level
        self.ewma_level = level
        if n >= self.config.min_history:
            model = _build_seasonal_model(self.config)
            model.initialize(history[-self.config.min_history:])
            self.seasonal = model
        else:
            self.history = [float(v) for v in history]

    def scaled(self, ratio: float) -> "_ScalarRow":
        clone = _ScalarRow(self.config)
        clone.seen = self.seen
        clone.ewma_level = None if self.ewma_level is None else self.ewma_level * ratio
        clone.history = [v * ratio for v in self.history]
        clone.seasonal = None if self.seasonal is None else self.seasonal.scaled(ratio)
        return clone

    def add_state(self, other: "_ScalarRow") -> None:
        if other.ewma_level is not None:
            if self.ewma_level is None:
                self.ewma_level = other.ewma_level
            else:
                self.ewma_level += other.ewma_level
        self.seen = max(self.seen, other.seen)
        if other.seasonal is not None:
            if self.seasonal is None:
                self.seasonal = other.seasonal.scaled(1.0)
            else:
                self.seasonal.add_state(other.seasonal)
        if other.history:
            if not self.history:
                self.history = list(other.history)
            else:
                length = max(len(self.history), len(other.history))
                mine = [0.0] * (length - len(self.history)) + self.history
                theirs = [0.0] * (length - len(other.history)) + list(other.history)
                self.history = [a + b for a, b in zip(mine, theirs)]
        self._maybe_activate()

    def state_dict(self) -> dict:
        return {
            "ewma_level": self.ewma_level,
            "seen": self.seen,
            "history": list(self.history),
            "seasonal": None if self.seasonal is None else self.seasonal.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        level = state["ewma_level"]
        self.ewma_level = None if level is None else float(level)
        self.seen = int(state["seen"])
        self.history = [float(v) for v in state["history"]]
        self.seasonal = (
            None if state["seasonal"] is None else load_seasonal_state(state["seasonal"])
        )


class ForecasterBank:
    """Forecasting state for many node paths, held columnar.

    Rows are integer handles obtained from :meth:`new_row` and returned to
    the bank with :meth:`free_row` (freed rows are recycled).  All rows share
    one :class:`~repro.core.config.ForecastConfig`.

    The bank runs **vectorized** when NumPy is importable and the config's
    seasonal model is the built-in ``"auto"`` choice; otherwise every row is
    a scalar fallback object with identical behaviour.  ``force_scalar=True``
    pins the fallback explicitly (the perf harness uses it to measure the
    scalar baseline in-process).
    """

    def __init__(self, config: ForecastConfig, *, force_scalar: bool = False):
        self.config = config
        self.vectorized = (
            _np is not None and config.model == "auto" and not force_scalar
        )
        self._free: list[int] = []
        self._size = 0  # high-water row count
        if not self.vectorized:
            self._rows: list[_ScalarRow | None] = []
            return
        lengths = config.season_lengths
        self._single = len(lengths) == 1
        if config.season_weights is None:
            self._weights = tuple(1.0 / len(lengths) for _ in lengths)
        else:
            self._weights = tuple(float(w) for w in config.season_weights)
        self._min_history = config.min_history
        cap = 8
        self._ewma = _np.full(cap, _np.nan)
        self._seen = _np.zeros(cap, dtype=_np.int64)
        self._active = _np.zeros(cap, dtype=bool)
        self._level = _np.zeros(cap)
        self._trend = _np.zeros(cap)
        self._seasonals = [_np.zeros((cap, p)) for p in lengths]
        self._phases = _np.zeros((cap, len(lengths)), dtype=_np.int64)
        self._hist: list[list[float] | None] = [None] * cap
        #: Seasonal model *objects* for rows restored from a snapshot whose
        #: layout does not match this bank's (foreign parameters or kinds);
        #: such rows bypass the vector kernels but behave identically.
        self._obj: dict[int, Any] = {}

    # ------------------------------------------------------------------
    # Row lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of live (allocated, not freed) rows."""
        return self._size - len(self._free)

    def _grow(self, cap: int) -> None:
        np_ = _np
        old = self._ewma.shape[0]
        if cap <= old:
            return
        self._ewma = np_.concatenate([self._ewma, np_.full(cap - old, np_.nan)])
        self._seen = np_.concatenate([self._seen, np_.zeros(cap - old, dtype=np_.int64)])
        self._active = np_.concatenate([self._active, np_.zeros(cap - old, dtype=bool)])
        self._level = np_.concatenate([self._level, np_.zeros(cap - old)])
        self._trend = np_.concatenate([self._trend, np_.zeros(cap - old)])
        self._seasonals = [
            np_.concatenate([buf, np_.zeros((cap - old, buf.shape[1]))])
            for buf in self._seasonals
        ]
        self._phases = np_.concatenate(
            [self._phases, np_.zeros((cap - old, self._phases.shape[1]), dtype=np_.int64)]
        )
        self._hist.extend([None] * (cap - old))

    def _alloc_row(self) -> int:
        """A recycled or brand-new row id, state NOT reset (internal)."""
        if self._free:
            return self._free.pop()
        row = self._size
        self._size += 1
        if not self.vectorized:
            self._rows.append(None)
        elif row >= self._ewma.shape[0]:
            self._grow(max(8, 2 * self._ewma.shape[0]))
        return row

    def new_row(self) -> int:
        """Allocate a fresh row in the initial (no observations) state."""
        row = self._alloc_row()
        if not self.vectorized:
            self._rows[row] = _ScalarRow(self.config)
            return row
        self._ewma[row] = _np.nan
        self._seen[row] = 0
        self._active[row] = False
        self._level[row] = 0.0
        self._trend[row] = 0.0
        for buf in self._seasonals:
            buf[row, :] = 0.0
        self._phases[row, :] = 0
        self._hist[row] = []
        self._obj.pop(row, None)
        return row

    def free_row(self, row: int) -> None:
        """Return ``row`` to the bank for reuse; its state becomes invalid."""
        if not self.vectorized:
            self._rows[row] = None
        else:
            self._hist[row] = None
            self._obj.pop(row, None)
        self._free.append(row)

    # ------------------------------------------------------------------
    # Observation (scalar and vectorized)
    # ------------------------------------------------------------------
    def forecast(self, row: int) -> float:
        """One-step-ahead forecast for ``row``'s next timeunit."""
        if not self.vectorized:
            return self._rows[row].forecast()
        obj = self._obj.get(row)
        if obj is not None:
            return obj.forecast()
        if self._active[row]:
            return self._forecast_scalar(row)
        ewma = self._ewma[row]
        return 0.0 if _np.isnan(ewma) else float(ewma)

    def _combined_seasonal_scalar(self, row: int) -> float:
        if self._single:
            return float(self._seasonals[0][row, self._phases[row, 0]])
        return sum(
            w * float(buf[row, self._phases[row, k]])
            for k, (w, buf) in enumerate(zip(self._weights, self._seasonals))
        )

    def _forecast_scalar(self, row: int) -> float:
        return (
            float(self._level[row])
            + float(self._trend[row])
            + self._combined_seasonal_scalar(row)
        )

    def observe(self, row: int, value: float) -> float:
        """Fold in ``row``'s next actual value; returns the forecast made for it.

        Scalar counterpart of :meth:`observe_rows` — the arithmetic is the
        same expression evaluated on Python floats, so the two are
        bit-for-bit interchangeable (property-tested).
        """
        if not self.vectorized:
            return self._rows[row].observe(value)
        value = float(value)
        predicted = self.forecast(row)
        alpha = self.config.fallback_alpha
        ewma = self._ewma[row]
        if _np.isnan(ewma):
            self._ewma[row] = value
        else:
            self._ewma[row] = alpha * value + (1 - alpha) * float(ewma)
        obj = self._obj.get(row)
        if obj is not None:
            obj.update(value)
        elif self._active[row]:
            self._update_seasonal_scalar(row, value)
        else:
            hist = self._hist[row]
            hist.append(value)
            if len(hist) >= self._min_history:
                self._activate(row)
        self._seen[row] += 1
        return predicted

    def _update_seasonal_scalar(self, row: int, value: float) -> None:
        alpha, beta, gamma = self.config.alpha, self.config.beta, self.config.gamma
        level = float(self._level[row])
        trend = float(self._trend[row])
        seasonal = self._combined_seasonal_scalar(row)
        new_level = alpha * (value - seasonal) + (1 - alpha) * (level + trend)
        self._level[row] = new_level
        self._trend[row] = beta * (new_level - level) + (1 - beta) * trend
        for k, (buf, p) in enumerate(zip(self._seasonals, self.config.season_lengths)):
            phase = int(self._phases[row, k])
            buf[row, phase] = gamma * (value - new_level) + (1 - gamma) * float(
                buf[row, phase]
            )
            self._phases[row, k] = (phase + 1) % p

    def observe_rows(self, rows: Sequence[int], values: Sequence[float]) -> list[float]:
        """Vectorized :meth:`observe` over distinct ``rows``; returns forecasts.

        This is the per-timeunit hot path: one call updates the EWMA levels,
        Holt-Winters components and warm-up histories of every tracked node.
        ``rows`` must not contain duplicates (each tracked node appears once
        per timeunit).
        """
        if not self.vectorized or len(rows) < OBSERVE_VECTOR_MIN_ROWS:
            return [self.observe(row, value) for row, value in zip(rows, values)]
        if self._obj:
            # Object-overflow rows (foreign-layout restores) update scalar;
            # the rest of the batch keeps the vector kernels so one foreign
            # row does not de-vectorize the whole bank.
            obj_positions = [
                pos for pos, row in enumerate(rows) if row in self._obj
            ]
            if obj_positions:
                obj_set = set(obj_positions)
                vec_positions = [
                    pos for pos in range(len(rows)) if pos not in obj_set
                ]
                forecasts = [0.0] * len(rows)
                for pos in obj_positions:
                    forecasts[pos] = self.observe(rows[pos], values[pos])
                vec_forecasts = self.observe_rows(
                    [rows[pos] for pos in vec_positions],
                    [values[pos] for pos in vec_positions],
                )
                for pos, forecast in zip(vec_positions, vec_forecasts):
                    forecasts[pos] = forecast
                return forecasts
        np_ = _np
        idx = np_.asarray(rows, dtype=np_.intp)
        v = np_.asarray(values, dtype=np_.float64)
        return self._observe_vector(idx, v).tolist()

    def observe_rows_arrays(self, idx, v):
        """Array-native :meth:`observe_rows`: ndarrays in, float64 ndarray out.

        The fused close path already holds its row indices and values as
        arrays; this entry point skips the list round-trips.  Semantics are
        identical — small batches and object-overflow rows take the exact
        scalar/list path of :meth:`observe_rows`.
        """
        np_ = _np
        if not self.vectorized or idx.size < OBSERVE_VECTOR_MIN_ROWS or self._obj:
            forecasts = self.observe_rows(idx.tolist(), v.tolist())
            return np_.asarray(forecasts, dtype=np_.float64)
        return self._observe_vector(idx, v)

    def _observe_vector(self, idx, v):
        """Shared vector kernel behind :meth:`observe_rows` (no ``_obj`` rows)."""
        np_ = _np
        ewma = self._ewma[idx]
        active = self._active[idx]
        fallback_alpha = self.config.fallback_alpha
        alpha, beta, gamma = self.config.alpha, self.config.beta, self.config.gamma
        if active.all() and not np_.isnan(ewma).any():
            # Steady state (every row warm): no masks, no history bookkeeping.
            kernels = load_kernels() if self._single else None
            if kernels is not None:
                # Compiled tier: same arithmetic, same operation order (see
                # _implmodule.c); rows are unique so in-place per-row updates
                # match the gather/scatter NumPy expressions bit for bit.
                out = np_.empty(idx.size, dtype=np_.float64)
                idx_c = np_.ascontiguousarray(idx, dtype=np_.intp)
                v_c = np_.ascontiguousarray(v, dtype=np_.float64)
                kernels.observe_steady(
                    idx_c,
                    v_c,
                    self._level,
                    self._trend,
                    self._seasonals[0],
                    self._phases,
                    self._phases.shape[1],
                    self._ewma,
                    self._seen,
                    alpha,
                    beta,
                    gamma,
                    fallback_alpha,
                    self.config.season_lengths[0],
                    out,
                )
                return out
            level = self._level[idx]
            trend = self._trend[idx]
            if self._single:
                phase0 = self._phases[idx, 0]
                seasonal = self._seasonals[0][idx, phase0]
            else:
                seasonal = np_.zeros(idx.size)
                for k, (w, buf) in enumerate(zip(self._weights, self._seasonals)):
                    seasonal = seasonal + w * buf[idx, self._phases[idx, k]]
            forecasts = level + trend + seasonal
            self._ewma[idx] = fallback_alpha * v + (1 - fallback_alpha) * ewma
            self._seen[idx] += 1
            new_level = alpha * (v - seasonal) + (1 - alpha) * (level + trend)
            self._level[idx] = new_level
            self._trend[idx] = beta * (new_level - level) + (1 - beta) * trend
            for k, (buf, p) in enumerate(
                zip(self._seasonals, self.config.season_lengths)
            ):
                phase = self._phases[idx, k]
                buf[idx, phase] = gamma * (v - new_level) + (1 - gamma) * buf[
                    idx, phase
                ]
                self._phases[idx, k] = (phase + 1) % p
            return forecasts
        has_ewma = ~np_.isnan(ewma)
        forecasts = np_.where(has_ewma, ewma, 0.0)
        active_pos = np_.flatnonzero(active)
        if active_pos.size:
            a_idx = idx[active_pos]
            level = self._level[a_idx]
            trend = self._trend[a_idx]
            if self._single:
                phase0 = self._phases[a_idx, 0]
                seasonal = self._seasonals[0][a_idx, phase0]
            else:
                seasonal = np_.zeros(a_idx.size)
                for k, (w, buf) in enumerate(zip(self._weights, self._seasonals)):
                    seasonal = seasonal + w * buf[a_idx, self._phases[a_idx, k]]
            forecasts[active_pos] = level + trend + seasonal
        self._ewma[idx] = np_.where(
            has_ewma, fallback_alpha * v + (1 - fallback_alpha) * ewma, v
        )
        self._seen[idx] += 1
        if active_pos.size:
            va = v[active_pos]
            new_level = alpha * (va - seasonal) + (1 - alpha) * (level + trend)
            self._level[a_idx] = new_level
            self._trend[a_idx] = beta * (new_level - level) + (1 - beta) * trend
            for k, (buf, p) in enumerate(
                zip(self._seasonals, self.config.season_lengths)
            ):
                phase = self._phases[a_idx, k]
                buf[a_idx, phase] = gamma * (va - new_level) + (1 - gamma) * buf[
                    a_idx, phase
                ]
                self._phases[a_idx, k] = (phase + 1) % p
        inactive_pos = np_.flatnonzero(~active)
        for pos in inactive_pos.tolist():
            row = int(idx[pos])
            hist = self._hist[row]
            hist.append(float(v[pos]))
            if len(hist) >= self._min_history:
                self._activate(row)
        return forecasts

    def _activate(self, row: int) -> None:
        """Initialize the seasonal components from ``row``'s warm-up history."""
        model = _build_seasonal_model(self.config)
        model.initialize(self._hist[row])
        self._adopt_model(row, model)
        self._hist[row] = []

    def _adopt_model(self, row: int, model: Any) -> None:
        """Copy a built-in seasonal model's state into the row's arrays."""
        self._active[row] = True
        self._level[row] = model.level
        self._trend[row] = model.trend
        if self._single:
            self._seasonals[0][row, :] = model.seasonals
            self._phases[row, 0] = model._phase
        else:
            for k, buf in enumerate(model.seasonals):
                self._seasonals[k][row, :] = buf
            self._phases[row, :] = model._phases

    # ------------------------------------------------------------------
    # Warm-start
    # ------------------------------------------------------------------
    def seed_history(self, row: int, history: Sequence[float]) -> None:
        """Replay a full history series into a fresh row (oldest first)."""
        for value in history:
            self.observe(row, value)

    def seed_fast(self, row: int, history: Sequence[float]) -> None:
        """Warm-start a *fresh* row from ``history`` without replaying it.

        The seasonal state initializes from the last ``min_history`` values
        and the EWMA fallback from a smoothing of the recent tail — the
        reference-series correction path (O(seasonal period) instead of
        O(window) updates).
        """
        if not self.vectorized:
            self._rows[row].seed_fast(history)
            return
        n = len(history)
        self._seen[row] = n
        if not n:
            return
        alpha = self.config.fallback_alpha
        if (
            self._single
            and n >= self._min_history
            and isinstance(history, _np.ndarray)
            and history.dtype == _np.float64
            and history.flags.c_contiguous
        ):
            p = self.config.season_lengths[0]
            if self._min_history >= 2 * p:
                kernels = load_kernels()
                if kernels is not None:
                    # Compiled tier: the EWMA tail fold and the sequential
                    # cumsum window sums below, same operation order (see
                    # _implmodule.c), straight off the history array.
                    kernels.seed_steady(
                        history,
                        row,
                        alpha,
                        p,
                        self._ewma,
                        self._level,
                        self._trend,
                        self._seasonals[0],
                        self._phases,
                        self._phases.shape[1],
                        self._active,
                    )
                    return
        # Lazy tail-only float conversion (see _ScalarRow.seed_fast): the
        # whole-series conversion of the historical code is skipped because
        # only the EWMA tail, the seasonal window and (short histories) the
        # warm-up list are ever read — values are bit-identical.
        tail_src = history[-min(n, 64):]
        if isinstance(tail_src, list):
            tail = [float(v) for v in tail_src]
        else:
            tail = _np.asarray(tail_src, dtype=_np.float64).tolist()
        level = tail[0]
        rest = 1 - alpha
        for value in tail:
            level = alpha * value + rest * level
        self._ewma[row] = level
        if n >= self._min_history:
            if self._single:
                # Built-in single-season Holt-Winters (the only model a
                # vectorized bank can hold): initialize straight into the
                # row's arrays — the same ``_left_fold_sum`` cumsum
                # arithmetic as HoltWintersForecaster.initialize, minus the
                # model object and its list round trips.
                p = self.config.season_lengths[0]
                window_src = history[-self._min_history:]
                if len(window_src) >= 2 * p:
                    window = _np.asarray(window_src[-2 * p :], dtype=_np.float64)
                    hw_level = float(_np.cumsum(window)[-1]) / (2 * p)
                    first = float(_np.cumsum(window[:p])[-1])
                    second = float(_np.cumsum(window[p:])[-1])
                    self._active[row] = True
                    self._level[row] = hw_level
                    self._trend[row] = (second - first) / (p * p)
                    self._seasonals[0][row, :] = window[p:] - hw_level
                    self._phases[row, 0] = 0
                    return
            model = _build_seasonal_model(self.config)
            model.initialize(history[-self._min_history:])
            self._adopt_model(row, model)
        elif isinstance(history, list):
            self._hist[row] = [float(v) for v in history]
        else:
            self._hist[row] = _np.asarray(history, dtype=_np.float64).tolist()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_seasonal(self, row: int) -> bool:
        if not self.vectorized:
            return self._rows[row].seasonal is not None
        return bool(self._active[row]) or row in self._obj

    def observations(self, row: int) -> int:
        if not self.vectorized:
            return self._rows[row].seen
        return int(self._seen[row])

    # ------------------------------------------------------------------
    # Linearity operations (SPLIT / MERGE, Lemma 2)
    # ------------------------------------------------------------------
    def clone_row(self, row: int, ratio: float) -> int:
        """A new row holding the state of ``ratio *`` the row's series."""
        if not self.vectorized:
            dst = self._alloc_row()
            self._rows[dst] = self._rows[row].scaled(ratio)
            return dst
        # The allocation is not reset: every field a reader can observe is
        # written below (seasonal components only become readable once
        # ``_active`` is set, and activation overwrites them wholesale).
        dst = self._alloc_row()
        self._obj.pop(dst, None)
        self._seen[dst] = self._seen[row]
        ewma = self._ewma[row]
        self._ewma[dst] = _np.nan if _np.isnan(ewma) else float(ewma) * ratio
        hist = self._hist[row]
        self._hist[dst] = [v * ratio for v in hist] if hist else []
        obj = self._obj.get(row)
        self._active[dst] = False
        if obj is not None:
            self._obj[dst] = obj.scaled(ratio)
        elif self._active[row]:
            self._active[dst] = True
            self._level[dst] = float(self._level[row]) * ratio
            self._trend[dst] = float(self._trend[row]) * ratio
            for buf in self._seasonals:
                buf[dst, :] = buf[row, :] * ratio
            self._phases[dst, :] = self._phases[row, :]
        return dst

    def add_state(self, row: int, other_bank: "ForecasterBank", other_row: int) -> None:
        """Fold another row's state into ``row`` (series addition).

        The source row may live in this bank or another one (standalone
        series merge across banks), vectorized or fallback.
        """
        if not self.vectorized and not other_bank.vectorized:
            self._rows[row].add_state(other_bank._rows[other_row])
            return
        snapshot = other_bank.row_state_dict(other_row)
        if not self.vectorized:
            other = _ScalarRow(self.config)
            other.load_state_dict(snapshot)
            self._rows[row].add_state(other)
            return
        self._fold_snapshot(row, snapshot)

    def _fold_snapshot(self, row: int, snapshot: dict) -> None:
        """Vector-mode :meth:`add_state` against a canonical row snapshot."""
        other_ewma = snapshot["ewma_level"]
        if other_ewma is not None:
            ewma = self._ewma[row]
            if _np.isnan(ewma):
                self._ewma[row] = float(other_ewma)
            else:
                self._ewma[row] = float(ewma) + float(other_ewma)
        self._seen[row] = max(int(self._seen[row]), int(snapshot["seen"]))
        seasonal = snapshot["seasonal"]
        if seasonal is not None:
            self._fold_seasonal(row, seasonal)
        other_hist = snapshot["history"]
        if other_hist:
            mine = self._hist[row]
            theirs = [float(v) for v in other_hist]
            if not mine:
                self._hist[row] = theirs
            else:
                length = max(len(mine), len(theirs))
                padded_mine = [0.0] * (length - len(mine)) + mine
                padded_theirs = [0.0] * (length - len(theirs)) + theirs
                self._hist[row] = [a + b for a, b in zip(padded_mine, padded_theirs)]
        if (
            not self._active[row]
            and row not in self._obj
            and len(self._hist[row]) >= self._min_history
        ):
            self._activate(row)

    def _matches_layout(self, seasonal: dict) -> bool:
        """Whether a seasonal snapshot fits this bank's vector layout exactly."""
        config = self.config
        kind = seasonal.get("kind")
        if self._single:
            return (
                kind == "holt-winters"
                and int(seasonal["season_length"]) == config.season_lengths[0]
                and float(seasonal["alpha"]) == config.alpha
                and float(seasonal["beta"]) == config.beta
                and float(seasonal["gamma"]) == config.gamma
            )
        return (
            kind == "multi-seasonal-holt-winters"
            and tuple(int(p) for p in seasonal["season_lengths"])
            == config.season_lengths
            and tuple(float(w) for w in seasonal["season_weights"]) == self._weights
            and float(seasonal["alpha"]) == config.alpha
            and float(seasonal["beta"]) == config.beta
            and float(seasonal["gamma"]) == config.gamma
        )

    def _fold_seasonal(self, row: int, seasonal: dict) -> None:
        if seasonal.get("level") is None:
            return  # an uninitialized model adds nothing (scalar parity)
        obj = self._obj.get(row)
        if obj is not None:
            obj.add_state(load_seasonal_state(seasonal))
            return
        if not self._matches_layout(seasonal):
            if self._active[row]:
                raise ConfigurationError(
                    "cannot combine forecaster states with different seasonal "
                    "parameters"
                )
            self._obj[row] = load_seasonal_state(seasonal).scaled(1.0)
            return
        np_ = _np
        if not self._active[row]:
            self._active[row] = True
            self._level[row] = float(seasonal["level"])
            self._trend[row] = float(seasonal["trend"])
            if self._single:
                self._seasonals[0][row, :] = seasonal["seasonals"]
                self._phases[row, 0] = int(seasonal["phase"])
            else:
                for k, buf in enumerate(seasonal["seasonals"]):
                    self._seasonals[k][row, :] = buf
                self._phases[row, :] = [int(p) for p in seasonal["phases"]]
            return
        self._level[row] = float(self._level[row]) + float(seasonal["level"])
        self._trend[row] = float(self._trend[row]) + float(seasonal["trend"])
        if self._single:
            buffers = [seasonal["seasonals"]]
            phases = [int(seasonal["phase"])]
        else:
            buffers = seasonal["seasonals"]
            phases = [int(p) for p in seasonal["phases"]]
        for k, (buf, other_phase) in enumerate(zip(buffers, phases)):
            p = self.config.season_lengths[k]
            shift = (other_phase - int(self._phases[row, k])) % p
            aligned = np_.roll(np_.asarray(buf, dtype=np_.float64), -shift)
            self._seasonals[k][row, :] = self._seasonals[k][row, :] + aligned

    def split_row(self, row: int, ratio: float) -> int:
        """SPLIT ``row`` in place: a new row takes ``ratio`` of its state and
        ``row`` keeps the complementary ``1 - ratio`` share.

        Arithmetic is exactly ``clone_row(row, ratio)`` followed by replacing
        ``row`` with ``clone_row(row, 1 - ratio)`` — the historical two-clone
        sequence of ADA's split cascade — without the extra allocation and
        copy, so results are bit-for-bit identical.
        """
        if not self.vectorized:
            dst = self._alloc_row()
            source = self._rows[row]
            self._rows[dst] = source.scaled(ratio)
            self._rows[row] = source.scaled(1.0 - ratio)
            return dst
        dst = self._alloc_row()
        self._obj.pop(dst, None)
        if self._single and row not in self._obj:
            kernels = load_kernels()
            if kernels is not None:
                # Compiled tier: the array side of the split in one call
                # (same arithmetic, see _implmodule.c); warm-up history
                # lists are scaled here either way.
                hist = self._hist[row]
                if hist:
                    krest = 1.0 - ratio
                    self._hist[dst] = [v * ratio for v in hist]
                    self._hist[row] = [v * krest for v in hist]
                else:
                    self._hist[dst] = []
                kernels.split_row_state(
                    row,
                    dst,
                    ratio,
                    self._ewma,
                    self._seen,
                    self._active,
                    self._level,
                    self._trend,
                    self._seasonals[0],
                    self._phases,
                    self._phases.shape[1],
                )
                return dst
        seen = self._seen
        ewma_col = self._ewma
        seen[dst] = seen[row]
        ewma = float(ewma_col[row])
        rest = 1.0 - ratio
        if ewma != ewma:  # nan: no observations yet
            ewma_col[dst] = _np.nan
        else:
            ewma_col[dst] = ewma * ratio
            ewma_col[row] = ewma * rest
        hist = self._hist[row]
        if hist:
            self._hist[dst] = [v * ratio for v in hist]
            self._hist[row] = [v * rest for v in hist]
        else:
            self._hist[dst] = []
        obj = self._obj.get(row)
        active = self._active
        active[dst] = False
        if obj is not None:
            self._obj[dst] = obj.scaled(ratio)
            self._obj[row] = obj.scaled(rest)
        elif active[row]:
            active[dst] = True
            level_col = self._level
            trend_col = self._trend
            level = float(level_col[row])
            trend = float(trend_col[row])
            level_col[dst] = level * ratio
            level_col[row] = level * rest
            trend_col[dst] = trend * ratio
            trend_col[row] = trend * rest
            for buf in self._seasonals:
                src_row = buf[row, :]
                buf[dst, :] = src_row * ratio
                buf[row, :] = src_row * rest
            self._phases[dst, :] = self._phases[row, :]
        return dst

    def split_rows_many(
        self, rows: Sequence[int], ratios: Sequence[float]
    ) -> list[int]:
        """Batched :meth:`split_row` over *distinct* donor ``rows``.

        Returns the new rows (one per donor, each holding its ``ratio``
        share) with the donors scaled in place to the complementary shares.
        Donors must be unique within one call; rows with warm-up history or
        object-overflow state fall back to the scalar :meth:`split_row`
        (identical values, per-row speed).
        """
        if not self.vectorized or len(rows) < 2:
            return [self.split_row(row, ratio) for row, ratio in zip(rows, ratios)]
        dsts: list[int] = [-1] * len(rows)
        vec_pos: list[int] = []
        for pos, row in enumerate(rows):
            if self._hist[row] or row in self._obj:
                dsts[pos] = self.split_row(row, ratios[pos])
            else:
                vec_pos.append(pos)
        if not vec_pos:
            return dsts
        if len(vec_pos) < 4 or (self._single and load_kernels() is not None):
            # Below the gather/scatter crossover the per-row op is faster —
            # and on the compiled tier the split kernel wins at any size.
            # Canonical row states are identical either way (the batched
            # route differs only in unreadable stale-slot writes).
            for pos in vec_pos:
                dsts[pos] = self.split_row(rows[pos], ratios[pos])
            return dsts
        np_ = _np
        for pos in vec_pos:
            dst = self._alloc_row()
            self._obj.pop(dst, None)
            self._hist[dst] = []
            dsts[pos] = dst
        src_idx = np_.array([rows[pos] for pos in vec_pos], dtype=np_.intp)
        dst_idx = np_.array([dsts[pos] for pos in vec_pos], dtype=np_.intp)
        r = np_.array([ratios[pos] for pos in vec_pos], dtype=np_.float64)
        r_rest = 1.0 - r
        self._seen[dst_idx] = self._seen[src_idx]
        ewma = self._ewma[src_idx]
        # nan (no observations) propagates through the multiply, matching the
        # explicit nan branch of the scalar op.
        self._ewma[dst_idx] = ewma * r
        self._ewma[src_idx] = np_.where(np_.isnan(ewma), ewma, ewma * r_rest)
        active = self._active[src_idx]
        self._active[dst_idx] = active
        # Inactive donors carry stale values in the seasonal arrays; scaling
        # them is harmless (they are unreadable until activation overwrites
        # them) and keeps the kernel mask-free.
        level = self._level[src_idx]
        trend = self._trend[src_idx]
        self._level[dst_idx] = level * r
        self._level[src_idx] = level * r_rest
        self._trend[dst_idx] = trend * r
        self._trend[src_idx] = trend * r_rest
        rc = r[:, None]
        rc_rest = r_rest[:, None]
        for buf in self._seasonals:
            block = buf[src_idx, :]
            buf[dst_idx, :] = block * rc
            buf[src_idx, :] = block * rc_rest
        self._phases[dst_idx, :] = self._phases[src_idx, :]
        return dsts

    def _fold_direct(self, dst: int, src: int) -> None:
        """Scalar same-bank fold of ``src`` into ``dst`` (vector layout only).

        Exactly the arithmetic of :meth:`_fold_snapshot` against ``src``'s
        canonical snapshot, evaluated straight off the arrays (warm-up
        histories included) — callers guarantee neither row has
        object-overflow state.
        """
        if self._single and not self._hist[src]:
            kernels = load_kernels()
            if kernels is not None:
                # Compiled tier: EWMA sum, seen max and the phase-aligned
                # component fold (same arithmetic, see _implmodule.c); the
                # source carries no warm-up history, so only the activation
                # check on the destination remains.
                kernels.fold_row_steady(
                    dst,
                    src,
                    self.config.season_lengths[0],
                    self._ewma,
                    self._seen,
                    self._active,
                    self._level,
                    self._trend,
                    self._seasonals[0],
                    self._phases,
                    self._phases.shape[1],
                )
                if (
                    not self._active[dst]
                    and dst not in self._obj
                    and len(self._hist[dst]) >= self._min_history
                ):
                    self._activate(dst)
                return
        np_ = _np
        s_ewma = self._ewma[src]
        if not np_.isnan(s_ewma):
            d_ewma = self._ewma[dst]
            if np_.isnan(d_ewma):
                self._ewma[dst] = float(s_ewma)
            else:
                self._ewma[dst] = float(d_ewma) + float(s_ewma)
        if self._seen[src] > self._seen[dst]:
            self._seen[dst] = self._seen[src]
        if self._active[src]:
            if not self._active[dst]:
                self._active[dst] = True
                self._level[dst] = self._level[src]
                self._trend[dst] = self._trend[src]
                for buf in self._seasonals:
                    buf[dst, :] = buf[src, :]
                self._phases[dst, :] = self._phases[src, :]
            else:
                self._level[dst] = float(self._level[dst]) + float(self._level[src])
                self._trend[dst] = float(self._trend[dst]) + float(self._trend[src])
                for k, (buf, p) in enumerate(
                    zip(self._seasonals, self.config.season_lengths)
                ):
                    shift = (int(self._phases[src, k]) - int(self._phases[dst, k])) % p
                    if shift == 0:
                        buf[dst, :] += buf[src, :]
                    else:
                        # roll(src, -shift)[j] == src[(j + shift) % p], added
                        # as two contiguous slices (same element-wise sums).
                        split_at = p - shift
                        buf[dst, :split_at] += buf[src, shift:]
                        buf[dst, split_at:] += buf[src, :shift]
        theirs = self._hist[src]
        if theirs:
            mine = self._hist[dst]
            if not mine:
                self._hist[dst] = list(theirs)
            else:
                length = max(len(mine), len(theirs))
                padded_mine = [0.0] * (length - len(mine)) + mine
                padded_theirs = [0.0] * (length - len(theirs)) + list(theirs)
                self._hist[dst] = [
                    a + b for a, b in zip(padded_mine, padded_theirs)
                ]
        if (
            not self._active[dst]
            and dst not in self._obj
            and len(self._hist[dst]) >= self._min_history
        ):
            self._activate(dst)

    def fold_row(self, dst: int, src: int) -> None:
        """Fold ``src`` into ``dst`` and free ``src`` (one MERGE pair).

        The single-pair form of :meth:`merge_rows_many`: ADA's apply loop
        uses it inline because real cascades rarely accumulate enough
        same-phase folds to amortize the batched gather/scatter kernels.
        """
        if not self.vectorized or src in self._obj or dst in self._obj:
            self.add_state(dst, self, src)
        else:
            self._fold_direct(dst, src)
        self.free_row(src)

    def merge_rows_many(
        self, dst_rows: Sequence[int], src_rows: Sequence[int]
    ) -> None:
        """Batched MERGE: fold each ``src`` row into its ``dst`` row and free
        the sources.

        ``dst_rows`` must be unique within one call (the caller batches folds
        so that no destination repeats — repeated destinations must be folded
        in cascade order across calls).  Pairs whose source carries warm-up
        history or object-overflow state fall back to the scalar
        :meth:`add_state`; values are bit-identical either way.
        """
        if not self.vectorized:
            for dst, src in zip(dst_rows, src_rows):
                self.add_state(dst, self, src)
                self.free_row(src)
            return
        vec_pos: list[int] = []
        for pos, (dst, src) in enumerate(zip(dst_rows, src_rows)):
            if src in self._obj or dst in self._obj:
                self.add_state(dst, self, src)
                self.free_row(src)
            elif self._hist[src]:
                # Warm-up histories are Python lists either way; the direct
                # fold handles them without the snapshot round trip.
                self._fold_direct(dst, src)
                self.free_row(src)
            else:
                vec_pos.append(pos)
        if not vec_pos:
            return
        if len(vec_pos) < 4 or (self._single and load_kernels() is not None):
            # Below the gather/scatter crossover — or on the compiled tier,
            # where the per-pair fold kernel beats the batched fancy
            # indexing at any size: fold the pairs directly on scalar reads
            # (no canonical-snapshot round trip), same values.
            for pos in vec_pos:
                self._fold_direct(dst_rows[pos], src_rows[pos])
                self.free_row(src_rows[pos])
            return
        np_ = _np
        dst_idx = np_.array([dst_rows[pos] for pos in vec_pos], dtype=np_.intp)
        src_idx = np_.array([src_rows[pos] for pos in vec_pos], dtype=np_.intp)
        d_ewma = self._ewma[dst_idx]
        s_ewma = self._ewma[src_idx]
        self._ewma[dst_idx] = np_.where(
            np_.isnan(s_ewma),
            d_ewma,
            np_.where(np_.isnan(d_ewma), s_ewma, d_ewma + s_ewma),
        )
        self._seen[dst_idx] = np_.maximum(self._seen[dst_idx], self._seen[src_idx])
        s_active = self._active[src_idx]
        d_active = self._active[dst_idx]
        adopt = s_active & ~d_active
        if adopt.any():
            a_d = dst_idx[adopt]
            a_s = src_idx[adopt]
            self._level[a_d] = self._level[a_s]
            self._trend[a_d] = self._trend[a_s]
            for buf in self._seasonals:
                buf[a_d, :] = buf[a_s, :]
            self._phases[a_d, :] = self._phases[a_s, :]
            self._active[a_d] = True
        both = s_active & d_active
        if both.any():
            b_d = dst_idx[both]
            b_s = src_idx[both]
            self._level[b_d] = self._level[b_d] + self._level[b_s]
            self._trend[b_d] = self._trend[b_d] + self._trend[b_s]
            for k, (buf, p) in enumerate(
                zip(self._seasonals, self.config.season_lengths)
            ):
                shift = (self._phases[b_s, k] - self._phases[b_d, k]) % p
                cols = (np_.arange(p)[None, :] + shift[:, None]) % p
                aligned = buf[b_s[:, None], cols]
                buf[b_d, :] = buf[b_d, :] + aligned
        for pos in vec_pos:
            self.free_row(src_rows[pos])

    # ------------------------------------------------------------------
    # Canonical (pre-bank) checkpoint format
    # ------------------------------------------------------------------
    def row_state_dict(self, row: int) -> dict:
        """The row's state in the canonical per-path forecaster format."""
        if not self.vectorized:
            return self._rows[row].state_dict()
        obj = self._obj.get(row)
        if obj is not None:
            seasonal = obj.state_dict()
        elif self._active[row]:
            config = self.config
            if self._single:
                seasonal = {
                    "kind": "holt-winters",
                    "alpha": config.alpha,
                    "beta": config.beta,
                    "gamma": config.gamma,
                    "season_length": config.season_lengths[0],
                    "level": float(self._level[row]),
                    "trend": float(self._trend[row]),
                    "seasonals": self._seasonals[0][row, :].tolist(),
                    "phase": int(self._phases[row, 0]),
                }
            else:
                seasonal = {
                    "kind": "multi-seasonal-holt-winters",
                    "alpha": config.alpha,
                    "beta": config.beta,
                    "gamma": config.gamma,
                    "season_lengths": list(config.season_lengths),
                    "season_weights": list(self._weights),
                    "level": float(self._level[row]),
                    "trend": float(self._trend[row]),
                    "seasonals": [buf[row, :].tolist() for buf in self._seasonals],
                    "phases": self._phases[row, :].tolist(),
                }
        else:
            seasonal = None
        ewma = self._ewma[row]
        hist = self._hist[row]
        return {
            "ewma_level": None if _np.isnan(ewma) else float(ewma),
            "seen": int(self._seen[row]),
            "history": list(hist) if hist else [],
            "seasonal": seasonal,
        }

    def load_row_state(self, row: int, state: dict) -> None:
        """Restore a *fresh* row from :meth:`row_state_dict` output."""
        if not self.vectorized:
            self._rows[row].load_state_dict(state)
            return
        level = state["ewma_level"]
        if level is not None:
            self._ewma[row] = float(level)
        self._seen[row] = int(state["seen"])
        self._hist[row] = [float(v) for v in state["history"]]
        seasonal = state["seasonal"]
        if seasonal is None:
            return
        if not self._matches_layout(seasonal):
            self._obj[row] = load_seasonal_state(seasonal)
            return
        if seasonal["level"] is None:
            # A stored-but-uninitialized model cannot arise from this bank's
            # own snapshots; hold it as an object to preserve it faithfully.
            self._obj[row] = load_seasonal_state(seasonal)
            return
        model = load_seasonal_state(seasonal)
        self._adopt_model(row, model)


__all__ = [
    "ForecasterBank",
    "HAS_VECTOR_BACKEND",
    "OBSERVE_VECTOR_MIN_ROWS",
    "VECTOR_MIN_ROWS",
    "load_seasonal_state",
]
