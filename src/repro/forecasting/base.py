"""Forecaster interface shared by the time-series models.

Every model in :mod:`repro.forecasting` follows the same contract, which is
what the ADA/STA algorithms rely on to keep the per-heavy-hitter forecast
state updatable in constant time:

* ``initialize(history)`` -- fit the starting state from a history series;
* ``forecast()`` -- the one-step-ahead prediction for the next observation;
* ``update(value)`` -- fold in the next actual observation and return the
  forecast that had been made for it.
"""

from __future__ import annotations

import abc
from typing import Sequence


class Forecaster(abc.ABC):
    """One-step-ahead forecaster with online constant-time updates."""

    @abc.abstractmethod
    def initialize(self, history: Sequence[float]) -> None:
        """Fit the model's starting state from ``history`` (oldest first)."""

    @abc.abstractmethod
    def forecast(self) -> float:
        """Forecast for the next (not yet observed) value."""

    @abc.abstractmethod
    def update(self, value: float) -> float:
        """Observe ``value``; return the forecast that was made for it."""

    @property
    @abc.abstractmethod
    def min_history(self) -> int:
        """Minimum history length required by :meth:`initialize`."""

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run(self, series: Sequence[float]) -> list[float]:
        """Initialize on the first ``min_history`` points, then forecast the rest.

        Returns the list of one-step-ahead forecasts aligned with
        ``series[min_history:]``.  Useful for offline evaluation and parameter
        selection (the paper picks Holt-Winters parameters by minimizing the
        mean squared forecast error offline).
        """
        split = self.min_history
        self.initialize(series[:split])
        forecasts: list[float] = []
        for value in series[split:]:
            forecasts.append(self.update(value))
        return forecasts
