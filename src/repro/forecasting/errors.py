"""Forecast error metrics and offline parameter selection.

The paper selects Holt-Winters smoothing parameters offline by minimizing the
mean squared forecast error on a training window (Section VII, "System
parameters").  This module provides the error metrics and a small grid-search
helper used by the benchmarks and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.forecasting.base import Forecaster


def mean_squared_error(actual: Sequence[float], forecast: Sequence[float]) -> float:
    """Mean of squared forecast errors over aligned series."""
    _check_aligned(actual, forecast)
    if not actual:
        return 0.0
    return sum((a - f) ** 2 for a, f in zip(actual, forecast)) / len(actual)


def mean_absolute_error(actual: Sequence[float], forecast: Sequence[float]) -> float:
    """Mean of absolute forecast errors over aligned series."""
    _check_aligned(actual, forecast)
    if not actual:
        return 0.0
    return sum(abs(a - f) for a, f in zip(actual, forecast)) / len(actual)


def mean_absolute_percentage_error(
    actual: Sequence[float], forecast: Sequence[float], epsilon: float = 1e-9
) -> float:
    """MAPE with an epsilon floor to tolerate zero actual values."""
    _check_aligned(actual, forecast)
    if not actual:
        return 0.0
    return sum(
        abs(a - f) / max(abs(a), epsilon) for a, f in zip(actual, forecast)
    ) / len(actual)


def _check_aligned(actual: Sequence[float], forecast: Sequence[float]) -> None:
    if len(actual) != len(forecast):
        raise ConfigurationError(
            f"actual ({len(actual)}) and forecast ({len(forecast)}) series "
            f"must have the same length"
        )


@dataclass(frozen=True)
class GridSearchResult:
    """Best parameter combination found by :func:`grid_search_parameters`."""

    params: dict[str, float]
    score: float
    evaluated: int


def grid_search_parameters(
    series: Sequence[float],
    factory: Callable[..., Forecaster],
    grid: dict[str, Iterable[float]],
    metric: Callable[[Sequence[float], Sequence[float]], float] = mean_squared_error,
) -> GridSearchResult:
    """Pick the forecaster parameters minimizing ``metric`` on ``series``.

    Parameters
    ----------
    series:
        Training series (oldest first).  Each candidate model is initialized
        on its ``min_history`` prefix and evaluated on one-step-ahead
        forecasts for the remainder.
    factory:
        Callable building a fresh forecaster from keyword parameters, e.g.
        ``lambda alpha, gamma: HoltWintersForecaster(alpha=alpha, gamma=gamma,
        season_length=96)``.
    grid:
        Mapping from parameter name to the candidate values to sweep.
    metric:
        Error metric to minimize.
    """
    if not grid:
        raise ConfigurationError("grid_search_parameters needs at least one parameter")
    names = sorted(grid)
    best: GridSearchResult | None = None
    evaluated = 0
    for values in product(*(list(grid[name]) for name in names)):
        params = dict(zip(names, values))
        model = factory(**params)
        if len(series) <= model.min_history:
            raise ConfigurationError(
                f"training series of length {len(series)} is too short for a "
                f"model needing {model.min_history} history points"
            )
        forecasts = model.run(series)
        score = metric(series[model.min_history:], forecasts)
        evaluated += 1
        if best is None or score < best.score:
            best = GridSearchResult(params=params, score=score, evaluated=evaluated)
    assert best is not None
    return GridSearchResult(best.params, best.score, evaluated)
