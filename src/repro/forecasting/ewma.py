"""Exponentially weighted moving average forecaster.

The paper uses EWMA twice: as the simple (non-seasonal) baseline forecaster
discussed in Section VI, and as the smoothing behind the ``EWMA`` split rule
and the split-error analysis of Fig. 9 (``F[t] = α T[t-1] + (1-α) F[t-1]``).
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError, NotEnoughHistoryError
from repro.forecasting.base import Forecaster


class EWMAForecaster(Forecaster):
    """One-step-ahead EWMA forecast.

    Parameters
    ----------
    alpha:
        Smoothing rate in (0, 1].  Higher values weight recent observations
        more heavily.
    """

    def __init__(self, alpha: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._level: float | None = None

    @property
    def min_history(self) -> int:
        return 1

    @property
    def level(self) -> float | None:
        """Current smoothed level (``None`` before initialization)."""
        return self._level

    def initialize(self, history: Sequence[float]) -> None:
        if len(history) < self.min_history:
            raise NotEnoughHistoryError(self.min_history, len(history))
        self._level = float(history[0])
        for value in history[1:]:
            self.update(value)

    def forecast(self) -> float:
        if self._level is None:
            raise NotEnoughHistoryError(self.min_history, 0)
        return self._level

    def update(self, value: float) -> float:
        if self._level is None:
            self._level = float(value)
            return float(value)
        predicted = self._level
        self._level = self.alpha * float(value) + (1.0 - self.alpha) * self._level
        return predicted


def ewma_series(values: Sequence[float], alpha: float, initial: float | None = None) -> list[float]:
    """Exponentially smoothed series of ``values``.

    ``result[i]`` is the smoothed estimate after observing ``values[:i+1]``.
    This is the quantity the ``EWMA`` split rule maintains per node.
    """
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    smoothed: list[float] = []
    level = initial
    for value in values:
        level = float(value) if level is None else alpha * float(value) + (1 - alpha) * level
        smoothed.append(level)
    return smoothed


def split_bias_relative_error(
    alpha: float, bias: float, horizon: int, actual: Sequence[float] | None = None
) -> list[float]:
    """Relative forecast error after a biased split, per the paper's Eq. (1)-(2).

    A split at time ``t`` perturbs the forecast by ``bias`` (ξ).  With EWMA
    smoothing the perturbation decays as ``(1-α)^(k-1)``, so the relative
    error ``RE[t+k]`` decreases exponentially in ``k`` (Fig. 9).

    Parameters
    ----------
    alpha:
        EWMA smoothing rate.
    bias:
        Initial forecast bias ξ, in the same units as the series.
    horizon:
        Number of iterations k to evaluate (k = 1..horizon).
    actual:
        The true series ``T[t+1..t+horizon]``.  Defaults to a constant series
        of ones, matching the figure's setting ``T[i] = 1``.

    Returns
    -------
    list of ``RE[t+k]`` for k = 1..horizon.
    """
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    if actual is None:
        actual = [1.0] * horizon
    if len(actual) < horizon:
        raise ConfigurationError("actual series shorter than the requested horizon")
    # Unbiased and biased forecasts evolve with identical smoothing of the
    # same actual values, so their difference is exactly (1-alpha)^(k-1) * bias.
    errors: list[float] = []
    true_forecast = float(actual[0])
    biased_forecast = true_forecast + bias
    for k in range(1, horizon + 1):
        relative = abs(biased_forecast - true_forecast) / abs(true_forecast) if true_forecast else float("inf")
        errors.append(relative)
        value = float(actual[k - 1])
        true_forecast = alpha * value + (1 - alpha) * true_forecast
        biased_forecast = alpha * value + (1 - alpha) * biased_forecast
    return errors
