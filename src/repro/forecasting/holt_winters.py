"""Additive Holt-Winters seasonal forecasting (Section VI of the paper).

The paper forecasts each heavy hitter's time series with the additive
Holt-Winters model, decomposing the series into level ``L``, trend ``B`` and
seasonal ``S`` components::

    L[t] = alpha * (T[t] - S[t - p]) + (1 - alpha) * (L[t-1] + B[t-1])
    B[t] = beta  * (L[t] - L[t-1])   + (1 - beta)  * B[t-1]
    S[t] = gamma * (T[t] - L[t])     + (1 - gamma) * S[t - p]
    G[t] = L[t-1] + B[t-1] + S[t - p]

Two properties matter for Tiresias:

* the update is constant time per observation, so online detection stays
  cheap even with a 12-week history; and
* the model is *linear* in the series (the paper's Lemma 2), so the forecast
  of a sum of series is the sum of forecasts.  ADA exploits this when it
  splits or merges heavy-hitter time series: the component state can be
  scaled/added directly instead of being refit.

For CCD the paper combines a daily and a weekly seasonal factor linearly
(``S = xi * S_day + (1 - xi) * S_week``); :class:`MultiSeasonalHoltWinters`
implements that combination.
"""

from __future__ import annotations

from typing import Sequence

from repro._vector import load_numpy
from repro.exceptions import ConfigurationError, NotEnoughHistoryError
from repro.forecasting.base import Forecaster

_np = load_numpy()


def _left_fold_sum(values) -> float:
    """``sum(values)`` with guaranteed left-to-right accumulation.

    ``np.cumsum`` accumulates sequentially (unlike ``np.sum``'s pairwise
    reduction), so its last element is bit-for-bit the Python ``sum`` — the
    fast path keeps model initialization exactly reproducible against the
    scalar implementation.
    """
    if _np is not None:
        arr = _np.asarray(values, dtype=_np.float64)
        return float(_np.cumsum(arr)[-1]) if arr.size else 0.0
    return sum(values)


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


class HoltWintersForecaster(Forecaster):
    """Additive Holt-Winters model with a single seasonal period.

    Parameters
    ----------
    alpha, beta, gamma:
        Smoothing rates for level, trend and seasonality.
    season_length:
        The seasonal period υ in timeunits (e.g. 96 for a daily season with
        15-minute timeunits).
    """

    def __init__(
        self,
        alpha: float = 0.2,
        beta: float = 0.05,
        gamma: float = 0.2,
        season_length: int = 96,
    ):
        _check_rate("alpha", alpha)
        _check_rate("beta", beta)
        _check_rate("gamma", gamma)
        if season_length < 1:
            raise ConfigurationError(f"season_length must be >= 1, got {season_length}")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.season_length = season_length
        self.level: float | None = None
        self.trend: float = 0.0
        #: Circular buffer of seasonal components; ``seasonals[t % p]`` is the
        #: most recent estimate of the seasonal factor for phase ``t % p``.
        self.seasonals: list[float] = []
        self._phase = 0

    # ------------------------------------------------------------------
    # Forecaster interface
    # ------------------------------------------------------------------
    @property
    def min_history(self) -> int:
        """At least two full seasonal cycles, as in the paper's initialization."""
        return 2 * self.season_length

    @property
    def is_initialized(self) -> bool:
        return self.level is not None

    def initialize(self, history: Sequence[float]) -> None:
        """Initialize level, trend and seasonals from ``history`` (oldest first).

        Follows the paper's scheme: the starting level is the mean of the last
        two seasonal cycles, the starting trend is the per-period difference
        between the two cycle means, and the starting seasonal factors are the
        deviations of the last ``2 * season_length`` observations from the
        starting level (later observations overwrite earlier ones for the same
        phase).
        """
        p = self.season_length
        if len(history) < 2 * p:
            raise NotEnoughHistoryError(2 * p, len(history))
        if _np is not None:
            window = _np.asarray(history[-2 * p :], dtype=_np.float64)
            self.level = _left_fold_sum(window) / (2 * p)
            self.trend = (
                _left_fold_sum(window[p:]) - _left_fold_sum(window[:p])
            ) / (p * p)
            # Later observations overwrite earlier ones for the same phase,
            # so the surviving factors are the second cycle's deviations.
            self.seasonals = (window[p:] - self.level).tolist()
        else:
            window = [float(v) for v in history[-2 * p:]]
            first_cycle = window[:p]
            second_cycle = window[p:]
            self.level = sum(window) / (2 * p)
            self.trend = (sum(second_cycle) - sum(first_cycle)) / (p * p)
            self.seasonals = [0.0] * p
            for offset, value in enumerate(window):
                self.seasonals[offset % p] = value - self.level
        self._phase = 0

    def forecast(self) -> float:
        if self.level is None:
            raise NotEnoughHistoryError(self.min_history, 0)
        return self.level + self.trend + self.seasonals[self._phase]

    def update(self, value: float) -> float:
        if self.level is None:
            raise NotEnoughHistoryError(self.min_history, 0)
        predicted = self.forecast()
        value = float(value)
        seasonal = self.seasonals[self._phase]
        previous_level = self.level
        self.level = self.alpha * (value - seasonal) + (1 - self.alpha) * (
            previous_level + self.trend
        )
        self.trend = self.beta * (self.level - previous_level) + (1 - self.beta) * self.trend
        self.seasonals[self._phase] = (
            self.gamma * (value - self.level) + (1 - self.gamma) * seasonal
        )
        self._phase = (self._phase + 1) % self.season_length
        return predicted

    # ------------------------------------------------------------------
    # Linearity (Lemma 2) support for ADA split / merge
    # ------------------------------------------------------------------
    def _require_compatible(self, other: "HoltWintersForecaster") -> None:
        if (
            self.season_length != other.season_length
            or self.alpha != other.alpha
            or self.beta != other.beta
            or self.gamma != other.gamma
        ):
            raise ConfigurationError(
                "cannot combine Holt-Winters states with different parameters"
            )

    def _aligned_seasonals(self, other: "HoltWintersForecaster") -> list[float]:
        """Other's seasonal buffer re-indexed to this model's phase origin.

        Two models tracking series over the same wall-clock timeunits may have
        initialized their circular seasonal buffers at different offsets; what
        must line up when adding states is the seasonal factor of the *next*
        timeunit (``seasonals[phase]``), the one after it, and so on.
        """
        p = self.season_length
        shift = (other._phase - self._phase) % p
        return [other.seasonals[(i + shift) % p] for i in range(p)]

    def scaled(self, factor: float) -> "HoltWintersForecaster":
        """A copy of this model whose state is scaled by ``factor``.

        By Lemma 2 this is the exact state the model would have reached on the
        series ``factor * T``; ADA uses it when splitting a parent's time
        series into children.
        """
        clone = HoltWintersForecaster(self.alpha, self.beta, self.gamma, self.season_length)
        if self.level is not None:
            clone.level = self.level * factor
            clone.trend = self.trend * factor
            clone.seasonals = [s * factor for s in self.seasonals]
            clone._phase = self._phase
        return clone

    def add_state(self, other: "HoltWintersForecaster") -> None:
        """Fold ``other``'s state into this model (in place).

        By Lemma 2 the result is the state the model would have reached on the
        summed series; ADA uses it when merging children into their parent.
        """
        if other.level is None:
            return
        if self.level is None:
            self.level = other.level
            self.trend = other.trend
            self.seasonals = list(other.seasonals)
            self._phase = other._phase
            return
        self._require_compatible(other)
        self.level += other.level
        self.trend += other.trend
        self.seasonals = [
            a + b for a, b in zip(self.seasonals, self._aligned_seasonals(other))
        ]

    def copy(self) -> "HoltWintersForecaster":
        return self.scaled(1.0)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of parameters and smoothing state."""
        return {
            "kind": "holt-winters",
            "alpha": self.alpha,
            "beta": self.beta,
            "gamma": self.gamma,
            "season_length": self.season_length,
            "level": self.level,
            "trend": self.trend,
            "seasonals": list(self.seasonals),
            "phase": self._phase,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "HoltWintersForecaster":
        """Rebuild a model from :meth:`state_dict` output."""
        model = cls(
            alpha=float(state["alpha"]),
            beta=float(state["beta"]),
            gamma=float(state["gamma"]),
            season_length=int(state["season_length"]),
        )
        model.level = None if state["level"] is None else float(state["level"])
        model.trend = float(state["trend"])
        model.seasonals = [float(v) for v in state["seasonals"]]
        model._phase = int(state["phase"])
        return model


class MultiSeasonalHoltWinters(Forecaster):
    """Holt-Winters with two (or more) linearly combined seasonal factors.

    The paper models CCD with ``S = xi * S_day + (1 - xi) * S_week`` where the
    weight ``xi`` is derived from the relative FFT magnitudes of the daily and
    weekly periods.  This class keeps one level/trend pair and one seasonal
    buffer per period; the combined seasonal factor enters the level update
    and the forecast.

    Parameters
    ----------
    season_lengths:
        Seasonal periods in timeunits, e.g. ``(96, 672)`` for daily and weekly
        seasons with 15-minute units.
    season_weights:
        Convex combination weights (must sum to 1).
    """

    def __init__(
        self,
        alpha: float = 0.2,
        beta: float = 0.05,
        gamma: float = 0.2,
        season_lengths: Sequence[int] = (96, 672),
        season_weights: Sequence[float] | None = None,
    ):
        _check_rate("alpha", alpha)
        _check_rate("beta", beta)
        _check_rate("gamma", gamma)
        if not season_lengths:
            raise ConfigurationError("need at least one seasonal period")
        lengths = [int(p) for p in season_lengths]
        if any(p < 1 for p in lengths):
            raise ConfigurationError("seasonal periods must be >= 1")
        if season_weights is None:
            weights = [1.0 / len(lengths)] * len(lengths)
        else:
            weights = [float(w) for w in season_weights]
        if len(weights) != len(lengths):
            raise ConfigurationError("season_weights must match season_lengths")
        if any(w < 0 for w in weights) or abs(sum(weights) - 1.0) > 1e-9:
            raise ConfigurationError("season_weights must be non-negative and sum to 1")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.season_lengths = tuple(lengths)
        self.season_weights = tuple(weights)
        self.level: float | None = None
        self.trend: float = 0.0
        self.seasonals: list[list[float]] = [[0.0] * p for p in lengths]
        self._phases: list[int] = [0] * len(lengths)

    @property
    def min_history(self) -> int:
        return 2 * max(self.season_lengths)

    @property
    def is_initialized(self) -> bool:
        return self.level is not None

    def _combined_seasonal(self) -> float:
        return sum(
            w * buf[phase]
            for w, buf, phase in zip(self.season_weights, self.seasonals, self._phases)
        )

    def initialize(self, history: Sequence[float]) -> None:
        longest = max(self.season_lengths)
        if len(history) < 2 * longest:
            raise NotEnoughHistoryError(2 * longest, len(history))
        if _np is not None:
            window = _np.asarray(history[-2 * longest :], dtype=_np.float64)
            half = window.shape[0] // 2
            self.level = _left_fold_sum(window) / window.shape[0]
            self.trend = (
                _left_fold_sum(window[half:]) - _left_fold_sum(window[:half])
            ) / (half * longest)
            # As in the single-season case: the last cycle's deviations win.
            self.seasonals = [
                (window[-p:] - self.level).tolist() for p in self.season_lengths
            ]
        else:
            window = [float(v) for v in history[-2 * longest:]]
            self.level = sum(window) / len(window)
            first = window[: len(window) // 2]
            second = window[len(window) // 2:]
            self.trend = (sum(second) - sum(first)) / (len(first) * longest)
            self.seasonals = []
            for p in self.season_lengths:
                buf = [0.0] * p
                tail = window[-2 * p:]
                for offset, value in enumerate(tail):
                    buf[offset % p] = value - self.level
                self.seasonals.append(buf)
        self._phases = [0] * len(self.season_lengths)

    def forecast(self) -> float:
        if self.level is None:
            raise NotEnoughHistoryError(self.min_history, 0)
        return self.level + self.trend + self._combined_seasonal()

    def update(self, value: float) -> float:
        if self.level is None:
            raise NotEnoughHistoryError(self.min_history, 0)
        predicted = self.forecast()
        value = float(value)
        seasonal = self._combined_seasonal()
        previous_level = self.level
        self.level = self.alpha * (value - seasonal) + (1 - self.alpha) * (
            previous_level + self.trend
        )
        self.trend = self.beta * (self.level - previous_level) + (1 - self.beta) * self.trend
        residual = value - self.level
        for buf, phase in zip(self.seasonals, self._phases):
            buf[phase] = self.gamma * residual + (1 - self.gamma) * buf[phase]
        self._phases = [
            (phase + 1) % p for phase, p in zip(self._phases, self.season_lengths)
        ]
        return predicted

    # ------------------------------------------------------------------
    # Linearity support (mirrors HoltWintersForecaster)
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "MultiSeasonalHoltWinters":
        clone = MultiSeasonalHoltWinters(
            self.alpha,
            self.beta,
            self.gamma,
            self.season_lengths,
            self.season_weights,
        )
        if self.level is not None:
            clone.level = self.level * factor
            clone.trend = self.trend * factor
            clone.seasonals = [[s * factor for s in buf] for buf in self.seasonals]
            clone._phases = list(self._phases)
        return clone

    def add_state(self, other: "MultiSeasonalHoltWinters") -> None:
        if other.level is None:
            return
        if self.level is None:
            self.level = other.level
            self.trend = other.trend
            self.seasonals = [list(buf) for buf in other.seasonals]
            self._phases = list(other._phases)
            return
        if (
            self.season_lengths != other.season_lengths
            or self.season_weights != other.season_weights
        ):
            raise ConfigurationError(
                "cannot combine multi-seasonal states with different structure"
            )
        self.level += other.level
        self.trend += other.trend
        merged: list[list[float]] = []
        for mine, theirs, p, my_phase, their_phase in zip(
            self.seasonals, other.seasonals, self.season_lengths, self._phases, other._phases
        ):
            shift = (their_phase - my_phase) % p
            aligned = [theirs[(i + shift) % p] for i in range(p)]
            merged.append([a + b for a, b in zip(mine, aligned)])
        self.seasonals = merged

    def copy(self) -> "MultiSeasonalHoltWinters":
        return self.scaled(1.0)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of parameters and smoothing state."""
        return {
            "kind": "multi-seasonal-holt-winters",
            "alpha": self.alpha,
            "beta": self.beta,
            "gamma": self.gamma,
            "season_lengths": list(self.season_lengths),
            "season_weights": list(self.season_weights),
            "level": self.level,
            "trend": self.trend,
            "seasonals": [list(buf) for buf in self.seasonals],
            "phases": list(self._phases),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "MultiSeasonalHoltWinters":
        """Rebuild a model from :meth:`state_dict` output."""
        model = cls(
            alpha=float(state["alpha"]),
            beta=float(state["beta"]),
            gamma=float(state["gamma"]),
            season_lengths=[int(p) for p in state["season_lengths"]],
            season_weights=[float(w) for w in state["season_weights"]],
        )
        model.level = None if state["level"] is None else float(state["level"])
        model.trend = float(state["trend"])
        model.seasonals = [[float(v) for v in buf] for buf in state["seasonals"]]
        model._phases = [int(p) for p in state["phases"]]
        return model
