"""Hierarchical domain substrate (Section III of the paper).

This package provides the additive hierarchy (tree) over which Tiresias
aggregates operational data: node and tree structures, declarative domain
specifications matching the paper's Table II, and builders that expand those
specifications into concrete trees for the synthetic datasets.
"""

from repro.hierarchy.builders import (
    CCD_TICKET_TYPES,
    build_ccd_network_tree,
    build_ccd_trouble_tree,
    build_scd_network_tree,
    build_tree_from_spec,
)
from repro.hierarchy.domain import (
    CANONICAL_DOMAINS,
    CCD_NETWORK_DOMAIN,
    CCD_TROUBLE_DOMAIN,
    SCD_NETWORK_DOMAIN,
    DomainSpec,
    LevelSpec,
)
from repro.hierarchy.index import HierarchyIndex
from repro.hierarchy.node import HierarchyNode
from repro.hierarchy.tree import HierarchyTree, common_ancestor

__all__ = [
    "HierarchyNode",
    "HierarchyTree",
    "HierarchyIndex",
    "common_ancestor",
    "DomainSpec",
    "LevelSpec",
    "CANONICAL_DOMAINS",
    "CCD_TROUBLE_DOMAIN",
    "CCD_NETWORK_DOMAIN",
    "SCD_NETWORK_DOMAIN",
    "CCD_TICKET_TYPES",
    "build_tree_from_spec",
    "build_ccd_trouble_tree",
    "build_ccd_network_tree",
    "build_scd_network_tree",
]
