"""Builders that expand a :class:`~repro.hierarchy.domain.DomainSpec` into a
concrete :class:`~repro.hierarchy.tree.HierarchyTree`.

The paper's hierarchies come from a predefined trouble-category catalogue and
from the ISP's network topology database.  We do not have either, so the
builders create deterministic, reproducible label trees whose shape matches
the spec (Table II), optionally scaled down so that SCD's 2,000-wide first
level stays tractable on a laptop.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.hierarchy.domain import (
    CCD_NETWORK_DOMAIN,
    CCD_TROUBLE_DOMAIN,
    SCD_NETWORK_DOMAIN,
    DomainSpec,
)
from repro.hierarchy.tree import HierarchyTree

#: Labels used for the first level of the CCD trouble hierarchy, taken from
#: the paper's Table I so that the generated ticket-type mix can be reported
#: with the same names.
CCD_TICKET_TYPES: tuple[str, ...] = (
    "TV",
    "All Products",
    "Internet",
    "Wireless",
    "Phone",
    "Email",
    "Remote Control",
    "Provisioning",
    "Other",
)


def _draw_degree(rng: random.Random, typical: int, dispersion: float) -> int:
    """Draw a per-parent branching factor around ``typical``."""
    if dispersion <= 0.0 or typical == 1:
        return typical
    low = max(1, int(round(typical * (1.0 - dispersion))))
    high = max(low, int(round(typical * (1.0 + dispersion))))
    return rng.randint(low, high)


def build_tree_from_spec(
    spec: DomainSpec,
    seed: int = 0,
    scale: float = 1.0,
    max_leaves: Optional[int] = None,
    label_prefixes: Optional[dict[int, str]] = None,
    first_level_labels: Optional[tuple[str, ...]] = None,
) -> HierarchyTree:
    """Build a concrete hierarchy matching ``spec``.

    Parameters
    ----------
    spec:
        The domain shape to expand.
    seed:
        Seed for the degree-dispersion RNG; the same seed always yields the
        same tree.
    scale:
        Multiplier applied to every typical degree, used to shrink very wide
        hierarchies (the SCD first level) for laptop-scale experiments.
    max_leaves:
        Optional hard cap on the number of leaves.  Construction stops adding
        subtrees once the cap is reached.
    label_prefixes:
        Optional map from depth (1-based) to the label prefix used at that
        depth; defaults to the level name from the spec.
    first_level_labels:
        Optional explicit labels for the first level (used by the CCD trouble
        hierarchy to reuse the paper's ticket-type names).
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    rng = random.Random(seed)
    tree = HierarchyTree(root_label=spec.root_label)
    label_prefixes = label_prefixes or {}

    def prefix_for(depth: int) -> str:
        return label_prefixes.get(depth, spec.levels[depth - 1].name)

    def expand(node, depth: int) -> None:
        if max_leaves is not None and tree.num_leaves >= max_leaves:
            return
        if depth > len(spec.levels):
            return
        level = spec.levels[depth - 1]
        typical = max(1, int(round(level.typical_degree * scale)))
        if depth == 1 and first_level_labels:
            labels = list(first_level_labels[:typical])
            while len(labels) < typical:
                labels.append(f"{prefix_for(depth)}-{len(labels):03d}")
        else:
            degree = _draw_degree(rng, typical, level.degree_dispersion)
            labels = [f"{prefix_for(depth)}-{i:03d}" for i in range(degree)]
        for label in labels:
            if max_leaves is not None and tree.num_leaves >= max_leaves:
                return
            child = node.add_child(label)
            tree._node_by_path.setdefault(child.path, child)
            if depth == len(spec.levels):
                tree._leaf_by_path[child.path] = child
            else:
                expand(child, depth + 1)

    expand(tree.root, 1)
    tree.validate()
    tree.freeze_index()
    return tree


def build_ccd_trouble_tree(seed: int = 0, scale: float = 1.0) -> HierarchyTree:
    """The CCD trouble-description hierarchy (5 levels, Table II row 1)."""
    return build_tree_from_spec(
        CCD_TROUBLE_DOMAIN,
        seed=seed,
        scale=scale,
        first_level_labels=CCD_TICKET_TYPES,
        label_prefixes={2: "Class", 3: "Detail", 4: "Resolution"},
    )


def build_ccd_network_tree(
    seed: int = 0, scale: float = 0.2, max_leaves: Optional[int] = 8000
) -> HierarchyTree:
    """The CCD network-path hierarchy (SHO/VHO/IO/CO/DSLAM, Table II row 2).

    The full-size hierarchy has roughly 61*5*6*24 = 43,920 leaves; the default
    ``scale`` keeps the generated tree around a few thousand leaves, which
    preserves the relative widths of the levels while keeping experiments
    fast.  Pass ``scale=1.0`` for the paper-size tree.
    """
    return build_tree_from_spec(
        CCD_NETWORK_DOMAIN, seed=seed, scale=scale, max_leaves=max_leaves
    )


def build_scd_network_tree(
    seed: int = 0, scale: float = 0.05, max_leaves: Optional[int] = 20000
) -> HierarchyTree:
    """The SCD network-path hierarchy (4 levels, Table II row 3).

    The paper's first level has ~2,000 COs; the default scale reduces that to
    ~100 while keeping the 2000:30:6 degree ratios.
    """
    return build_tree_from_spec(
        SCD_NETWORK_DOMAIN, seed=seed, scale=scale, max_leaves=max_leaves
    )
