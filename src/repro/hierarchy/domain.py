"""Declarative description of a hierarchical domain.

A :class:`DomainSpec` captures the *shape* of a hierarchy -- the level names
and the typical branching factor at each level (the paper's Table II) --
without enumerating every node.  The synthetic data generators
(:mod:`repro.datagen`) expand a spec into a concrete
:class:`~repro.hierarchy.tree.HierarchyTree`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LevelSpec:
    """One level of a hierarchical domain.

    Parameters
    ----------
    name:
        Level name (e.g. ``"VHO"``, ``"IO"``, ``"CO"``, ``"DSLAM"``).
    typical_degree:
        Typical number of children each node at the *previous* level has at
        this level.  This matches the paper's Table II convention, where the
        degree at level k is the fan-out from level k to level k+1 nodes.
    degree_dispersion:
        Relative dispersion of the per-parent degree when the generator draws
        actual degrees (0 means every parent has exactly ``typical_degree``
        children).
    """

    name: str
    typical_degree: int
    degree_dispersion: float = 0.25

    def __post_init__(self) -> None:
        if self.typical_degree < 1:
            raise ConfigurationError(
                f"level {self.name!r}: typical_degree must be >= 1, "
                f"got {self.typical_degree}"
            )
        if not 0.0 <= self.degree_dispersion <= 1.0:
            raise ConfigurationError(
                f"level {self.name!r}: degree_dispersion must be in [0, 1]"
            )


@dataclass(frozen=True)
class DomainSpec:
    """Shape of a hierarchical domain.

    The root is implicit; ``levels[k]`` describes the nodes at depth ``k+1``.
    ``depth`` (including the root) is therefore ``len(levels) + 1``.
    """

    name: str
    root_label: str
    levels: tuple[LevelSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigurationError("a DomainSpec needs at least one level")

    @property
    def depth(self) -> int:
        """Number of levels including the root (the paper's "Depth")."""
        return len(self.levels) + 1

    @property
    def typical_degrees(self) -> tuple[int, ...]:
        """Typical degree at each level, Table II style."""
        return tuple(level.typical_degree for level in self.levels)

    def expected_leaf_count(self) -> int:
        """Product of the typical degrees: the nominal number of leaves."""
        count = 1
        for level in self.levels:
            count *= level.typical_degree
        return count

    def level_name(self, depth: int) -> str:
        """Name of the level at tree depth ``depth`` (root is depth 0)."""
        if depth == 0:
            return self.root_label
        if 1 <= depth <= len(self.levels):
            return self.levels[depth - 1].name
        raise ConfigurationError(
            f"domain {self.name!r} has depth {self.depth}; no level at {depth}"
        )


# ----------------------------------------------------------------------
# Canonical domains from the paper (Table II)
# ----------------------------------------------------------------------

#: CCD trouble-description hierarchy: 5 levels, typical degrees 9 / 6 / 3 / 5.
CCD_TROUBLE_DOMAIN = DomainSpec(
    name="ccd-trouble-description",
    root_label="All",
    levels=(
        LevelSpec("Product", 9),
        LevelSpec("TroubleClass", 6),
        LevelSpec("TroubleDetail", 3),
        LevelSpec("Resolution", 5),
    ),
)

#: CCD network-path hierarchy: SHO -> VHO -> IO -> CO -> DSLAM, degrees
#: 61 / 5 / 6 / 24.
CCD_NETWORK_DOMAIN = DomainSpec(
    name="ccd-network-path",
    root_label="SHO",
    levels=(
        LevelSpec("VHO", 61),
        LevelSpec("IO", 5),
        LevelSpec("CO", 6),
        LevelSpec("DSLAM", 24),
    ),
)

#: SCD network-path hierarchy: 4 levels, degrees 2000 / 30 / 6.  The first
#: level degree is scaled down by generators for laptop-size traces; the spec
#: records the paper's reported value.
SCD_NETWORK_DOMAIN = DomainSpec(
    name="scd-network-path",
    root_label="National",
    levels=(
        LevelSpec("CO", 2000),
        LevelSpec("DSLAM", 30),
        LevelSpec("STB", 6),
    ),
)

#: All canonical domains by name, for lookup from configuration files.
CANONICAL_DOMAINS: dict[str, DomainSpec] = {
    spec.name: spec
    for spec in (CCD_TROUBLE_DOMAIN, CCD_NETWORK_DOMAIN, SCD_NETWORK_DOMAIN)
}
