"""Array-indexed hierarchy: vectorized weight accumulation and SHHH.

:class:`HierarchyIndex` freezes a :class:`~repro.hierarchy.tree.HierarchyTree`
into dense arrays — BFS node ids, a parent-id vector, per-depth id groups and
a lexicographic ordering — so that the two per-timeunit hierarchy passes of
the paper become a handful of NumPy kernels:

* :meth:`raw_weights` computes ``A_n`` for every node (Definition 1) with one
  ``bincount`` per level instead of one ancestor walk per counted leaf;
* :meth:`succinct` computes the modified weights ``W_n`` and succinct heavy
  hitter membership (Definition 2) with one bottom-up level sweep.

Exactness: per-timeunit leaf counts are record *counts* — integers — and
sums of integers in float64 are exact (far below 2^53), so the results are
bit-for-bit identical to the scalar reference implementation in
:mod:`repro.core.hhh` regardless of summation order.  The online algorithms
therefore switch freely between this index (NumPy present) and the scalar
functions (fallback) without changing a single detection.
"""

from __future__ import annotations

from typing import Mapping

from repro._types import CategoryPath, Weight
from repro._vector import load_kernels, load_numpy
from repro.hierarchy.tree import HierarchyTree

_np = load_numpy()


class HierarchyIndex:
    """Dense-array view of a hierarchy for the vectorized weight kernels.

    Node ids are BFS (level-order) positions, so the root is id 0 and every
    parent id is smaller than its children's.  Requires NumPy; callers keep
    the scalar :mod:`repro.core.hhh` path when :data:`available` is False.
    """

    def __init__(self, tree: HierarchyTree):
        if _np is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("HierarchyIndex requires NumPy")
        nodes = list(tree.iter_level_order())
        for node_id, node in enumerate(nodes):
            node.index = node_id
        self.tree = tree
        self.num_nodes = len(nodes)
        self.paths: list[CategoryPath] = [node.path for node in nodes]
        self.path_to_id: dict[CategoryPath, int] = {
            node.path: node.index for node in nodes
        }
        self.parent = _np.array(
            [0 if node.parent is None else node.parent.index for node in nodes],
            dtype=_np.intp,
        )
        depths = [node.depth for node in nodes]
        max_depth = max(depths)
        #: Depth of every node (root is 0), as a dense integer vector.
        self.depths = _np.array(depths, dtype=_np.intp)
        self.max_depth = max_depth
        #: Node ids grouped by depth, deepest level first (depth >= 1).
        self.levels_deepest_first = [
            _np.array(
                [i for i, d in enumerate(depths) if d == depth], dtype=_np.intp
            )
            for depth in range(max_depth, 0, -1)
        ]
        #: All node ids ordered by lexicographic path order; masking this with
        #: a boolean membership vector yields ids in ``sorted(paths)`` order.
        self.lex_order = _np.array(
            sorted(range(self.num_nodes), key=lambda i: self.paths[i]),
            dtype=_np.intp,
        )
        #: All node ids ordered by ``(depth, path)`` — the deterministic
        #: cascade order of ADA's adaptation (``sorted(key=(len(p), p))``).
        self.depth_lex_order = _np.array(
            sorted(range(self.num_nodes), key=lambda i: (depths[i], self.paths[i])),
            dtype=_np.intp,
        )
        #: ``ancestors[i, d]`` is the id of node ``i``'s ancestor at depth
        #: ``d`` (``d <= depth(i)``; entries beyond a node's depth repeat the
        #: node itself).  Lets the adaptation cascade resolve "the child of
        #: ``current`` on the path to ``target``" with one integer lookup.
        ancestors = _np.empty((self.num_nodes, max_depth + 1), dtype=_np.intp)
        for i, node in enumerate(nodes):
            chain = [i]
            while nodes[chain[-1]].parent is not None:
                chain.append(nodes[chain[-1]].parent.index)
            chain.reverse()  # root .. self
            for d in range(max_depth + 1):
                ancestors[i, d] = chain[min(d, len(chain) - 1)]
        self.ancestors = ancestors
        #: Per-node child ids as plain int lists, ascending (== the order of
        #: ``children.values()`` because BFS assigns ids in child-insertion
        #: order per parent).  Python ints: the adaptation planner iterates
        #: these in tight loops.
        self.child_ids: list[list[int]] = [
            [c.index for c in node.children.values()] for node in nodes
        ]
        # Flattened level layout + scratch vectors for the compiled sweep
        # kernels; built lazily on first compiled-tier close.
        self._compiled_layout_cache = None

    def _compiled_layout(self):
        """``(order, bounds, scratch_a, scratch_b)`` for the C sweep kernels.

        ``order`` concatenates :attr:`levels_deepest_first`; ``bounds`` holds
        the level boundaries (L+1 entries).  The two scratch vectors are
        reused across calls — the kernels zero them before use.
        """
        cached = self._compiled_layout_cache
        if cached is None:
            if self.levels_deepest_first:
                order = _np.concatenate(self.levels_deepest_first)
            else:
                order = _np.empty(0, dtype=_np.intp)
            sizes = [len(ids) for ids in self.levels_deepest_first]
            bounds = _np.zeros(len(sizes) + 1, dtype=_np.intp)
            bounds[1:] = _np.cumsum(sizes, dtype=_np.intp)
            cached = self._compiled_layout_cache = (
                _np.ascontiguousarray(order, dtype=_np.intp),
                bounds,
                _np.empty(self.num_nodes),
                _np.empty(self.num_nodes),
            )
        return cached

    # ------------------------------------------------------------------
    # Definition 1: raw weights
    # ------------------------------------------------------------------
    def raw_weights(self, leaf_counts: Mapping[CategoryPath, Weight]):
        """Dense ``A_n`` vector for one timeunit of per-leaf counts.

        Unknown paths are ignored and counts attached to interior paths are
        credited to that aggregate directly, exactly like the scalar
        :func:`repro.core.hhh.accumulate_raw_weights`.
        """
        raw = _np.zeros(self.num_nodes)
        lookup = self.path_to_id.get
        for path, count in leaf_counts.items():
            if count == 0:
                continue
            node_id = lookup(path if isinstance(path, tuple) else tuple(path))
            if node_id is not None:
                raw[node_id] += float(count)
        return self._accumulate_up(raw)

    def raw_weights_dense(
        self, base_vec, leaf_counts: "Mapping[CategoryPath, Weight] | None" = None
    ):
        """``A_n`` from a per-node direct-count vector (dense ingest path).

        ``base_vec`` is a float64 vector of this timeunit's direct counts per
        node id, as accumulated by the columnar ingest path with one
        ``bincount`` per run (codes whose paths are not in the tree were
        dropped at the code→id mapping stage, exactly like the dict path
        ignores unknown paths).  ``leaf_counts`` optionally folds a dict
        remainder in — the open-unit ``Counter`` carried across batch
        boundaries.  Counts are integers, so the result is bit-identical to
        :meth:`raw_weights` on the equivalent dict regardless of which route
        each count arrived by.  The vector is consumed (mutated and
        returned).
        """
        if leaf_counts:
            lookup = self.path_to_id.get
            for path, count in leaf_counts.items():
                if count == 0:
                    continue
                node_id = lookup(path if isinstance(path, tuple) else tuple(path))
                if node_id is not None:
                    base_vec[node_id] += float(count)
        return self._accumulate_up(base_vec)

    def _accumulate_up(self, raw):
        """Bottom-up level sweep adding each level's weights onto parents."""
        kernels = load_kernels()
        if kernels is not None:
            order, bounds, scratch_a, _ = self._compiled_layout()
            kernels.accumulate_up(raw, self.parent, order, bounds, scratch_a)
            return raw
        for ids in self.levels_deepest_first:
            raw += _np.bincount(
                self.parent[ids], weights=raw[ids], minlength=self.num_nodes
            )
        return raw

    def dictionary_ids(self, dictionary):
        """Node id of every path in a category string-dictionary (-1 unknown).

        The columnar ingest path maps a batch's code column to node ids once
        per dictionary via this vector, after which per-run aggregation is a
        single ``bincount`` over integer codes.
        """
        lookup = self.path_to_id.get
        return _np.array(
            [lookup(tuple(path), -1) for path in dictionary], dtype=_np.intp
        )

    # ------------------------------------------------------------------
    # Definition 2: succinct heavy hitters
    # ------------------------------------------------------------------
    def succinct(self, raw, theta: float):
        """``(modified, heavy)`` dense vectors for a raw-weight vector.

        One bottom-up level sweep: a node's modified weight is its own count
        plus the modified weights of its non-heavy children; it is heavy when
        that reaches ``theta``.  Matches :func:`repro.core.hhh.compute_shhh`
        exactly (integer arithmetic, see module docstring).
        """
        modified = raw.copy()
        heavy = _np.zeros(self.num_nodes, dtype=bool)
        kernels = load_kernels()
        if kernels is not None:
            order, bounds, scratch_a, scratch_b = self._compiled_layout()
            kernels.succinct_sweep(
                raw, modified, heavy, self.parent, order, bounds,
                float(theta), scratch_a, scratch_b,
            )
            return modified, heavy
        child_ids = None
        for ids in self.levels_deepest_first:
            if child_ids is not None:
                parents = self.parent[child_ids]
                child_raw = _np.bincount(
                    parents, weights=raw[child_ids], minlength=self.num_nodes
                )
                child_modified = _np.bincount(
                    parents,
                    weights=_np.where(
                        heavy[child_ids], 0.0, modified[child_ids]
                    ),
                    minlength=self.num_nodes,
                )
                modified[ids] = raw[ids] - child_raw[ids] + child_modified[ids]
            heavy[ids] = modified[ids] >= theta
            child_ids = ids
        if self.levels_deepest_first:
            child_ids = self.levels_deepest_first[-1]  # depth-1 nodes
            child_raw = _np.bincount(
                self.parent[child_ids], weights=raw[child_ids], minlength=self.num_nodes
            )
            child_modified = _np.bincount(
                self.parent[child_ids],
                weights=_np.where(heavy[child_ids], 0.0, modified[child_ids]),
                minlength=self.num_nodes,
            )
            modified[0] = raw[0] - child_raw[0] + child_modified[0]
        heavy[0] = modified[0] >= theta
        return modified, heavy

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def sorted_ids(self, member_mask) -> list[int]:
        """Ids whose mask bit is set, in lexicographic path order."""
        return self.lex_order[member_mask[self.lex_order]].tolist()

    def depth_lex_ids(self, member_mask) -> list[int]:
        """Ids whose mask bit is set, in ``(depth, path)`` cascade order."""
        return self.depth_lex_order[member_mask[self.depth_lex_order]].tolist()

    def nearest_ancestor_in(self, node_id: int, mask) -> "int | None":
        """Closest strict ancestor of ``node_id`` whose mask bit is set.

        The integer twin of the tuple-slicing ancestor walks in
        :mod:`repro.core.ada` (root included, the node itself excluded).
        """
        parent = self.parent
        current = int(node_id)
        while current != 0:
            current = int(parent[current])
            if mask[current]:
                return current
        return None


#: Whether the vectorized hierarchy kernels can be used.
available = _np is not None

__all__ = ["HierarchyIndex", "available"]
