"""Tree node for hierarchical operational-data domains.

A :class:`HierarchyNode` represents one aggregate in the paper's hierarchical
domain (Section III): a trouble-description category, or a network location
such as a VHO / IO / CO / DSLAM.  Nodes carry only structural information
(label, parent, children, depth); per-timeunit weights live in the algorithm
state (see :mod:`repro.core`), so the same hierarchy object can be shared by
several detectors.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro._types import CategoryPath
from repro.exceptions import HierarchyError


class HierarchyNode:
    """A single node of a hierarchical domain.

    Parameters
    ----------
    label:
        Human readable label of the node (unique among its siblings).
    parent:
        Parent node, or ``None`` for the root.

    Notes
    -----
    The root node has depth ``0`` and an empty :attr:`path`.  Depth ``k``
    corresponds to the paper's "level k" (the root is the "All" / national
    aggregate).
    """

    __slots__ = ("label", "parent", "children", "depth", "_path", "index")

    def __init__(self, label: str, parent: Optional["HierarchyNode"] = None):
        if not label and parent is not None:
            raise HierarchyError("non-root nodes must have a non-empty label")
        self.label = label
        self.parent = parent
        self.children: dict[str, HierarchyNode] = {}
        self.depth = 0 if parent is None else parent.depth + 1
        self._path: CategoryPath = () if parent is None else parent.path + (label,)
        #: Dense integer id assigned by the owning tree (useful for arrays).
        self.index: int = -1

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def path(self) -> CategoryPath:
        """Labels from the root (exclusive) down to this node."""
        return self._path

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add_child(self, label: str) -> "HierarchyNode":
        """Create (or return the existing) child with ``label``."""
        child = self.children.get(label)
        if child is None:
            child = HierarchyNode(label, parent=self)
            self.children[label] = child
        return child

    def child(self, label: str) -> "HierarchyNode":
        """Return the child with ``label`` or raise :class:`HierarchyError`."""
        try:
            return self.children[label]
        except KeyError:
            raise HierarchyError(
                f"node {self._path!r} has no child labelled {label!r}"
            ) from None

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------
    def iter_subtree(self) -> Iterator["HierarchyNode"]:
        """Yield this node and every descendant in pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def iter_leaves(self) -> Iterator["HierarchyNode"]:
        """Yield every leaf in the subtree rooted at this node."""
        for node in self.iter_subtree():
            if node.is_leaf:
                yield node

    def ancestors(self, include_self: bool = False) -> Iterator["HierarchyNode"]:
        """Yield ancestors from the parent (or self) up to the root."""
        node = self if include_self else self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "HierarchyNode") -> bool:
        """``True`` iff this node is a strict ancestor of ``other``."""
        node = other.parent
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def is_ancestor_or_self(self, other: "HierarchyNode") -> bool:
        """The paper's ``L1 ⊒ L2`` relation: equal or strict ancestor."""
        return self is other or self.is_ancestor_of(other)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "leaf" if self.is_leaf else f"{len(self.children)} children"
        return f"HierarchyNode({'/'.join(self._path) or '<root>'}, depth={self.depth}, {kind})"

    def __iter__(self) -> Iterator["HierarchyNode"]:
        return iter(self.children.values())

    def __len__(self) -> int:
        return len(self.children)
