"""Hierarchy tree: the additive hierarchical domain of Section III.

The tree owns the :class:`~repro.hierarchy.node.HierarchyNode` objects, maps
category paths bijectively to leaves (Step 2 of the system overview) and
provides level-order traversals used by the STA and ADA algorithms
(bottom-up for heavy-hitter computation, top-down for splits).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro._types import CategoryLike, CategoryPath
from repro.exceptions import HierarchyError, UnknownCategoryError
from repro.hierarchy.node import HierarchyNode


class HierarchyTree:
    """An additive hierarchical domain.

    A tree is usually constructed from the set of leaf category paths that can
    occur in a dataset (:meth:`from_leaf_paths`), mirroring how the paper's
    classification trees are predefined by the care-center category catalogue
    or the network topology.

    Parameters
    ----------
    root_label:
        Label of the root aggregate (the paper uses "All" for trouble
        descriptions and "SHO" / "National" for network paths).
    """

    def __init__(self, root_label: str = "All"):
        self.root = HierarchyNode(root_label)
        self._leaf_by_path: dict[CategoryPath, HierarchyNode] = {}
        self._node_by_path: dict[CategoryPath, HierarchyNode] = {(): self.root}
        self._indexed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_leaf_paths(
        cls, paths: Iterable[CategoryLike], root_label: str = "All"
    ) -> "HierarchyTree":
        """Build a tree whose leaves are exactly ``paths``.

        Every path is a sequence of labels below the root.  Intermediate nodes
        are created on demand.  A path that is a strict prefix of another path
        would make that node both a leaf and an interior node, which violates
        the bijective leaf mapping; this is rejected.
        """
        tree = cls(root_label)
        for path in paths:
            tree.add_leaf(path)
        tree.validate()
        return tree

    def add_leaf(self, path: CategoryLike) -> HierarchyNode:
        """Insert the leaf for ``path``, creating intermediate nodes."""
        path = tuple(path)
        if not path:
            raise HierarchyError("a leaf path must contain at least one label")
        node = self.root
        for label in path:
            node = node.add_child(label)
            self._node_by_path.setdefault(node.path, node)
        self._leaf_by_path[path] = node
        self._indexed = False
        return node

    def validate(self) -> None:
        """Check that every registered leaf path still maps to a leaf node."""
        for path, node in self._leaf_by_path.items():
            if not node.is_leaf:
                raise HierarchyError(
                    f"category {path!r} was registered as a leaf but now has "
                    f"children; leaf paths must not be prefixes of each other"
                )

    def freeze_index(self) -> None:
        """Assign dense integer ids to every node in BFS order."""
        for i, node in enumerate(self.iter_level_order()):
            node.index = i
        self._indexed = True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def leaf(self, path: CategoryLike) -> HierarchyNode:
        """Return the leaf for ``path`` or raise :class:`UnknownCategoryError`."""
        path = tuple(path)
        try:
            return self._leaf_by_path[path]
        except KeyError:
            raise UnknownCategoryError(path) from None

    def node(self, path: CategoryLike) -> HierarchyNode:
        """Return the node (leaf or interior) for ``path``."""
        path = tuple(path)
        try:
            return self._node_by_path[path]
        except KeyError:
            raise UnknownCategoryError(path) from None

    def has_leaf(self, path: CategoryLike) -> bool:
        return tuple(path) in self._leaf_by_path

    def leaf_paths(self) -> list[CategoryPath]:
        """All registered leaf paths, in insertion order.

        Together with the root label this fully determines the tree, which is
        what the checkpoint format serializes to rebuild it on restore.
        Insertion order is preserved (not sorted) so that a rebuilt tree
        traverses nodes in exactly the original order.
        """
        return list(self._leaf_by_path)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[HierarchyNode]:
        """All nodes in pre-order."""
        return self.root.iter_subtree()

    def iter_leaves(self) -> Iterator[HierarchyNode]:
        return self.root.iter_leaves()

    def iter_level_order(self, top_down: bool = True) -> Iterator[HierarchyNode]:
        """Level-order traversal, top-down or bottom-up.

        ADA's adaptation stage requires a bottom-up level-order traversal for
        the to-split marking and merge passes, and a top-down one for the
        split pass (Fig. 5, lines 13-23).
        """
        levels: list[list[HierarchyNode]] = []
        frontier = [self.root]
        while frontier:
            levels.append(frontier)
            frontier = [c for node in frontier for c in node.children.values()]
        ordered = levels if top_down else reversed(levels)
        for level in ordered:
            yield from level

    def nodes_at_depth(self, depth: int) -> list[HierarchyNode]:
        """All nodes whose depth equals ``depth`` (root is depth 0)."""
        return [n for n in self.iter_nodes() if n.depth == depth]

    # ------------------------------------------------------------------
    # Statistics (Table II style summaries)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    @property
    def num_leaves(self) -> int:
        return len(self._leaf_by_path)

    @property
    def depth(self) -> int:
        """Height of the tree counted in levels including the root."""
        return 1 + max((n.depth for n in self.iter_nodes()), default=0)

    def typical_degree_at_level(self, level: int) -> float:
        """Median branching factor of non-leaf nodes at ``level`` (root = 1).

        This is the quantity reported in the paper's Table II ("typical degree
        at the k-th level").  Level 1 is the root's degree.
        """
        nodes = self.nodes_at_depth(level - 1)
        degrees = sorted(len(n.children) for n in nodes if not n.is_leaf)
        if not degrees:
            return 0.0
        mid = len(degrees) // 2
        if len(degrees) % 2:
            return float(degrees[mid])
        return (degrees[mid - 1] + degrees[mid]) / 2.0

    def degree_summary(self) -> dict[int, float]:
        """Typical degree for every level that has non-leaf nodes."""
        summary: dict[int, float] = {}
        for level in range(1, self.depth):
            degree = self.typical_degree_at_level(level)
            if degree:
                summary[level] = degree
        return summary

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __contains__(self, path: CategoryLike) -> bool:
        return tuple(path) in self._node_by_path

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HierarchyTree(root={self.root.label!r}, nodes={self.num_nodes}, "
            f"leaves={self.num_leaves}, depth={self.depth})"
        )


def common_ancestor(a: HierarchyNode, b: HierarchyNode) -> Optional[HierarchyNode]:
    """Lowest common ancestor of two nodes of the same tree."""
    seen = set()
    node: Optional[HierarchyNode] = a
    while node is not None:
        seen.add(id(node))
        node = node.parent
    node = b
    while node is not None:
        if id(node) in seen:
            return node
        node = node.parent
    return None
