"""Persistence: trace readers/writers and detector checkpoints.

* CSV / JSON Lines readers and writers for operational records;
* the memory-mapped columnar trace format (:mod:`repro.io.columnar`) with
  zero-copy batch materialization and a format-dispatching
  :func:`read_trace_batches`;
* JSON checkpoint/restore for detection engines and sessions
  (:mod:`repro.io.checkpoint`).
"""

from repro.io.checkpoint import (
    load_checkpoint,
    load_session_checkpoint,
    save_checkpoint,
    save_session_checkpoint,
)
from repro.io.columnar import (
    convert_trace,
    read_batches_columnar,
    read_records_columnar,
    read_trace_batches,
    write_trace_columnar,
)
from repro.io.csv_io import read_batches_csv, read_records_csv, write_records_csv
from repro.io.jsonl_io import read_batches_jsonl, read_records_jsonl, write_records_jsonl

__all__ = [
    "read_records_csv",
    "read_batches_csv",
    "write_records_csv",
    "read_records_jsonl",
    "read_batches_jsonl",
    "write_records_jsonl",
    "read_batches_columnar",
    "read_records_columnar",
    "write_trace_columnar",
    "read_trace_batches",
    "convert_trace",
    "save_checkpoint",
    "load_checkpoint",
    "save_session_checkpoint",
    "load_session_checkpoint",
]
