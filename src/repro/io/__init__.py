"""Trace persistence: CSV and JSON Lines readers/writers for operational records."""

from repro.io.csv_io import read_records_csv, write_records_csv
from repro.io.jsonl_io import read_records_jsonl, write_records_jsonl

__all__ = [
    "read_records_csv",
    "write_records_csv",
    "read_records_jsonl",
    "write_records_jsonl",
]
