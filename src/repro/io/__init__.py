"""Persistence: trace readers/writers and detector checkpoints.

* CSV / JSON Lines readers and writers for operational records;
* JSON checkpoint/restore for detection engines and sessions
  (:mod:`repro.io.checkpoint`).
"""

from repro.io.checkpoint import (
    load_checkpoint,
    load_session_checkpoint,
    save_checkpoint,
    save_session_checkpoint,
)
from repro.io.csv_io import read_batches_csv, read_records_csv, write_records_csv
from repro.io.jsonl_io import read_batches_jsonl, read_records_jsonl, write_records_jsonl

__all__ = [
    "read_records_csv",
    "read_batches_csv",
    "write_records_csv",
    "read_records_jsonl",
    "read_batches_jsonl",
    "write_records_jsonl",
    "save_checkpoint",
    "load_checkpoint",
    "save_session_checkpoint",
    "load_session_checkpoint",
]
