"""JSON checkpoint/restore for detection engines and sessions.

An always-on monitoring process must survive restarts without losing its
sliding-window state: the algorithm time-series (and, for STA, the retained
per-timeunit weight tables), the forecasting-model smoothing state, the clock
position inside the stream, and the anomaly report store.  This module
serializes all of it to a single JSON document so that a restored process
produces detections identical to an uninterrupted run.

Format (version 1)::

    {
      "format": "tiresias-checkpoint",
      "version": 1,
      "engine": {"unknown_stream": "raise"},   # engine checkpoints only
      "sessions": [ {<session state>}, ... ]
    }

A *session* state carries the hierarchy (root label + leaf paths — the tree is
rebuilt on restore), the full :class:`~repro.core.config.TiresiasConfig`, the
clock, warm-up bookkeeping, the pending (not yet closed) timeunit counts, the
report store, and the algorithm's ``state_dict()``.

Floats round-trip exactly through Python's JSON encoder (``repr``-based), so
restored forecasts are bit-identical.  Stream-key selectors are code, not
data: pass ``stream_key=`` again when loading an engine that used a custom
selector.

Columnar-bank compatibility: since the vectorized close path, ADA's
forecaster state lives columnar in a
:class:`~repro.forecasting.bank.ForecasterBank` and split-rule statistics in
dense per-node arrays — but checkpoints still emit and accept the canonical
*per-path* ``state_dict`` layout above (each bank row serializes through
``ForecasterBank.row_state_dict`` into the historical per-forecaster dict).
Pre-bank, bank-backed, serial and sharded checkpoints therefore all
cross-restore: a checkpoint written before the refactor loads into a
bank-backed session mid-stream and continues bit-identically, and vice
versa.  Path-keyed lists may appear in a different (but equivalent) order —
consumers must not rely on entry order, only on per-path content.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.core.config import ForecastConfig, TiresiasConfig
from repro.core.detector import Anomaly
from repro.exceptions import CheckpointError, CheckpointWriteError
from repro.hierarchy.tree import HierarchyTree
from repro.streaming.clock import SimulationClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import DetectionEngine, StreamKey
    from repro.engine.session import DetectionSession

CHECKPOINT_FORMAT = "tiresias-checkpoint"
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# Config / clock / tree serialization helpers
# ----------------------------------------------------------------------
def config_to_dict(config: TiresiasConfig) -> dict[str, Any]:
    """JSON-safe representation of a full detector configuration."""
    forecast = config.forecast
    return {
        "theta": config.theta,
        "ratio_threshold": config.ratio_threshold,
        "difference_threshold": config.difference_threshold,
        "delta_seconds": config.delta_seconds,
        "window_units": config.window_units,
        "split_rule": config.split_rule,
        "split_ewma_alpha": config.split_ewma_alpha,
        "reference_levels": config.reference_levels,
        "track_root": config.track_root,
        "allow_root_heavy": config.allow_root_heavy,
        "out_of_order_policy": config.out_of_order_policy,
        "forecast": {
            "alpha": forecast.alpha,
            "beta": forecast.beta,
            "gamma": forecast.gamma,
            "season_lengths": list(forecast.season_lengths),
            "season_weights": (
                None
                if forecast.season_weights is None
                else list(forecast.season_weights)
            ),
            "fallback_alpha": forecast.fallback_alpha,
            "model": forecast.model,
        },
    }


def config_from_dict(data: Mapping[str, Any]) -> TiresiasConfig:
    """Inverse of :func:`config_to_dict`."""
    fc = data["forecast"]
    forecast = ForecastConfig(
        alpha=float(fc["alpha"]),
        beta=float(fc["beta"]),
        gamma=float(fc["gamma"]),
        season_lengths=tuple(int(p) for p in fc["season_lengths"]),
        season_weights=(
            None
            if fc["season_weights"] is None
            else tuple(float(w) for w in fc["season_weights"])
        ),
        fallback_alpha=float(fc["fallback_alpha"]),
        model=str(fc.get("model", "auto")),
    )
    return TiresiasConfig(
        theta=float(data["theta"]),
        ratio_threshold=float(data["ratio_threshold"]),
        difference_threshold=float(data["difference_threshold"]),
        delta_seconds=float(data["delta_seconds"]),
        window_units=int(data["window_units"]),
        split_rule=str(data["split_rule"]),
        split_ewma_alpha=float(data["split_ewma_alpha"]),
        reference_levels=int(data["reference_levels"]),
        forecast=forecast,
        track_root=bool(data["track_root"]),
        allow_root_heavy=bool(data.get("allow_root_heavy", True)),
        out_of_order_policy=str(data.get("out_of_order_policy", "raise")),
    )


def clock_to_dict(clock: SimulationClock) -> dict[str, Any]:
    return {
        "delta": clock.delta,
        "epoch": clock.epoch,
        "epoch_weekday": clock.epoch_weekday,
        "epoch_hour": clock.epoch_hour,
    }


def clock_from_dict(data: Mapping[str, Any]) -> SimulationClock:
    return SimulationClock(
        delta=float(data["delta"]),
        epoch=float(data["epoch"]),
        epoch_weekday=int(data["epoch_weekday"]),
        epoch_hour=float(data["epoch_hour"]),
    )


def tree_to_dict(tree: HierarchyTree) -> dict[str, Any]:
    return {
        "root_label": tree.root.label,
        "leaves": [list(path) for path in tree.leaf_paths()],
    }


def tree_from_dict(data: Mapping[str, Any]) -> HierarchyTree:
    return HierarchyTree.from_leaf_paths(
        [tuple(path) for path in data["leaves"]],
        root_label=str(data["root_label"]),
    )


# ----------------------------------------------------------------------
# Session state
# ----------------------------------------------------------------------
def session_state_dict(
    session: "DetectionSession", include_shadow: bool = True
) -> dict[str, Any]:
    """JSON-safe snapshot of one detection session (see module docstring).

    A running shadow experiment
    (:meth:`~repro.engine.session.DetectionSession.start_shadow`) is included
    under an optional ``"shadow"`` key — its full session state plus the
    divergence tracker — so a crash-resumed process continues the experiment
    bit-identically.  Pre-shadow readers ignore the key.  ``include_shadow=
    False`` snapshots the primary alone (the substrate of reconfiguration
    and shadow cloning, which operate on core state).
    """
    if not hasattr(session.algorithm, "state_dict"):
        raise CheckpointError(
            f"algorithm {session.algorithm_name!r} does not implement "
            f"state_dict(); custom algorithms must provide state_dict()/"
            f"load_state_dict() to support checkpointing"
        )
    state = {
        "name": session.name,
        "algorithm": session.algorithm_name,
        "tree": tree_to_dict(session.tree),
        "config": config_to_dict(session.config),
        "clock": clock_to_dict(session.clock),
        "warmup_units": session.warmup_units,
        "max_results": session.max_results,
        "units_processed": session.units_processed,
        "warmup_announced": session._warmup_announced,
        "pending_unit": session._pending_unit,
        "pending": [
            [list(path), count] for path, count in session._pending.items()
        ],
        "reading_seconds": session.reading_seconds,
        "reports": [anomaly.to_dict() for anomaly in session.reports],
        "algorithm_state": session.algorithm.state_dict(),
    }
    if include_shadow and session._shadow is not None:
        state["shadow"] = {
            "session": session_state_dict(session._shadow),
            "tracker": session._shadow_tracker.state_dict(),
        }
    return state


def session_from_state_dict(state: Mapping[str, Any]) -> "DetectionSession":
    """Rebuild a session from :func:`session_state_dict` output."""
    from repro.engine.session import DetectionSession

    try:
        tree = tree_from_dict(state["tree"])
        config = config_from_dict(state["config"])
        clock = clock_from_dict(state["clock"])
        max_results = state.get("max_results")
        session = DetectionSession(
            tree,
            config,
            algorithm=str(state["algorithm"]),
            clock=clock,
            warmup_units=int(state["warmup_units"]),
            name=str(state["name"]),
            max_results=None if max_results is None else int(max_results),
        )
        session._units_processed = int(state["units_processed"])
        session._warmup_announced = bool(state["warmup_announced"])
        pending_unit = state["pending_unit"]
        session._pending_unit = None if pending_unit is None else int(pending_unit)
        for path, count in state["pending"]:
            session._pending[tuple(path)] = count
        session.reading_seconds = float(state["reading_seconds"])
        session.reports.add_many(
            Anomaly.from_dict(data) for data in state["reports"]
        )
        if not hasattr(session.algorithm, "load_state_dict"):
            raise CheckpointError(
                f"algorithm {session.algorithm_name!r} does not implement "
                f"load_state_dict(); cannot restore its checkpointed state"
            )
        session.algorithm.load_state_dict(state["algorithm_state"])
        shadow_state = state.get("shadow")
        if shadow_state is not None:
            from repro.engine.shadow import ShadowTracker

            session._shadow = session_from_state_dict(shadow_state["session"])
            session._shadow_tracker = ShadowTracker.from_state_dict(
                shadow_state["tracker"]
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed session state: {exc!r}") from exc
    return session


# ----------------------------------------------------------------------
# Engine state
# ----------------------------------------------------------------------
def engine_state_dict(engine: "DetectionEngine") -> dict[str, Any]:
    """JSON-safe snapshot of an engine and all its sessions."""
    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "engine": {"unknown_stream": engine.unknown_stream},
        "sessions": [
            session_state_dict(session) for session in engine.sessions.values()
        ],
    }


def engine_from_state_dict(
    state: Mapping[str, Any], stream_key: "StreamKey | None" = None
) -> "DetectionEngine":
    """Rebuild an engine from :func:`engine_state_dict` output."""
    from repro.engine.engine import DetectionEngine

    _check_header(state)
    engine = DetectionEngine(
        stream_key=stream_key,
        unknown_stream=str(state.get("engine", {}).get("unknown_stream", "raise")),
    )
    for session_state in state["sessions"]:
        engine.attach_session(session_from_state_dict(session_state))
    return engine


def _check_header(state: Mapping[str, Any]) -> None:
    if state.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"not a {CHECKPOINT_FORMAT} document (format={state.get('format')!r})"
        )
    if state.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {state.get('version')!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )


# ----------------------------------------------------------------------
# Subtree-shard state surgery (used by repro.engine.sharded)
# ----------------------------------------------------------------------
#: Algorithms whose checkpointed state partitions cleanly by depth-1 subtree.
SHARDABLE_ALGORITHMS: frozenset[str] = frozenset({"ada", "sta"})


def _route_gid(path: Sequence[str], label_to_gid: Mapping[str, int]) -> "int | None":
    """Shard group owning ``path`` (None = the root itself).

    Paths whose first label matches no group (records outside the monitored
    hierarchy, counted but never detected on) belong to group 0 by convention.
    """
    if not path:
        return None
    return label_to_gid.get(path[0], 0)


def split_session_state(
    state: Mapping[str, Any], groups: Sequence[Sequence[str]]
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Partition one serial session state into disjoint subtree-shard states.

    ``groups`` assigns every depth-1 label of the session's hierarchy to one
    shard group.  Each returned sub-state is a complete, loadable session
    state over the sub-hierarchy of its group's subtrees: path-keyed
    collections (series, reference buffers, split statistics, pending counts,
    STA weight tables) are routed by their first label, scalar clock/warm-up
    bookkeeping is replicated, and timing/operation counters start from zero
    so that merging later can add them back onto the serial baseline.

    The second return value holds the root-path split-rule statistics (ADA)
    that no shard owns; the sharded engine maintains them coordinator-side
    from the per-timeunit root weights its shards report.  Raises
    :class:`CheckpointError` when the session cannot be subtree-sharded:
    unsupported algorithm, ``track_root`` enabled, a root-held time series,
    or an incomplete group cover.
    """
    if "shadow" in state:
        raise CheckpointError(
            "cannot subtree-shard a session that runs a shadow experiment; "
            "stop or promote the shadow before sharding"
        )
    algorithm = str(state["algorithm"])
    if algorithm not in SHARDABLE_ALGORITHMS:
        raise CheckpointError(
            f"algorithm {algorithm!r} does not support subtree sharding "
            f"(supported: {sorted(SHARDABLE_ALGORITHMS)})"
        )
    if bool(state["config"].get("track_root", True)) or bool(
        state["config"].get("allow_root_heavy", True)
    ):
        raise CheckpointError(
            "subtree sharding requires track_root=False and "
            "allow_root_heavy=False: the root is the only node whose series "
            "and adaptation span every depth-1 subtree, so it must be "
            "excluded from tracking for shard detections to equal a serial "
            "run"
        )
    label_to_gid: dict[str, int] = {}
    for gid, labels in enumerate(groups):
        for label in labels:
            if label in label_to_gid:
                raise CheckpointError(
                    f"depth-1 label {label!r} assigned to two shard groups"
                )
            label_to_gid[label] = gid
    k = len(groups)
    if k < 2:
        raise CheckpointError("subtree sharding needs at least two groups")

    leaves_by_gid: list[list[list[str]]] = [[] for _ in range(k)]
    for path in state["tree"]["leaves"]:
        gid = label_to_gid.get(path[0])
        if gid is None:
            raise CheckpointError(
                f"shard groups do not cover depth-1 label {path[0]!r}"
            )
        leaves_by_gid[gid].append(list(path))
    for gid, leaves in enumerate(leaves_by_gid):
        if not leaves:
            raise CheckpointError(f"shard group {gid} owns no leaves")

    pending_by_gid: list[list[Any]] = [[] for _ in range(k)]
    for path, count in state["pending"]:
        gid = _route_gid(path, label_to_gid)
        pending_by_gid[0 if gid is None else gid].append([list(path), count])

    algo_state = state["algorithm_state"]
    zero_stage = {key: 0.0 for key in algo_state["stage_seconds"]}
    withheld: dict[str, Any] = {}
    algo_by_gid: list[dict[str, Any]] = []
    if algorithm == "ada":
        split_lists: dict[str, list[list[list[Any]]]] = {
            field: [[] for _ in range(k)]
            for field in ("series", "reference", "stats", "stats_last_unit")
        }
        for field, routed in split_lists.items():
            for path, value in algo_state[field]:
                gid = _route_gid(path, label_to_gid)
                if gid is None:
                    if field in ("series", "reference"):
                        raise CheckpointError(
                            "the hierarchy root holds a time series; its "
                            "adaptation couples every subtree and cannot be "
                            "sharded (was the session run with an earlier "
                            "track_root=True config?)"
                        )
                    withheld[field] = value
                    continue
                routed[gid].append([list(path), value])
        for gid in range(k):
            algo_by_gid.append(
                {
                    "timeunit": algo_state["timeunit"],
                    "split_operations": 0,
                    "merge_operations": 0,
                    "stage_seconds": dict(zero_stage),
                    "series": split_lists["series"][gid],
                    "reference": split_lists["reference"][gid],
                    "stats": split_lists["stats"][gid],
                    "stats_last_unit": split_lists["stats_last_unit"][gid],
                }
            )
    else:  # sta
        tables_by_gid: list[list[list[list[Any]]]] = [[] for _ in range(k)]
        for unit_table in algo_state["unit_weights"]:
            routed: list[list[list[Any]]] = [[] for _ in range(k)]
            root_by_gid = [0.0] * k
            for path, weight in unit_table:
                gid = _route_gid(path, label_to_gid)
                if gid is None:
                    continue  # recomputed per group below
                routed[gid].append([list(path), weight])
                if len(path) == 1:
                    root_by_gid[gid] += float(weight)
            for gid in range(k):
                # The group's local root weight is the sum of its depth-1
                # weights — exactly what a from-scratch run over the
                # sub-hierarchy would have recorded.
                if root_by_gid[gid] > 0:
                    routed[gid].append([[], root_by_gid[gid]])
                tables_by_gid[gid].append(routed[gid])
        for gid in range(k):
            algo_by_gid.append(
                {
                    "timeunit": algo_state["timeunit"],
                    "stage_seconds": dict(zero_stage),
                    "unit_weights": tables_by_gid[gid],
                }
            )

    sub_states = []
    for gid in range(k):
        sub_states.append(
            {
                "name": f"{state['name']}::shard{gid}",
                "algorithm": algorithm,
                "tree": {
                    "root_label": state["tree"]["root_label"],
                    "leaves": leaves_by_gid[gid],
                },
                "config": dict(state["config"]),
                "clock": dict(state["clock"]),
                "warmup_units": state["warmup_units"],
                # Workers return closed results over the pipe; retaining them
                # in the shard session would only grow worker memory.
                "max_results": 0,
                "units_processed": state["units_processed"],
                "warmup_announced": state["warmup_announced"],
                "pending_unit": state["pending_unit"],
                "pending": pending_by_gid[gid],
                "reading_seconds": 0.0,
                "reports": [],
                "algorithm_state": algo_by_gid[gid],
            }
        )
    return sub_states, withheld


def _require_agreement(sub_states: Sequence[Mapping[str, Any]], *keys: str) -> None:
    for key in keys:
        values = {json.dumps(sub[key], sort_keys=True) for sub in sub_states}
        if len(values) > 1:
            raise CheckpointError(
                f"torn sharded session state: shards disagree on {key!r}"
            )


def merge_session_states(
    sub_states: Sequence[Mapping[str, Any]],
    base: Mapping[str, Any],
    *,
    reports: Sequence[Mapping[str, Any]],
    withheld: "Mapping[str, Any] | None" = None,
) -> dict[str, Any]:
    """Inverse of :func:`split_session_state`: one serial-format session state.

    ``base`` is the serial state the shards were split from (identity fields
    and pre-split counter baselines come from it), ``reports`` the
    coordinator-side merged anomaly store, and ``withheld`` the root-path
    bookkeeping returned by the split (updated by the coordinator while the
    shards ran).  The merged state loads into a plain
    :class:`~repro.engine.session.DetectionSession` whose subsequent
    detections equal an unsharded run — sharded and serial checkpoints are
    the same format and are mutually restorable.
    """
    if not sub_states:
        raise CheckpointError("cannot merge an empty list of shard states")
    _require_agreement(
        sub_states,
        "algorithm",
        "units_processed",
        "warmup_announced",
        "pending_unit",
        "warmup_units",
    )
    algorithm = str(sub_states[0]["algorithm"])
    first_algo = sub_states[0]["algorithm_state"]
    merged_stage = {
        key: float(base["algorithm_state"]["stage_seconds"].get(key, 0.0))
        + sum(float(sub["algorithm_state"]["stage_seconds"][key]) for sub in sub_states)
        for key in first_algo["stage_seconds"]
    }
    timeunits = {sub["algorithm_state"]["timeunit"] for sub in sub_states}
    if len(timeunits) > 1:
        raise CheckpointError("torn sharded session state: shards disagree on timeunit")

    if algorithm == "ada":
        algo_state: dict[str, Any] = {
            "timeunit": first_algo["timeunit"],
            "split_operations": int(base["algorithm_state"]["split_operations"])
            + sum(int(sub["algorithm_state"]["split_operations"]) for sub in sub_states),
            "merge_operations": int(base["algorithm_state"]["merge_operations"])
            + sum(int(sub["algorithm_state"]["merge_operations"]) for sub in sub_states),
            "stage_seconds": merged_stage,
        }
        for field in ("series", "reference", "stats", "stats_last_unit"):
            merged_list = []
            for sub in sub_states:
                for path, value in sub["algorithm_state"][field]:
                    if not path:
                        # Shards keep local-root bookkeeping (their raw
                        # weights feed it); the serial equivalent is the
                        # coordinator-maintained ``withheld`` entry summed
                        # over every shard, inserted below.
                        if field in ("series", "reference"):
                            raise CheckpointError(
                                f"shard state holds a root {field} entry; "
                                f"this cannot come from a root-excluded run"
                            )
                        continue
                    merged_list.append([list(path), value])
            if withheld and field in withheld:
                merged_list.append([[], withheld[field]])
            algo_state[field] = merged_list
    else:  # sta
        lengths = {len(sub["algorithm_state"]["unit_weights"]) for sub in sub_states}
        if len(lengths) > 1:
            raise CheckpointError(
                "torn sharded session state: shards retain different numbers "
                "of timeunit weight tables"
            )
        unit_weights = []
        for tables in zip(*(sub["algorithm_state"]["unit_weights"] for sub in sub_states)):
            merged_table = []
            root_total = 0.0
            for table in tables:
                for path, weight in table:
                    if path:
                        merged_table.append([list(path), weight])
                    else:
                        root_total += float(weight)
            if root_total > 0:
                merged_table.append([[], root_total])
            unit_weights.append(merged_table)
        algo_state = {
            "timeunit": first_algo["timeunit"],
            "stage_seconds": merged_stage,
            "unit_weights": unit_weights,
        }

    pending: list[Any] = []
    for sub in sub_states:
        pending.extend(sub["pending"])
    return {
        "name": base["name"],
        "algorithm": algorithm,
        "tree": {
            "root_label": base["tree"]["root_label"],
            "leaves": [list(path) for path in base["tree"]["leaves"]],
        },
        "config": dict(base["config"]),
        "clock": dict(base["clock"]),
        "warmup_units": sub_states[0]["warmup_units"],
        "max_results": base.get("max_results"),
        "units_processed": sub_states[0]["units_processed"],
        "warmup_announced": sub_states[0]["warmup_announced"],
        "pending_unit": sub_states[0]["pending_unit"],
        "pending": pending,
        "reading_seconds": float(base["reading_seconds"])
        + sum(float(sub["reading_seconds"]) for sub in sub_states),
        "reports": [dict(report) for report in reports],
        "algorithm_state": algo_state,
    }


# ----------------------------------------------------------------------
# File round trips
# ----------------------------------------------------------------------
def save_checkpoint(engine: "DetectionEngine", path: "str | Path") -> None:
    """Write an engine checkpoint to ``path`` (JSON, UTF-8)."""
    _write_json(engine_state_dict(engine), path)


def load_checkpoint(
    path: "str | Path", stream_key: "StreamKey | None" = None
) -> "DetectionEngine":
    """Restore an engine from a file written by :func:`save_checkpoint`."""
    return engine_from_state_dict(_read_json(path), stream_key=stream_key)


def save_session_checkpoint(session: "DetectionSession", path: "str | Path") -> None:
    """Write a single-session checkpoint (used by the ``Tiresias`` facade)."""
    _write_json(
        {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "sessions": [session_state_dict(session)],
        },
        path,
    )


def load_session_checkpoint(path: "str | Path") -> "DetectionSession":
    """Restore the single session of a :func:`save_session_checkpoint` file."""
    state = _read_json(path)
    _check_header(state)
    sessions = state.get("sessions", [])
    if len(sessions) != 1:
        raise CheckpointError(
            f"expected exactly one session in the checkpoint, found {len(sessions)}"
        )
    return session_from_state_dict(sessions[0])


def _write_json(document: Mapping[str, Any], path: "str | Path") -> None:
    """Write ``document`` atomically and durably: temp file, fsync, rename.

    A monitoring process killed mid-checkpoint must never leave a truncated
    JSON document behind — the sharded engine checkpoints several worker
    states into one file, and a partial write would lose all of them.
    ``os.replace`` is atomic on POSIX and Windows for same-directory targets,
    and the temp file is fsync'd *before* the rename so a power loss right
    after the replace cannot surface a named-but-empty checkpoint.  Write
    failures (disk full, permissions, dead volume) raise
    :class:`~repro.exceptions.CheckpointWriteError` after removing the temp
    file; the previous checkpoint at ``path``, if any, survives untouched.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    payload = json.dumps(document)
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise CheckpointWriteError(
            str(path), errno=exc.errno, detail=str(exc)
        ) from exc
    # Best-effort directory fsync so the rename itself is durable; not all
    # filesystems allow opening a directory, hence the silent fallback.
    try:
        dir_fd = os.open(str(path.parent) or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(dir_fd)


def _read_json(path: "str | Path") -> Any:
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"checkpoint {path} is not valid JSON: {exc}") from exc
