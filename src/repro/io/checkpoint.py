"""JSON checkpoint/restore for detection engines and sessions.

An always-on monitoring process must survive restarts without losing its
sliding-window state: the algorithm time-series (and, for STA, the retained
per-timeunit weight tables), the forecasting-model smoothing state, the clock
position inside the stream, and the anomaly report store.  This module
serializes all of it to a single JSON document so that a restored process
produces detections identical to an uninterrupted run.

Format (version 1)::

    {
      "format": "tiresias-checkpoint",
      "version": 1,
      "engine": {"unknown_stream": "raise"},   # engine checkpoints only
      "sessions": [ {<session state>}, ... ]
    }

A *session* state carries the hierarchy (root label + leaf paths — the tree is
rebuilt on restore), the full :class:`~repro.core.config.TiresiasConfig`, the
clock, warm-up bookkeeping, the pending (not yet closed) timeunit counts, the
report store, and the algorithm's ``state_dict()``.

Floats round-trip exactly through Python's JSON encoder (``repr``-based), so
restored forecasts are bit-identical.  Stream-key selectors are code, not
data: pass ``stream_key=`` again when loading an engine that used a custom
selector.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.config import ForecastConfig, TiresiasConfig
from repro.core.detector import Anomaly
from repro.exceptions import CheckpointError
from repro.hierarchy.tree import HierarchyTree
from repro.streaming.clock import SimulationClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import DetectionEngine, StreamKey
    from repro.engine.session import DetectionSession

CHECKPOINT_FORMAT = "tiresias-checkpoint"
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# Config / clock / tree serialization helpers
# ----------------------------------------------------------------------
def config_to_dict(config: TiresiasConfig) -> dict[str, Any]:
    """JSON-safe representation of a full detector configuration."""
    forecast = config.forecast
    return {
        "theta": config.theta,
        "ratio_threshold": config.ratio_threshold,
        "difference_threshold": config.difference_threshold,
        "delta_seconds": config.delta_seconds,
        "window_units": config.window_units,
        "split_rule": config.split_rule,
        "split_ewma_alpha": config.split_ewma_alpha,
        "reference_levels": config.reference_levels,
        "track_root": config.track_root,
        "out_of_order_policy": config.out_of_order_policy,
        "forecast": {
            "alpha": forecast.alpha,
            "beta": forecast.beta,
            "gamma": forecast.gamma,
            "season_lengths": list(forecast.season_lengths),
            "season_weights": (
                None
                if forecast.season_weights is None
                else list(forecast.season_weights)
            ),
            "fallback_alpha": forecast.fallback_alpha,
            "model": forecast.model,
        },
    }


def config_from_dict(data: Mapping[str, Any]) -> TiresiasConfig:
    """Inverse of :func:`config_to_dict`."""
    fc = data["forecast"]
    forecast = ForecastConfig(
        alpha=float(fc["alpha"]),
        beta=float(fc["beta"]),
        gamma=float(fc["gamma"]),
        season_lengths=tuple(int(p) for p in fc["season_lengths"]),
        season_weights=(
            None
            if fc["season_weights"] is None
            else tuple(float(w) for w in fc["season_weights"])
        ),
        fallback_alpha=float(fc["fallback_alpha"]),
        model=str(fc.get("model", "auto")),
    )
    return TiresiasConfig(
        theta=float(data["theta"]),
        ratio_threshold=float(data["ratio_threshold"]),
        difference_threshold=float(data["difference_threshold"]),
        delta_seconds=float(data["delta_seconds"]),
        window_units=int(data["window_units"]),
        split_rule=str(data["split_rule"]),
        split_ewma_alpha=float(data["split_ewma_alpha"]),
        reference_levels=int(data["reference_levels"]),
        forecast=forecast,
        track_root=bool(data["track_root"]),
        out_of_order_policy=str(data.get("out_of_order_policy", "raise")),
    )


def clock_to_dict(clock: SimulationClock) -> dict[str, Any]:
    return {
        "delta": clock.delta,
        "epoch": clock.epoch,
        "epoch_weekday": clock.epoch_weekday,
        "epoch_hour": clock.epoch_hour,
    }


def clock_from_dict(data: Mapping[str, Any]) -> SimulationClock:
    return SimulationClock(
        delta=float(data["delta"]),
        epoch=float(data["epoch"]),
        epoch_weekday=int(data["epoch_weekday"]),
        epoch_hour=float(data["epoch_hour"]),
    )


def tree_to_dict(tree: HierarchyTree) -> dict[str, Any]:
    return {
        "root_label": tree.root.label,
        "leaves": [list(path) for path in tree.leaf_paths()],
    }


def tree_from_dict(data: Mapping[str, Any]) -> HierarchyTree:
    return HierarchyTree.from_leaf_paths(
        [tuple(path) for path in data["leaves"]],
        root_label=str(data["root_label"]),
    )


# ----------------------------------------------------------------------
# Session state
# ----------------------------------------------------------------------
def session_state_dict(session: "DetectionSession") -> dict[str, Any]:
    """JSON-safe snapshot of one detection session (see module docstring)."""
    if not hasattr(session.algorithm, "state_dict"):
        raise CheckpointError(
            f"algorithm {session.algorithm_name!r} does not implement "
            f"state_dict(); custom algorithms must provide state_dict()/"
            f"load_state_dict() to support checkpointing"
        )
    return {
        "name": session.name,
        "algorithm": session.algorithm_name,
        "tree": tree_to_dict(session.tree),
        "config": config_to_dict(session.config),
        "clock": clock_to_dict(session.clock),
        "warmup_units": session.warmup_units,
        "max_results": session.max_results,
        "units_processed": session.units_processed,
        "warmup_announced": session._warmup_announced,
        "pending_unit": session._pending_unit,
        "pending": [
            [list(path), count] for path, count in session._pending.items()
        ],
        "reading_seconds": session.reading_seconds,
        "reports": [anomaly.to_dict() for anomaly in session.reports],
        "algorithm_state": session.algorithm.state_dict(),
    }


def session_from_state_dict(state: Mapping[str, Any]) -> "DetectionSession":
    """Rebuild a session from :func:`session_state_dict` output."""
    from repro.engine.session import DetectionSession

    try:
        tree = tree_from_dict(state["tree"])
        config = config_from_dict(state["config"])
        clock = clock_from_dict(state["clock"])
        max_results = state.get("max_results")
        session = DetectionSession(
            tree,
            config,
            algorithm=str(state["algorithm"]),
            clock=clock,
            warmup_units=int(state["warmup_units"]),
            name=str(state["name"]),
            max_results=None if max_results is None else int(max_results),
        )
        session._units_processed = int(state["units_processed"])
        session._warmup_announced = bool(state["warmup_announced"])
        pending_unit = state["pending_unit"]
        session._pending_unit = None if pending_unit is None else int(pending_unit)
        for path, count in state["pending"]:
            session._pending[tuple(path)] = count
        session.reading_seconds = float(state["reading_seconds"])
        session.reports.add_many(
            Anomaly.from_dict(data) for data in state["reports"]
        )
        if not hasattr(session.algorithm, "load_state_dict"):
            raise CheckpointError(
                f"algorithm {session.algorithm_name!r} does not implement "
                f"load_state_dict(); cannot restore its checkpointed state"
            )
        session.algorithm.load_state_dict(state["algorithm_state"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed session state: {exc!r}") from exc
    return session


# ----------------------------------------------------------------------
# Engine state
# ----------------------------------------------------------------------
def engine_state_dict(engine: "DetectionEngine") -> dict[str, Any]:
    """JSON-safe snapshot of an engine and all its sessions."""
    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "engine": {"unknown_stream": engine.unknown_stream},
        "sessions": [
            session_state_dict(session) for session in engine.sessions.values()
        ],
    }


def engine_from_state_dict(
    state: Mapping[str, Any], stream_key: "StreamKey | None" = None
) -> "DetectionEngine":
    """Rebuild an engine from :func:`engine_state_dict` output."""
    from repro.engine.engine import DetectionEngine

    _check_header(state)
    engine = DetectionEngine(
        stream_key=stream_key,
        unknown_stream=str(state.get("engine", {}).get("unknown_stream", "raise")),
    )
    for session_state in state["sessions"]:
        engine.attach_session(session_from_state_dict(session_state))
    return engine


def _check_header(state: Mapping[str, Any]) -> None:
    if state.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"not a {CHECKPOINT_FORMAT} document (format={state.get('format')!r})"
        )
    if state.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {state.get('version')!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )


# ----------------------------------------------------------------------
# File round trips
# ----------------------------------------------------------------------
def save_checkpoint(engine: "DetectionEngine", path: "str | Path") -> None:
    """Write an engine checkpoint to ``path`` (JSON, UTF-8)."""
    _write_json(engine_state_dict(engine), path)


def load_checkpoint(
    path: "str | Path", stream_key: "StreamKey | None" = None
) -> "DetectionEngine":
    """Restore an engine from a file written by :func:`save_checkpoint`."""
    return engine_from_state_dict(_read_json(path), stream_key=stream_key)


def save_session_checkpoint(session: "DetectionSession", path: "str | Path") -> None:
    """Write a single-session checkpoint (used by the ``Tiresias`` facade)."""
    _write_json(
        {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "sessions": [session_state_dict(session)],
        },
        path,
    )


def load_session_checkpoint(path: "str | Path") -> "DetectionSession":
    """Restore the single session of a :func:`save_session_checkpoint` file."""
    state = _read_json(path)
    _check_header(state)
    sessions = state.get("sessions", [])
    if len(sessions) != 1:
        raise CheckpointError(
            f"expected exactly one session in the checkpoint, found {len(sessions)}"
        )
    return session_from_state_dict(sessions[0])


def _write_json(document: Mapping[str, Any], path: "str | Path") -> None:
    Path(path).write_text(json.dumps(document), encoding="utf-8")


def _read_json(path: "str | Path") -> Any:
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"checkpoint {path} is not valid JSON: {exc}") from exc
